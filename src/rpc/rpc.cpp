#include "rpc/rpc.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/logging.h"

namespace lwfs::rpc {

std::atomic<std::uint64_t> RpcClient::next_request_id_{1};

namespace {

// Request header layout; see rpc.h for the portal conventions.
void EncodeHeader(Encoder& enc, Opcode opcode, std::uint64_t request_id,
                  portals::Nid client, std::uint64_t bulk_out_len,
                  std::uint64_t bulk_in_len) {
  enc.PutU32(opcode);
  enc.PutU64(request_id);
  enc.PutU32(client);
  enc.PutU64(bulk_out_len);
  enc.PutU64(bulk_in_len);
}

struct Header {
  Opcode opcode;
  std::uint64_t request_id;
  portals::Nid client;
  std::uint64_t bulk_out_len;
  std::uint64_t bulk_in_len;
};

Result<Header> DecodeHeader(Decoder& dec) {
  Header h;
  auto opcode = dec.GetU32();
  auto request_id = dec.GetU64();
  auto client = dec.GetU32();
  auto bulk_out = dec.GetU64();
  auto bulk_in = dec.GetU64();
  if (!opcode.ok() || !request_id.ok() || !client.ok() || !bulk_out.ok() ||
      !bulk_in.ok()) {
    return InvalidArgument("malformed rpc header");
  }
  h.opcode = *opcode;
  h.request_id = *request_id;
  h.client = *client;
  h.bulk_out_len = *bulk_out;
  h.bulk_in_len = *bulk_in;
  return h;
}

Result<Buffer> DecodeReply(const Buffer& payload) {
  Decoder dec(payload);
  auto code = dec.GetU32();
  auto message = dec.GetString();
  auto body = dec.GetBytes();
  if (!code.ok() || !message.ok() || !body.ok()) {
    return Internal("malformed rpc reply");
  }
  if (*code != static_cast<std::uint32_t>(ErrorCode::kOk)) {
    return Status(static_cast<ErrorCode>(*code), std::move(*message));
  }
  return std::move(*body);
}

}  // namespace

// ---------------------------------------------------------------------------
// CallHandle
// ---------------------------------------------------------------------------

Result<Buffer> CallHandle::Await() {
  if (!state_) return FailedPrecondition("awaiting an empty call handle");
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->done; });
  return state_->result;
}

bool CallHandle::TryAwait(Result<Buffer>* out) {
  if (!state_) return false;
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (!state_->done) return false;
  if (out != nullptr) *out = state_->result;
  return true;
}

// ---------------------------------------------------------------------------
// RpcClient
// ---------------------------------------------------------------------------

RpcClient::~RpcClient() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  WakeEngine();
  if (engine_.joinable()) engine_.join();
  // Fail whatever was still in flight.  Regions detach before waiters wake,
  // so a late server push or reply hits no registered memory.
  std::vector<std::shared_ptr<detail::CallState>> pending;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending.reserve(inflight_.size());
    for (auto& [id, state] : inflight_) pending.push_back(std::move(state));
    inflight_.clear();
  }
  for (auto& state : pending) {
    FinishCall(state, Aborted("rpc client destroyed with calls in flight"));
  }
}

void RpcClient::EnsureEngineLocked() {
  if (engine_running_) return;
  engine_running_ = true;
  engine_ = std::thread([this] { EngineLoop(); });
}

void RpcClient::WakeEngine() {
  portals::Event wake;
  wake.type = portals::EventType::kAck;  // replies arrive as kPut
  completions_.Inject(std::move(wake));
}

bool RpcClient::TrySendLocked(detail::CallState& state, Status* failure) {
  Status s = nic_->Put(state.server, state.request_portal, /*match_bits=*/0,
                       ByteSpan(state.wire), 0, state.request_id);
  const auto now = Clock::now();
  if (s.ok()) {
    state.accepted = true;
    state.deadline = now + state.timeout;
    return true;
  }
  if (s.code() != ErrorCode::kResourceExhausted) {
    *failure = std::move(s);
    return false;
  }
  if (++state.resend_attempts > state.max_resends) {
    *failure = ResourceExhausted("server request queue full, resends exhausted");
    return false;
  }
  resends_.fetch_add(1, std::memory_order_relaxed);
  state.next_send = now + std::chrono::microseconds(state.backoff.NextUs());
  return true;
}

void RpcClient::FinishCall(const std::shared_ptr<detail::CallState>& state,
                           Result<Buffer> result) {
  // Detach the reply slot and bulk regions *before* publishing the result:
  // the caller's buffers are guaranteed quiescent once Await() returns.
  state->reply_region.Release();
  state->out_region.Release();
  state->in_region.Release();
  if (!result.ok()) failures_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    state->done = true;
    state->result = std::move(result);
  }
  state->cv.notify_all();
}

Result<CallHandle> RpcClient::CallAsync(portals::Nid server, Opcode opcode,
                                        ByteSpan request,
                                        const CallOptions& options) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);

  auto state = std::make_shared<detail::CallState>();
  state->request_id = request_id;
  state->server = server;
  state->request_portal = options.request_portal;
  state->timeout = options.timeout;
  state->max_resends = options.max_resends;
  // Seed from (nid, request id) so concurrent ranks draw uncorrelated
  // retry schedules against the same full portal.
  state->backoff =
      Backoff((static_cast<std::uint64_t>(nic_->nid()) << 32) ^ request_id);

  // Reply slot: one message-mode entry matched by request id, delivering
  // into the client-wide completion queue.
  portals::MeOptions reply_opts;
  reply_opts.allow_put = true;
  reply_opts.message_mode = true;
  reply_opts.unlink_on_use = true;
  auto reply_me = nic_->Attach(kReplyPortal, request_id, 0, {}, reply_opts,
                               &completions_);
  if (!reply_me.ok()) return reply_me.status();
  state->reply_region = portals::RegisteredRegion(nic_, *reply_me);

  // Bulk registrations.  The server may move data in chunks at its own
  // pace, so the entries persist until the completion event (the engine
  // detaches them in FinishCall).
  if (!options.bulk_out.empty()) {
    portals::MeOptions opts;
    opts.allow_get = true;
    // Attach treats the span as mutable but a get-only entry never writes.
    MutableByteSpan span(const_cast<std::uint8_t*>(options.bulk_out.data()),
                         options.bulk_out.size());
    auto me = nic_->Attach(kBulkPortal, request_id, 0, span, opts, nullptr);
    if (!me.ok()) return me.status();
    state->out_region = portals::RegisteredRegion(nic_, *me);
  }
  if (!options.bulk_in.empty()) {
    portals::MeOptions opts;
    opts.allow_put = true;
    auto me = nic_->Attach(kBulkPortal, request_id, 0, options.bulk_in, opts,
                           nullptr);
    if (!me.ok()) return me.status();
    state->in_region = portals::RegisteredRegion(nic_, *me);
  }

  Encoder enc;
  EncodeHeader(enc, opcode, request_id, nic_->nid(), options.bulk_out.size(),
               options.bulk_in.size());
  enc.PutRaw(request);
  state->wire = enc.buffer();

  Status send_failure = OkStatus();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      send_failure = Aborted("rpc client shutting down");
    } else {
      EnsureEngineLocked();
      // Register before the first Put: the reply can race back from a
      // server worker before this thread takes another step.
      inflight_.emplace(request_id, state);
      state->next_send = Clock::now();
      Status failure = OkStatus();
      if (!TrySendLocked(*state, &failure)) {
        inflight_.erase(request_id);
        send_failure = std::move(failure);
      }
    }
  }
  if (!send_failure.ok()) {
    state->reply_region.Release();
    state->out_region.Release();
    state->in_region.Release();
    failures_.fetch_add(1, std::memory_order_relaxed);
    return send_failure;
  }
  // The engine may be sleeping toward a far-off deadline; make it take
  // this call's deadline/resend schedule into account.
  WakeEngine();
  return CallHandle(state);
}

Result<Buffer> RpcClient::Call(portals::Nid server, Opcode opcode,
                               ByteSpan request, const CallOptions& options) {
  auto handle = CallAsync(server, opcode, request, options);
  if (!handle.ok()) return handle.status();
  return handle->Await();
}

void RpcClient::EngineLoop() {
  for (;;) {
    // Timer pass: retry rejected sends whose backoff expired, fail calls
    // whose reply deadline passed, and find the next wake-up time.
    Clock::time_point next_wake = Clock::time_point::max();
    std::vector<std::pair<std::shared_ptr<detail::CallState>, Status>> failed;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
      const auto now = Clock::now();
      for (auto it = inflight_.begin(); it != inflight_.end();) {
        detail::CallState& state = *it->second;
        if (!state.accepted && now >= state.next_send) {
          Status failure = OkStatus();
          if (!TrySendLocked(state, &failure)) {
            failed.emplace_back(std::move(it->second), std::move(failure));
            it = inflight_.erase(it);
            continue;
          }
        }
        if (state.accepted && now >= state.deadline) {
          failed.emplace_back(std::move(it->second),
                              Timeout("no reply from server"));
          it = inflight_.erase(it);
          continue;
        }
        next_wake = std::min(next_wake,
                             state.accepted ? state.deadline : state.next_send);
        ++it;
      }
    }
    for (auto& [state, status] : failed) {
      FinishCall(state, std::move(status));
    }

    std::optional<portals::Event> event;
    const auto now = Clock::now();
    if (next_wake == Clock::time_point::max()) {
      // Nothing in flight: sleep until a new call wakes us.
      event = completions_.WaitFor(std::chrono::hours(1));
    } else if (next_wake > now) {
      event = completions_.WaitFor(next_wake - now);
    } else {
      event = completions_.Poll();
    }
    if (!event) continue;                                  // timer due
    if (event->type != portals::EventType::kPut) continue;  // wake-up ping

    // A reply: route it to its call by request id (completions for calls
    // that already timed out find no entry and are dropped).
    std::shared_ptr<detail::CallState> state;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = inflight_.find(event->match_bits);
      if (it != inflight_.end()) {
        state = std::move(it->second);
        inflight_.erase(it);
      }
    }
    if (state) FinishCall(state, DecodeReply(event->payload));
  }
}

// ---------------------------------------------------------------------------
// ServerContext
// ---------------------------------------------------------------------------

Status ServerContext::PullBulk(MutableByteSpan out, std::size_t offset) {
  if (offset + out.size() > bulk_out_len_) {
    return OutOfRange("pull beyond client's registered payload");
  }
  return nic_->Get(client_, kBulkPortal, request_id_, out, offset);
}

Status ServerContext::PushBulk(ByteSpan data, std::size_t offset) {
  if (offset + data.size() > bulk_in_len_) {
    return OutOfRange("push beyond client's registered region");
  }
  return nic_->Put(client_, kBulkPortal, request_id_, data, offset);
}

// ---------------------------------------------------------------------------
// RpcServer
// ---------------------------------------------------------------------------

RpcServer::RpcServer(std::shared_ptr<portals::Nic> nic, ServerOptions options)
    : nic_(std::move(nic)),
      options_(options),
      request_eq_(options.request_queue_depth) {}

RpcServer::~RpcServer() { Stop(); }

void RpcServer::RegisterHandler(Opcode opcode, Handler handler) {
  handlers_[opcode] = std::move(handler);
}

Status RpcServer::Start() {
  if (started_) return FailedPrecondition("server already started");
  portals::MeOptions opts;
  opts.allow_put = true;
  opts.message_mode = true;
  auto me = nic_->Attach(options_.request_portal, 0, ~0ULL, {}, opts,
                         &request_eq_);
  if (!me.ok()) return me.status();
  request_me_ = *me;
  for (int i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  started_ = true;
  return OkStatus();
}

void RpcServer::Stop() {
  if (!started_) return;
  (void)nic_->Detach(request_me_);
  request_eq_.Close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  started_ = false;
}

void RpcServer::WorkerLoop() {
  for (;;) {
    auto event = request_eq_.Wait();
    if (!event) return;  // queue closed
    Dispatch(*event);
    served_.fetch_add(1, std::memory_order_relaxed);
  }
}

void RpcServer::Dispatch(const portals::Event& event) {
  Decoder dec(event.payload);
  auto header = DecodeHeader(dec);
  if (!header.ok()) {
    LWFS_WARN << "dropping malformed request from nid " << event.initiator;
    return;
  }

  Result<Buffer> result = Buffer{};
  auto it = handlers_.find(header->opcode);
  if (it == handlers_.end()) {
    result = InvalidArgument("unknown opcode");
  } else {
    ServerContext ctx(nic_.get(), header->client, header->request_id,
                      header->bulk_out_len, header->bulk_in_len);
    result = it->second(ctx, dec);
  }

  Encoder reply;
  if (result.ok()) {
    reply.PutU32(static_cast<std::uint32_t>(ErrorCode::kOk));
    reply.PutString("");
    reply.PutBytes(ByteSpan(result.value()));
  } else {
    reply.PutU32(static_cast<std::uint32_t>(result.status().code()));
    reply.PutString(result.status().message());
    reply.PutBytes({});
  }
  Status sent = nic_->Put(header->client, kReplyPortal, header->request_id,
                          ByteSpan(reply.buffer()));
  if (!sent.ok()) {
    LWFS_DEBUG << "reply to nid " << header->client
               << " dropped: " << sent.ToString();
  }
}

}  // namespace lwfs::rpc
