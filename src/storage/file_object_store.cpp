#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "storage/object_store.h"
#include "util/logging.h"

namespace lwfs::storage {

namespace fs = std::filesystem;

FileObjectStore::FileObjectStore(std::string directory)
    : dir_(std::move(directory)) {}

Result<std::unique_ptr<FileObjectStore>> FileObjectStore::Open(
    const std::string& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) return Internal("cannot create store directory: " + ec.message());
  auto store = std::unique_ptr<FileObjectStore>(new FileObjectStore(directory));
  LWFS_RETURN_IF_ERROR(store->LoadExisting());
  return store;
}

std::string FileObjectStore::DataPath(ObjectId oid) const {
  return dir_ + "/" + std::to_string(oid.value) + ".obj";
}
std::string FileObjectStore::MetaPath(ObjectId oid) const {
  return dir_ + "/" + std::to_string(oid.value) + ".meta";
}

Status FileObjectStore::LoadExisting() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.path().extension() != ".meta") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    Buffer raw((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
    Decoder dec(raw);
    auto oid_v = dec.GetU64();
    auto cid_v = dec.GetU64();
    auto size = dec.GetU64();
    auto version = dec.GetU64();
    if (!oid_v.ok() || !cid_v.ok() || !size.ok() || !version.ok()) {
      LWFS_WARN << "skipping corrupt meta file " << entry.path().string();
      continue;
    }
    ObjectId oid{*oid_v};
    attrs_[oid] = ObjAttr{ContainerId{*cid_v}, *size, *version};
    next_id_ = std::max(next_id_, oid.value + 1);
  }
  if (ec) return Internal("cannot scan store directory: " + ec.message());
  return OkStatus();
}

Status FileObjectStore::WriteMetaLocked(ObjectId oid, const ObjAttr& attr) {
  Encoder enc;
  enc.PutU64(oid.value);
  enc.PutU64(attr.cid.value);
  enc.PutU64(attr.size);
  enc.PutU64(attr.version);
  std::ofstream out(MetaPath(oid), std::ios::binary | std::ios::trunc);
  if (!out) return Internal("cannot write meta file");
  out.write(reinterpret_cast<const char*>(enc.buffer().data()),
            static_cast<std::streamsize>(enc.size()));
  return out ? OkStatus() : Internal("meta write failed");
}

Result<ObjectId> FileObjectStore::Create(ContainerId cid) {
  if (cid == kInvalidContainer) return InvalidArgument("invalid container");
  std::lock_guard<std::mutex> lock(mutex_);
  ObjectId oid{next_id_++};
  ObjAttr attr{cid, 0, 0};
  LWFS_RETURN_IF_ERROR(WriteMetaLocked(oid, attr));
  std::ofstream(DataPath(oid), std::ios::binary | std::ios::trunc);
  attrs_[oid] = attr;
  return oid;
}

Status FileObjectStore::CreateWithId(ContainerId cid, ObjectId oid) {
  if (cid == kInvalidContainer) return InvalidArgument("invalid container");
  if (oid == kInvalidObject) return InvalidArgument("invalid object id");
  std::lock_guard<std::mutex> lock(mutex_);
  if (attrs_.contains(oid)) return AlreadyExists("object exists");
  // Replicated (bit-62) ids must not drag the local counter into their
  // id space — see MemObjectStore::CreateWithId.
  if (!IsReplicatedOid(oid)) next_id_ = std::max(next_id_, oid.value + 1);
  ObjAttr attr{cid, 0, 0};
  LWFS_RETURN_IF_ERROR(WriteMetaLocked(oid, attr));
  std::ofstream(DataPath(oid), std::ios::binary | std::ios::trunc);
  attrs_[oid] = attr;
  return OkStatus();
}

Status FileObjectStore::Remove(ObjectId oid) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = attrs_.find(oid);
  if (it == attrs_.end()) return NotFound("no such object");
  std::error_code ec;
  fs::remove(DataPath(oid), ec);
  fs::remove(MetaPath(oid), ec);
  attrs_.erase(it);
  return OkStatus();
}

Status FileObjectStore::Write(ObjectId oid, std::uint64_t offset,
                              ByteSpan data) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = attrs_.find(oid);
  if (it == attrs_.end()) return NotFound("no such object");
  std::fstream f(DataPath(oid),
                 std::ios::binary | std::ios::in | std::ios::out);
  if (!f) return Internal("cannot open object file");
  // Extend with zeros up to `offset` if writing past EOF.
  if (offset > it->second.size) {
    f.seekp(0, std::ios::end);
    Buffer zeros(offset - it->second.size, 0);
    f.write(reinterpret_cast<const char*>(zeros.data()),
            static_cast<std::streamsize>(zeros.size()));
  }
  f.seekp(static_cast<std::streamoff>(offset));
  // The store-medium copy: the write path's one budgeted copy.
  LWFS_COUNT_COPY(util::CopyKind::kStore, data.size());
  f.write(reinterpret_cast<const char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  if (!f) return Internal("object write failed");
  f.close();
  it->second.size = std::max(it->second.size, offset + data.size());
  ++it->second.version;
  return WriteMetaLocked(oid, it->second);
}

Result<Buffer> FileObjectStore::Read(ObjectId oid, std::uint64_t offset,
                                     std::uint64_t length) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = attrs_.find(oid);
  if (it == attrs_.end()) return NotFound("no such object");
  if (offset >= it->second.size) return Buffer{};
  const std::uint64_t n = std::min(length, it->second.size - offset);
  std::ifstream f(DataPath(oid), std::ios::binary);
  if (!f) return Internal("cannot open object file");
  f.seekg(static_cast<std::streamoff>(offset));
  // Medium -> host buffer: the read path's one budgeted copy.
  LWFS_COUNT_COPY(util::CopyKind::kStore, n);
  Buffer out(n, 0);
  f.read(reinterpret_cast<char*>(out.data()), static_cast<std::streamsize>(n));
  out.resize(static_cast<std::size_t>(f.gcount()));
  return out;
}

Status FileObjectStore::Truncate(ObjectId oid, std::uint64_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = attrs_.find(oid);
  if (it == attrs_.end()) return NotFound("no such object");
  std::error_code ec;
  fs::resize_file(DataPath(oid), size, ec);
  if (ec) return Internal("truncate failed: " + ec.message());
  it->second.size = size;
  ++it->second.version;
  return WriteMetaLocked(oid, it->second);
}

Result<ObjAttr> FileObjectStore::GetAttr(ObjectId oid) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = attrs_.find(oid);
  if (it == attrs_.end()) return NotFound("no such object");
  return it->second;
}

Status FileObjectStore::SetVersion(ObjectId oid, std::uint64_t version) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = attrs_.find(oid);
  if (it == attrs_.end()) return NotFound("no such object");
  if (version <= it->second.version) return OkStatus();
  ObjAttr attr = it->second;
  attr.version = version;
  LWFS_RETURN_IF_ERROR(WriteMetaLocked(oid, attr));
  it->second = attr;
  return OkStatus();
}

Result<std::vector<ObjectId>> FileObjectStore::List(ContainerId cid) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ObjectId> out;
  for (const auto& [oid, attr] : attrs_) {
    if (attr.cid == cid) out.push_back(oid);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<ObjectId>> FileObjectStore::ListAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ObjectId> out;
  out.reserve(attrs_.size());
  for (const auto& [oid, attr] : attrs_) out.push_back(oid);
  std::sort(out.begin(), out.end());
  return out;
}

Status FileObjectStore::Sync() {
  // Streams are closed per-operation; nothing buffered at this layer.
  return OkStatus();
}

std::uint64_t FileObjectStore::ObjectCount() {
  std::lock_guard<std::mutex> lock(mutex_);
  return attrs_.size();
}

}  // namespace lwfs::storage
