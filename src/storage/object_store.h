// Object store: the mechanism half of an object-based storage device.
//
// The store knows nothing about users or policy — authorization is enforced
// one layer up by the LWFS storage *server* (src/core/storage_server.h),
// which checks capabilities before touching the store.  This split is the
// "policy decisions vs. policy enforcement" separation of Figure 7.
//
// Three backends:
//  * MemObjectStore    — flat buffers in memory (tests, benches).
//  * BlockObjectStore  — objects mapped onto a flat block device through
//                        BlockAllocator; block-layout decisions live here,
//                        exactly where §3.3 says an OBD makes them.
//  * FileObjectStore   — one file per object under a directory; durable
//                        across process restarts (checkpoint/restart demo).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/block_allocator.h"
#include "storage/ids.h"
#include "util/bytes.h"
#include "util/shared_buffer.h"
#include "util/status.h"

namespace lwfs::util {
class ReadBufferPool;
}  // namespace lwfs::util

namespace lwfs::storage {

/// Per-object attributes.
struct ObjAttr {
  ContainerId cid;
  std::uint64_t size = 0;     // highest byte written + 1
  std::uint64_t version = 0;  // bumped on every write/truncate
};

/// Abstract object store.  All implementations are thread-safe.
class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  /// Create an empty object in `cid`; the store assigns the id.
  virtual Result<ObjectId> Create(ContainerId cid) = 0;

  /// Create an object with a caller-chosen id (used on recovery replay).
  virtual Status CreateWithId(ContainerId cid, ObjectId oid) = 0;

  /// Remove an object and release its storage.
  virtual Status Remove(ObjectId oid) = 0;

  /// Write `data` at `offset`, extending the object as needed.
  virtual Status Write(ObjectId oid, std::uint64_t offset, ByteSpan data) = 0;

  /// Slice write — the zero-copy path's terminal call.  The store's copy
  /// of the payload into its own medium (counted as CopyKind::kStore) is
  /// the write path's single budgeted copy; NullObjectStore performs none.
  /// The default forwards to Write().
  virtual Status WriteSlice(ObjectId oid, std::uint64_t offset,
                            const util::SharedSlice& data) {
    return Write(oid, offset, data.span());
  }

  /// Read up to `length` bytes from `offset`.  Reads beyond EOF return a
  /// short (possibly empty) buffer; holes read as zero.
  virtual Result<Buffer> Read(ObjectId oid, std::uint64_t offset,
                              std::uint64_t length) = 0;

  /// Slice read — the zero-copy read path's origin.  Returns a ref-counted
  /// slice backed by store memory; the store's copy out of its own medium
  /// (counted as CopyKind::kStore) is the read path's single budgeted copy,
  /// and every layer above hands the same bytes along by reference.  Reads
  /// beyond EOF return a short (possibly empty) slice; holes read as zero.
  /// The default forwards to Read() and adopts the buffer without a second
  /// copy.
  virtual Result<util::SharedSlice> ReadSlice(ObjectId oid,
                                              std::uint64_t offset,
                                              std::uint64_t length) {
    auto data = Read(oid, offset, length);
    if (!data.ok()) return data.status();
    return util::SharedSlice::FromBuffer(std::move(*data));
  }

  /// Truncate the object to `size` bytes (grow fills with zeros).
  virtual Status Truncate(ObjectId oid, std::uint64_t size) = 0;

  virtual Result<ObjAttr> GetAttr(ObjectId oid) = 0;

  /// Raise the object's version to `version` (no-op if already past it).
  /// Versions count applied writes, so two replicas that saw the same
  /// write sequence agree — but a repair rebuilds a member with fewer,
  /// larger writes, and the final repair chunk uses this to bring the
  /// member's version up to its source's.  Data bytes are untouched.
  virtual Status SetVersion(ObjectId oid, std::uint64_t version) = 0;

  /// Ids of all live objects in a container (unspecified order).
  virtual Result<std::vector<ObjectId>> List(ContainerId cid) = 0;

  /// Ids of all live objects across every container, ascending.  Restart
  /// re-registration walks this to report surviving replicated objects to
  /// the replica registry.  Backends that cannot enumerate report failure.
  virtual Result<std::vector<ObjectId>> ListAll() {
    return FailedPrecondition("store cannot enumerate objects");
  }

  /// Flush to stable storage where the backend supports it.
  virtual Status Sync() { return OkStatus(); }

  /// Number of live objects (all containers).
  virtual std::uint64_t ObjectCount() = 0;
};

/// In-memory store: each object is a contiguous grow-on-write buffer.
class MemObjectStore final : public ObjectStore {
 public:
  MemObjectStore();

  Result<ObjectId> Create(ContainerId cid) override;
  Status CreateWithId(ContainerId cid, ObjectId oid) override;
  Status Remove(ObjectId oid) override;
  Status Write(ObjectId oid, std::uint64_t offset, ByteSpan data) override;
  Result<Buffer> Read(ObjectId oid, std::uint64_t offset,
                      std::uint64_t length) override;
  /// Overrides the adopt-a-Read default: copies into a pooled block so
  /// steady-state slice reads land on warm pages (see util/buffer_pool.h)
  /// instead of paying a fresh multi-megabyte allocation per read.  Still
  /// exactly one budgeted kStore copy.
  Result<util::SharedSlice> ReadSlice(ObjectId oid, std::uint64_t offset,
                                      std::uint64_t length) override;
  Status Truncate(ObjectId oid, std::uint64_t size) override;
  Result<ObjAttr> GetAttr(ObjectId oid) override;
  Status SetVersion(ObjectId oid, std::uint64_t version) override;
  Result<std::vector<ObjectId>> List(ContainerId cid) override;
  Result<std::vector<ObjectId>> ListAll() override;
  std::uint64_t ObjectCount() override;

 private:
  struct Object {
    ContainerId cid;
    Buffer data;
    std::uint64_t version = 0;
  };

  std::mutex mutex_;
  std::uint64_t next_id_ = 1;
  std::unordered_map<ObjectId, Object> objects_;
  std::shared_ptr<util::ReadBufferPool> read_pool_;
};

/// Attribute-only store: tracks per-object metadata (container, size,
/// version) but discards the data bytes; reads return zeros.  For
/// million-object scale harnesses (bench/petascale) where what matters is
/// the modeled control/data path, not the payload contents — per-object
/// cost is a map entry instead of a buffer.
class NullObjectStore final : public ObjectStore {
 public:
  NullObjectStore() = default;

  Result<ObjectId> Create(ContainerId cid) override;
  Status CreateWithId(ContainerId cid, ObjectId oid) override;
  Status Remove(ObjectId oid) override;
  Status Write(ObjectId oid, std::uint64_t offset, ByteSpan data) override;
  Result<Buffer> Read(ObjectId oid, std::uint64_t offset,
                      std::uint64_t length) override;
  Status Truncate(ObjectId oid, std::uint64_t size) override;
  Result<ObjAttr> GetAttr(ObjectId oid) override;
  Status SetVersion(ObjectId oid, std::uint64_t version) override;
  Result<std::vector<ObjectId>> List(ContainerId cid) override;
  Result<std::vector<ObjectId>> ListAll() override;
  std::uint64_t ObjectCount() override;

 private:
  std::mutex mutex_;
  std::uint64_t next_id_ = 1;
  std::unordered_map<ObjectId, ObjAttr> objects_;
};

/// Block-device-backed store: object bytes live in fixed-size blocks
/// allocated from a flat device image; each object keeps an ordered extent
/// list.  Demonstrates device-side block-layout decisions.
class BlockObjectStore final : public ObjectStore {
 public:
  /// Device of `total_blocks` blocks of `block_size` bytes each.
  BlockObjectStore(std::uint64_t total_blocks, std::uint32_t block_size);

  Result<ObjectId> Create(ContainerId cid) override;
  Status CreateWithId(ContainerId cid, ObjectId oid) override;
  Status Remove(ObjectId oid) override;
  Status Write(ObjectId oid, std::uint64_t offset, ByteSpan data) override;
  Result<Buffer> Read(ObjectId oid, std::uint64_t offset,
                      std::uint64_t length) override;
  Status Truncate(ObjectId oid, std::uint64_t size) override;
  Result<ObjAttr> GetAttr(ObjectId oid) override;
  Status SetVersion(ObjectId oid, std::uint64_t version) override;
  Result<std::vector<ObjectId>> List(ContainerId cid) override;
  Result<std::vector<ObjectId>> ListAll() override;
  std::uint64_t ObjectCount() override;

  [[nodiscard]] std::uint32_t block_size() const { return block_size_; }
  /// Free blocks remaining on the device.
  [[nodiscard]] std::uint64_t FreeBlocks();
  /// Allocator invariants hold and no block belongs to two objects.
  [[nodiscard]] bool CheckInvariants();

 private:
  struct Object {
    ContainerId cid;
    std::uint64_t size = 0;
    std::uint64_t version = 0;
    std::vector<Extent> extents;  // logical block i -> physical via walk
  };

  /// Physical byte address of logical block `lbn` of `obj`, or nullopt if
  /// the block is not allocated (hole).
  std::optional<std::uint64_t> PhysicalOffsetLocked(const Object& obj,
                                                    std::uint64_t lbn) const;
  /// Ensure the object has blocks covering logical bytes [0, size).
  Status EnsureBlocksLocked(Object& obj, std::uint64_t size);

  std::mutex mutex_;
  const std::uint32_t block_size_;
  BlockAllocator allocator_;
  Buffer device_;  // the flat device image
  std::uint64_t next_id_ = 1;
  std::unordered_map<ObjectId, Object> objects_;
};

/// Directory-backed store: object <oid>.obj holds data, <oid>.meta holds
/// attributes.  Survives process restart; Sync() is a real fsync-like flush.
class FileObjectStore final : public ObjectStore {
 public:
  /// Opens (and on first use creates) the store rooted at `directory`.
  /// Existing objects are picked up from disk.
  static Result<std::unique_ptr<FileObjectStore>> Open(
      const std::string& directory);

  Result<ObjectId> Create(ContainerId cid) override;
  Status CreateWithId(ContainerId cid, ObjectId oid) override;
  Status Remove(ObjectId oid) override;
  Status Write(ObjectId oid, std::uint64_t offset, ByteSpan data) override;
  Result<Buffer> Read(ObjectId oid, std::uint64_t offset,
                      std::uint64_t length) override;
  Status Truncate(ObjectId oid, std::uint64_t size) override;
  Result<ObjAttr> GetAttr(ObjectId oid) override;
  Status SetVersion(ObjectId oid, std::uint64_t version) override;
  Result<std::vector<ObjectId>> List(ContainerId cid) override;
  Result<std::vector<ObjectId>> ListAll() override;
  Status Sync() override;
  std::uint64_t ObjectCount() override;

 private:
  explicit FileObjectStore(std::string directory);
  Status LoadExisting();
  [[nodiscard]] std::string DataPath(ObjectId oid) const;
  [[nodiscard]] std::string MetaPath(ObjectId oid) const;
  Status WriteMetaLocked(ObjectId oid, const ObjAttr& attr);

  std::mutex mutex_;
  std::string dir_;
  std::uint64_t next_id_ = 1;
  std::unordered_map<ObjectId, ObjAttr> attrs_;
};

}  // namespace lwfs::storage
