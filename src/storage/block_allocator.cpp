#include "storage/block_allocator.h"

#include <algorithm>

namespace lwfs::storage {

BlockAllocator::BlockAllocator(std::uint64_t total_blocks)
    : total_blocks_(total_blocks), free_blocks_(total_blocks) {
  if (total_blocks > 0) free_.emplace(0, total_blocks);
}

Result<std::vector<Extent>> BlockAllocator::Allocate(std::uint64_t blocks) {
  if (blocks == 0) return InvalidArgument("zero-block allocation");
  if (blocks > free_blocks_) return ResourceExhausted("device full");
  std::vector<Extent> out;
  std::uint64_t need = blocks;
  auto it = free_.begin();
  while (need > 0) {
    // free_blocks_ >= blocks guarantees we never run off the end.
    const std::uint64_t take = std::min(need, it->second);
    out.push_back(Extent{it->first, take});
    if (take == it->second) {
      it = free_.erase(it);
    } else {
      // Shrink the extent from the front.
      const std::uint64_t new_start = it->first + take;
      const std::uint64_t new_len = it->second - take;
      it = free_.erase(it);
      it = free_.emplace_hint(it, new_start, new_len);
      ++it;
    }
    need -= take;
  }
  free_blocks_ -= blocks;
  return out;
}

Result<Extent> BlockAllocator::AllocateContiguous(std::uint64_t blocks) {
  if (blocks == 0) return InvalidArgument("zero-block allocation");
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second >= blocks) {
      Extent e{it->first, blocks};
      if (it->second == blocks) {
        free_.erase(it);
      } else {
        const std::uint64_t new_start = it->first + blocks;
        const std::uint64_t new_len = it->second - blocks;
        free_.erase(it);
        free_.emplace(new_start, new_len);
      }
      free_blocks_ -= blocks;
      return e;
    }
  }
  return ResourceExhausted("no contiguous run of requested size");
}

Status BlockAllocator::Free(const Extent& extent) {
  if (extent.length == 0) return InvalidArgument("zero-length free");
  if (extent.start + extent.length > total_blocks_) {
    return OutOfRange("extent beyond device");
  }
  // Find the free extent at or after the one being returned and check for
  // overlap with both neighbours.
  auto next = free_.lower_bound(extent.start);
  if (next != free_.end() && next->first < extent.start + extent.length) {
    return InvalidArgument("double free (overlaps following free extent)");
  }
  if (next != free_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second > extent.start) {
      return InvalidArgument("double free (overlaps preceding free extent)");
    }
  }

  std::uint64_t start = extent.start;
  std::uint64_t length = extent.length;
  // Coalesce with the preceding extent.
  if (next != free_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == start) {
      start = prev->first;
      length += prev->second;
      free_.erase(prev);
    }
  }
  // Coalesce with the following extent.
  if (next != free_.end() && next->first == extent.start + extent.length) {
    length += next->second;
    free_.erase(next);
  }
  free_.emplace(start, length);
  free_blocks_ += extent.length;
  return OkStatus();
}

bool BlockAllocator::CheckInvariants() const {
  std::uint64_t sum = 0;
  std::uint64_t prev_end = 0;
  bool first = true;
  for (const auto& [start, len] : free_) {
    if (len == 0) return false;
    if (start + len > total_blocks_) return false;
    if (!first && start <= prev_end) return false;  // overlap or uncoalesced
    prev_end = start + len;
    sum += len;
    first = false;
  }
  return sum == free_blocks_ && free_blocks_ <= total_blocks_;
}

}  // namespace lwfs::storage
