#include <algorithm>
#include <cstring>

#include "storage/object_store.h"
#include "util/buffer_pool.h"

namespace lwfs::storage {

MemObjectStore::MemObjectStore()
    : read_pool_(util::ReadBufferPool::Create()) {}

Result<ObjectId> MemObjectStore::Create(ContainerId cid) {
  if (cid == kInvalidContainer) return InvalidArgument("invalid container");
  std::lock_guard<std::mutex> lock(mutex_);
  ObjectId oid{next_id_++};
  objects_.emplace(oid, Object{cid, {}, 0});
  return oid;
}

Status MemObjectStore::CreateWithId(ContainerId cid, ObjectId oid) {
  if (cid == kInvalidContainer) return InvalidArgument("invalid container");
  if (oid == kInvalidObject) return InvalidArgument("invalid object id");
  std::lock_guard<std::mutex> lock(mutex_);
  if (objects_.contains(oid)) return AlreadyExists("object exists");
  // Registry-allocated replicated ids live in their own (bit-62) id space;
  // letting one drag next_id_ past the bit would make plain Create() mint
  // ids that *look* replicated.
  if (!IsReplicatedOid(oid)) next_id_ = std::max(next_id_, oid.value + 1);
  objects_.emplace(oid, Object{cid, {}, 0});
  return OkStatus();
}

Status MemObjectStore::Remove(ObjectId oid) {
  std::lock_guard<std::mutex> lock(mutex_);
  return objects_.erase(oid) != 0 ? OkStatus() : NotFound("no such object");
}

Status MemObjectStore::Write(ObjectId oid, std::uint64_t offset,
                             ByteSpan data) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objects_.find(oid);
  if (it == objects_.end()) return NotFound("no such object");
  Object& obj = it->second;
  const std::uint64_t end = offset + data.size();
  if (obj.data.size() < end) obj.data.resize(end, 0);
  if (!data.empty()) {
    // The store-medium copy: the write path's one budgeted copy.
    LWFS_COUNT_COPY(util::CopyKind::kStore, data.size());
    std::memcpy(obj.data.data() + offset, data.data(), data.size());
  }
  ++obj.version;
  return OkStatus();
}

Result<Buffer> MemObjectStore::Read(ObjectId oid, std::uint64_t offset,
                                    std::uint64_t length) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objects_.find(oid);
  if (it == objects_.end()) return NotFound("no such object");
  const Buffer& data = it->second.data;
  if (offset >= data.size()) return Buffer{};
  const std::uint64_t n = std::min<std::uint64_t>(length, data.size() - offset);
  // Medium -> host buffer: the read path's one budgeted copy.
  LWFS_COUNT_COPY(util::CopyKind::kStore, n);
  return Buffer(data.begin() + static_cast<std::ptrdiff_t>(offset),
                data.begin() + static_cast<std::ptrdiff_t>(offset + n));
}

Result<util::SharedSlice> MemObjectStore::ReadSlice(ObjectId oid,
                                                    std::uint64_t offset,
                                                    std::uint64_t length) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objects_.find(oid);
  if (it == objects_.end()) return NotFound("no such object");
  const Buffer& data = it->second.data;
  const std::uint64_t n =
      offset < data.size()
          ? std::min<std::uint64_t>(length, data.size() - offset)
          : 0;
  if (n == 0) return util::SharedSlice::FromBuffer(Buffer{});
  // Medium -> pooled host buffer: the read path's one budgeted copy.
  return read_pool_->CopyOut(
      ByteSpan(data.data() + offset, static_cast<std::size_t>(n)),
      util::CopyKind::kStore);
}

Status MemObjectStore::Truncate(ObjectId oid, std::uint64_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objects_.find(oid);
  if (it == objects_.end()) return NotFound("no such object");
  it->second.data.resize(size, 0);
  ++it->second.version;
  return OkStatus();
}

Result<ObjAttr> MemObjectStore::GetAttr(ObjectId oid) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objects_.find(oid);
  if (it == objects_.end()) return NotFound("no such object");
  return ObjAttr{it->second.cid, it->second.data.size(), it->second.version};
}

Status MemObjectStore::SetVersion(ObjectId oid, std::uint64_t version) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objects_.find(oid);
  if (it == objects_.end()) return NotFound("no such object");
  it->second.version = std::max(it->second.version, version);
  return OkStatus();
}

Result<std::vector<ObjectId>> MemObjectStore::List(ContainerId cid) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ObjectId> out;
  for (const auto& [oid, obj] : objects_) {
    if (obj.cid == cid) out.push_back(oid);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<ObjectId>> MemObjectStore::ListAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ObjectId> out;
  out.reserve(objects_.size());
  for (const auto& [oid, obj] : objects_) out.push_back(oid);
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t MemObjectStore::ObjectCount() {
  std::lock_guard<std::mutex> lock(mutex_);
  return objects_.size();
}

}  // namespace lwfs::storage
