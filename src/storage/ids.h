// Strongly-typed identifiers for the object-storage layer.
//
// Every object belongs to exactly one container; containers are the unit of
// access control in LWFS (§3.1.1).  Strong typedefs keep the two id spaces
// from being mixed up at compile time.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace lwfs::storage {

struct ContainerId {
  std::uint64_t value = 0;
  auto operator<=>(const ContainerId&) const = default;
};

struct ObjectId {
  std::uint64_t value = 0;
  auto operator<=>(const ObjectId&) const = default;
};

inline constexpr ContainerId kInvalidContainer{0};
inline constexpr ObjectId kInvalidObject{0};

/// Replicated objects carry ids allocated by the replica registry instead of
/// a store's local monotonic counter.  The registry sets this bit so the two
/// id spaces can never collide (stores count up from 1 and will never reach
/// bit 62), and so readers can tell from a bare ObjectRef whether a replica
/// chain must be looked up.
inline constexpr std::uint64_t kReplicatedOidBit = 1ULL << 62;

inline constexpr bool IsReplicatedOid(ObjectId oid) {
  return (oid.value & kReplicatedOidBit) != 0;
}

/// Fully-qualified object reference as carried in RPCs and naming entries:
/// the container pins the access-control domain, the server id pins the
/// placement, the object id pins the data.
struct ObjectRef {
  ContainerId cid;
  std::uint32_t server_index = 0;  // which storage server holds the object
  ObjectId oid;
  auto operator<=>(const ObjectRef&) const = default;
};

}  // namespace lwfs::storage

namespace std {
template <>
struct hash<lwfs::storage::ContainerId> {
  size_t operator()(const lwfs::storage::ContainerId& c) const noexcept {
    return std::hash<std::uint64_t>{}(c.value);
  }
};
template <>
struct hash<lwfs::storage::ObjectId> {
  size_t operator()(const lwfs::storage::ObjectId& o) const noexcept {
    return std::hash<std::uint64_t>{}(o.value ^ 0x9E3779B97F4A7C15ULL);
  }
};
}  // namespace std
