#include <algorithm>
#include <cstring>
#include <optional>

#include "storage/object_store.h"

namespace lwfs::storage {

BlockObjectStore::BlockObjectStore(std::uint64_t total_blocks,
                                   std::uint32_t block_size)
    : block_size_(block_size),
      allocator_(total_blocks),
      device_(total_blocks * block_size, 0) {}

Result<ObjectId> BlockObjectStore::Create(ContainerId cid) {
  if (cid == kInvalidContainer) return InvalidArgument("invalid container");
  std::lock_guard<std::mutex> lock(mutex_);
  ObjectId oid{next_id_++};
  objects_.emplace(oid, Object{cid, 0, 0, {}});
  return oid;
}

Status BlockObjectStore::CreateWithId(ContainerId cid, ObjectId oid) {
  if (cid == kInvalidContainer) return InvalidArgument("invalid container");
  if (oid == kInvalidObject) return InvalidArgument("invalid object id");
  std::lock_guard<std::mutex> lock(mutex_);
  if (objects_.contains(oid)) return AlreadyExists("object exists");
  // Replicated (bit-62) ids must not drag the local counter into their
  // id space — see MemObjectStore::CreateWithId.
  if (!IsReplicatedOid(oid)) next_id_ = std::max(next_id_, oid.value + 1);
  objects_.emplace(oid, Object{cid, 0, 0, {}});
  return OkStatus();
}

Status BlockObjectStore::Remove(ObjectId oid) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objects_.find(oid);
  if (it == objects_.end()) return NotFound("no such object");
  for (const Extent& e : it->second.extents) {
    LWFS_RETURN_IF_ERROR(allocator_.Free(e));
  }
  objects_.erase(it);
  return OkStatus();
}

std::optional<std::uint64_t> BlockObjectStore::PhysicalOffsetLocked(
    const Object& obj, std::uint64_t lbn) const {
  std::uint64_t skip = lbn;
  for (const Extent& e : obj.extents) {
    if (skip < e.length) return (e.start + skip) * block_size_;
    skip -= e.length;
  }
  return std::nullopt;
}

Status BlockObjectStore::EnsureBlocksLocked(Object& obj, std::uint64_t size) {
  const std::uint64_t need_blocks = (size + block_size_ - 1) / block_size_;
  std::uint64_t have_blocks = 0;
  for (const Extent& e : obj.extents) have_blocks += e.length;
  if (have_blocks >= need_blocks) return OkStatus();
  auto grown = allocator_.Allocate(need_blocks - have_blocks);
  if (!grown.ok()) return grown.status();
  for (Extent& e : *grown) {
    // Freshly allocated blocks must read as zero (they may hold stale data
    // from a removed object).
    std::memset(device_.data() + e.start * block_size_, 0,
                e.length * block_size_);
    obj.extents.push_back(e);
  }
  return OkStatus();
}

Status BlockObjectStore::Write(ObjectId oid, std::uint64_t offset,
                               ByteSpan data) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objects_.find(oid);
  if (it == objects_.end()) return NotFound("no such object");
  Object& obj = it->second;
  const std::uint64_t end = offset + data.size();
  LWFS_RETURN_IF_ERROR(EnsureBlocksLocked(obj, std::max(end, obj.size)));
  // The store-medium copy: the write path's one budgeted copy.
  LWFS_COUNT_COPY(util::CopyKind::kStore, data.size());
  // Copy block by block through the logical->physical map.
  std::uint64_t pos = offset;
  std::size_t copied = 0;
  while (copied < data.size()) {
    const std::uint64_t lbn = pos / block_size_;
    const std::uint64_t in_block = pos % block_size_;
    const std::uint64_t chunk =
        std::min<std::uint64_t>(block_size_ - in_block, data.size() - copied);
    auto phys = PhysicalOffsetLocked(obj, lbn);
    if (!phys) return Internal("missing block after allocation");
    std::memcpy(device_.data() + *phys + in_block, data.data() + copied,
                chunk);
    pos += chunk;
    copied += chunk;
  }
  obj.size = std::max(obj.size, end);
  ++obj.version;
  return OkStatus();
}

Result<Buffer> BlockObjectStore::Read(ObjectId oid, std::uint64_t offset,
                                      std::uint64_t length) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objects_.find(oid);
  if (it == objects_.end()) return NotFound("no such object");
  const Object& obj = it->second;
  if (offset >= obj.size) return Buffer{};
  const std::uint64_t n = std::min(length, obj.size - offset);
  // Medium -> host buffer: the read path's one budgeted copy.
  LWFS_COUNT_COPY(util::CopyKind::kStore, n);
  Buffer out(n, 0);
  std::uint64_t pos = offset;
  std::uint64_t copied = 0;
  while (copied < n) {
    const std::uint64_t lbn = pos / block_size_;
    const std::uint64_t in_block = pos % block_size_;
    const std::uint64_t chunk =
        std::min<std::uint64_t>(block_size_ - in_block, n - copied);
    auto phys = PhysicalOffsetLocked(obj, lbn);
    if (phys) {
      std::memcpy(out.data() + copied, device_.data() + *phys + in_block,
                  chunk);
    }  // else: hole, stays zero
    pos += chunk;
    copied += chunk;
  }
  return out;
}

Status BlockObjectStore::Truncate(ObjectId oid, std::uint64_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objects_.find(oid);
  if (it == objects_.end()) return NotFound("no such object");
  Object& obj = it->second;
  if (size > obj.size) {
    LWFS_RETURN_IF_ERROR(EnsureBlocksLocked(obj, size));
  } else {
    // Release whole blocks past the new end.
    const std::uint64_t keep_blocks = (size + block_size_ - 1) / block_size_;
    std::uint64_t have = 0;
    std::vector<Extent> kept;
    for (const Extent& e : obj.extents) {
      if (have >= keep_blocks) {
        LWFS_RETURN_IF_ERROR(allocator_.Free(e));
      } else if (have + e.length <= keep_blocks) {
        kept.push_back(e);
      } else {
        const std::uint64_t keep_here = keep_blocks - have;
        kept.push_back(Extent{e.start, keep_here});
        LWFS_RETURN_IF_ERROR(
            allocator_.Free(Extent{e.start + keep_here, e.length - keep_here}));
      }
      have += e.length;
    }
    obj.extents = std::move(kept);
    // Zero the tail of the final partial block so a later grow reads zeros.
    if (size % block_size_ != 0) {
      auto phys = PhysicalOffsetLocked(obj, size / block_size_);
      if (phys) {
        std::memset(device_.data() + *phys + size % block_size_, 0,
                    block_size_ - size % block_size_);
      }
    }
  }
  obj.size = size;
  ++obj.version;
  return OkStatus();
}

Result<ObjAttr> BlockObjectStore::GetAttr(ObjectId oid) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objects_.find(oid);
  if (it == objects_.end()) return NotFound("no such object");
  return ObjAttr{it->second.cid, it->second.size, it->second.version};
}

Status BlockObjectStore::SetVersion(ObjectId oid, std::uint64_t version) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objects_.find(oid);
  if (it == objects_.end()) return NotFound("no such object");
  it->second.version = std::max(it->second.version, version);
  return OkStatus();
}

Result<std::vector<ObjectId>> BlockObjectStore::List(ContainerId cid) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ObjectId> out;
  for (const auto& [oid, obj] : objects_) {
    if (obj.cid == cid) out.push_back(oid);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<ObjectId>> BlockObjectStore::ListAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ObjectId> out;
  out.reserve(objects_.size());
  for (const auto& [oid, obj] : objects_) out.push_back(oid);
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t BlockObjectStore::ObjectCount() {
  std::lock_guard<std::mutex> lock(mutex_);
  return objects_.size();
}

std::uint64_t BlockObjectStore::FreeBlocks() {
  std::lock_guard<std::mutex> lock(mutex_);
  return allocator_.free_blocks();
}

bool BlockObjectStore::CheckInvariants() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!allocator_.CheckInvariants()) return false;
  // No physical block may belong to two objects.
  std::vector<Extent> all;
  for (const auto& [oid, obj] : objects_) {
    all.insert(all.end(), obj.extents.begin(), obj.extents.end());
  }
  std::sort(all.begin(), all.end());
  std::uint64_t used = 0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    used += all[i].length;
    if (i > 0 && all[i - 1].start + all[i - 1].length > all[i].start) {
      return false;
    }
  }
  return used == allocator_.allocated_blocks();
}

}  // namespace lwfs::storage
