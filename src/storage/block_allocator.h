// Extent-based block allocator.
//
// Object-based storage moves block-layout decisions onto the device (§3.3,
// Figure 7); BlockObjectStore uses this allocator to map object data onto a
// flat block device.  First-fit over a coalescing free-extent map keeps
// sequential writes mostly contiguous, which the device model rewards.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "util/status.h"

namespace lwfs::storage {

/// A contiguous run of blocks [start, start + length).
struct Extent {
  std::uint64_t start = 0;
  std::uint64_t length = 0;
  auto operator<=>(const Extent&) const = default;
};

class BlockAllocator {
 public:
  explicit BlockAllocator(std::uint64_t total_blocks);

  /// Allocate exactly `blocks` blocks, possibly split across several
  /// extents when the free space is fragmented.  On failure nothing is
  /// allocated.
  Result<std::vector<Extent>> Allocate(std::uint64_t blocks);

  /// Allocate one contiguous extent of exactly `blocks`; fails if no single
  /// free run is large enough.
  Result<Extent> AllocateContiguous(std::uint64_t blocks);

  /// Return an extent to the free pool (coalesces with neighbours).
  /// Freeing blocks that are not currently allocated is an error.
  Status Free(const Extent& extent);

  [[nodiscard]] std::uint64_t total_blocks() const { return total_blocks_; }
  [[nodiscard]] std::uint64_t free_blocks() const { return free_blocks_; }
  [[nodiscard]] std::uint64_t allocated_blocks() const {
    return total_blocks_ - free_blocks_;
  }
  /// Number of free extents (fragmentation indicator).
  [[nodiscard]] std::size_t free_extent_count() const { return free_.size(); }

  /// Internal-consistency check used by property tests: free extents are
  /// sorted, non-overlapping, non-adjacent (fully coalesced), in range, and
  /// sum to free_blocks().
  [[nodiscard]] bool CheckInvariants() const;

 private:
  std::uint64_t total_blocks_;
  std::uint64_t free_blocks_;
  // start -> length of each free extent.
  std::map<std::uint64_t, std::uint64_t> free_;
};

}  // namespace lwfs::storage
