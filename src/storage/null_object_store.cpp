#include <algorithm>

#include "storage/object_store.h"

namespace lwfs::storage {

Result<ObjectId> NullObjectStore::Create(ContainerId cid) {
  if (cid == kInvalidContainer) return InvalidArgument("invalid container");
  std::lock_guard<std::mutex> lock(mutex_);
  ObjectId oid{next_id_++};
  objects_.emplace(oid, ObjAttr{cid, 0, 0});
  return oid;
}

Status NullObjectStore::CreateWithId(ContainerId cid, ObjectId oid) {
  if (cid == kInvalidContainer) return InvalidArgument("invalid container");
  if (oid == kInvalidObject) return InvalidArgument("invalid object id");
  std::lock_guard<std::mutex> lock(mutex_);
  if (objects_.contains(oid)) return AlreadyExists("object exists");
  // Replicated (bit-62) ids must not drag the local counter into their
  // id space — see MemObjectStore::CreateWithId.
  if (!IsReplicatedOid(oid)) next_id_ = std::max(next_id_, oid.value + 1);
  objects_.emplace(oid, ObjAttr{cid, 0, 0});
  return OkStatus();
}

Status NullObjectStore::Remove(ObjectId oid) {
  std::lock_guard<std::mutex> lock(mutex_);
  return objects_.erase(oid) != 0 ? OkStatus() : NotFound("no such object");
}

Status NullObjectStore::Write(ObjectId oid, std::uint64_t offset,
                              ByteSpan data) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objects_.find(oid);
  if (it == objects_.end()) return NotFound("no such object");
  it->second.size = std::max(it->second.size, offset + data.size());
  ++it->second.version;
  return OkStatus();  // bytes discarded
}

Result<Buffer> NullObjectStore::Read(ObjectId oid, std::uint64_t offset,
                                     std::uint64_t length) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objects_.find(oid);
  if (it == objects_.end()) return NotFound("no such object");
  if (offset >= it->second.size) return Buffer{};
  const std::uint64_t n =
      std::min<std::uint64_t>(length, it->second.size - offset);
  return Buffer(static_cast<std::size_t>(n), 0);  // all-zero payload
}

Status NullObjectStore::Truncate(ObjectId oid, std::uint64_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objects_.find(oid);
  if (it == objects_.end()) return NotFound("no such object");
  it->second.size = size;
  ++it->second.version;
  return OkStatus();
}

Result<ObjAttr> NullObjectStore::GetAttr(ObjectId oid) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objects_.find(oid);
  if (it == objects_.end()) return NotFound("no such object");
  return it->second;
}

Status NullObjectStore::SetVersion(ObjectId oid, std::uint64_t version) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objects_.find(oid);
  if (it == objects_.end()) return NotFound("no such object");
  it->second.version = std::max(it->second.version, version);
  return OkStatus();
}

Result<std::vector<ObjectId>> NullObjectStore::List(ContainerId cid) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ObjectId> out;
  for (const auto& [oid, attr] : objects_) {
    if (attr.cid == cid) out.push_back(oid);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<ObjectId>> NullObjectStore::ListAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ObjectId> out;
  out.reserve(objects_.size());
  for (const auto& [oid, attr] : objects_) out.push_back(oid);
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t NullObjectStore::ObjectCount() {
  std::lock_guard<std::mutex> lock(mutex_);
  return objects_.size();
}

}  // namespace lwfs::storage
