#include "security/authz.h"

#include <atomic>

namespace lwfs::security {

namespace {
std::uint64_t NextInstanceId() {
  static std::atomic<std::uint64_t> counter{1000};
  return counter.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

AuthzService::AuthzService(AuthnService* authn, SipKey key,
                           AuthzOptions options)
    : authn_(authn),
      key_(key),
      options_(std::move(options)),
      instance_(NextInstanceId()) {}

void AuthzService::SetRevocationSink(RevocationSink* sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_ = sink;
}

Result<Uid> AuthzService::CheckCredLocked(const Credential& cred) {
  auto it = verified_creds_.find(cred.cred_id);
  if (it != verified_creds_.end()) {
    // Cached verification: expiry still needs a local check.
    if (cred.expires_us <= options_.now()) {
      verified_creds_.erase(it);
      return Unauthenticated("credential expired");
    }
    if (it->second != cred.uid) return Unauthenticated("credential mismatch");
    return it->second;
  }
  // First sighting: one round trip to the authentication service (§3.1.2,
  // Figure 4-a step 2).
  ++authn_roundtrips_;
  auto uid = authn_->Verify(cred);
  if (!uid.ok()) return uid.status();
  verified_creds_[cred.cred_id] = *uid;
  return *uid;
}

Result<storage::ContainerId> AuthzService::CreateContainer(
    const Credential& cred) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto uid = CheckCredLocked(cred);
  if (!uid.ok()) return uid.status();
  storage::ContainerId cid{next_container_id_++};
  ContainerPolicy policy;
  policy.owner = *uid;
  policy.grants[*uid] = kOpAll;
  containers_.emplace(cid, std::move(policy));
  return cid;
}

Status AuthzService::SetGrant(const Credential& cred, storage::ContainerId cid,
                              Uid grantee, std::uint32_t ops) {
  std::vector<std::pair<ServerId, std::vector<std::uint64_t>>> notifications;
  RevocationSink* sink = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto uid = CheckCredLocked(cred);
    if (!uid.ok()) return uid.status();
    auto it = containers_.find(cid);
    if (it == containers_.end()) return NotFound("no such container");
    ContainerPolicy& policy = it->second;
    auto caller_grant = policy.grants.find(*uid);
    if (caller_grant == policy.grants.end() ||
        (caller_grant->second & kOpManage) == 0) {
      return PermissionDenied("caller lacks manage rights on container");
    }
    if (ops == kOpNone) {
      policy.grants.erase(grantee);
    } else {
      policy.grants[grantee] = ops;
    }

    // Revoke outstanding capabilities of `grantee` on this container whose
    // ops are no longer fully covered by the new grant.  This is partial:
    // a read cap survives a write-only revocation.
    std::vector<std::uint64_t> victims;
    for (const auto& [cap_id, issued] : issued_) {
      if (issued.cid == cid && issued.uid == grantee &&
          (issued.ops & ~ops) != 0) {
        victims.push_back(cap_id);
      }
    }
    RevokeLocked(std::move(victims), &notifications);
    sink = sink_;
  }
  // Notify caching servers outside the lock (RPC-bound in production).
  if (sink != nullptr) {
    for (auto& [server, ids] : notifications) sink->InvalidateCaps(server, ids);
  }
  return OkStatus();
}

Result<ContainerPolicy> AuthzService::GetPolicy(const Credential& cred,
                                                storage::ContainerId cid) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto uid = CheckCredLocked(cred);
  if (!uid.ok()) return uid.status();
  auto it = containers_.find(cid);
  if (it == containers_.end()) return NotFound("no such container");
  const auto grant = it->second.grants.find(*uid);
  if (grant == it->second.grants.end()) {
    return PermissionDenied("no grant on container");
  }
  return it->second;
}

Result<Capability> AuthzService::GetCap(const Credential& cred,
                                        storage::ContainerId cid,
                                        std::uint32_t ops) {
  if (ops == kOpNone || (ops & ~kOpAll) != 0) {
    return InvalidArgument("bad op mask");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto uid = CheckCredLocked(cred);
  if (!uid.ok()) return uid.status();
  auto it = containers_.find(cid);
  if (it == containers_.end()) return NotFound("no such container");
  auto grant = it->second.grants.find(*uid);
  if (grant == it->second.grants.end() || (ops & ~grant->second) != 0) {
    return PermissionDenied("requested ops exceed grant");
  }

  Capability cap;
  cap.cap_id = next_cap_id_++;
  cap.cid = cid;
  cap.ops = ops;
  cap.uid = *uid;
  cap.instance = instance_;
  cap.expires_us = options_.now() + options_.capability_ttl_us;
  cap.tag = SipTag(key_, ByteSpan(cap.SignedBytes()));
  issued_.emplace(cap.cap_id, IssuedCap{cid, ops, *uid, {}});
  ++caps_issued_;
  return cap;
}

Result<Capability> AuthzService::RefreshCap(const Credential& cred,
                                            const Capability& cap) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Integrity first: a forged capability cannot be refreshed.
    if (cap.instance != instance_) {
      return PermissionDenied("capability from another instance");
    }
    if (cap.tag != SipTag(key_, ByteSpan(cap.SignedBytes()))) {
      return PermissionDenied("capability signature mismatch");
    }
    if (revoked_caps_.contains(cap.cap_id)) {
      return PermissionDenied("capability revoked");
    }
  }
  // Re-issuance runs the full policy check, so a refresh after a policy
  // change yields exactly what the new policy allows (or a denial).
  return GetCap(cred, cap.cid, cap.ops);
}

Status AuthzService::VerifyForServer(ServerId server, const Capability& cap) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++verify_count_;
  if (cap.instance != instance_) {
    return PermissionDenied("capability from another instance");
  }
  if (cap.tag != SipTag(key_, ByteSpan(cap.SignedBytes()))) {
    return PermissionDenied("capability signature mismatch");
  }
  if (cap.expires_us <= options_.now()) {
    return PermissionDenied("capability expired");
  }
  if (revoked_caps_.contains(cap.cap_id)) {
    return PermissionDenied("capability revoked");
  }
  auto it = issued_.find(cap.cap_id);
  if (it == issued_.end()) return PermissionDenied("unknown capability");
  // Record the back pointer: `server` is about to cache this verdict.
  it->second.cached_on.insert(server);
  return OkStatus();
}

Status AuthzService::RevokeCap(const Credential& cred, std::uint64_t cap_id) {
  std::vector<std::pair<ServerId, std::vector<std::uint64_t>>> notifications;
  RevocationSink* sink = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto uid = CheckCredLocked(cred);
    if (!uid.ok()) return uid.status();
    auto it = issued_.find(cap_id);
    if (it == issued_.end()) return NotFound("no such capability");
    auto container = containers_.find(it->second.cid);
    const bool is_owner = container != containers_.end() &&
                          container->second.owner == *uid;
    if (it->second.uid != *uid && !is_owner) {
      return PermissionDenied("not the capability holder or container owner");
    }
    RevokeLocked({cap_id}, &notifications);
    sink = sink_;
  }
  if (sink != nullptr) {
    for (auto& [server, ids] : notifications) sink->InvalidateCaps(server, ids);
  }
  return OkStatus();
}

void AuthzService::RevokeLocked(
    std::vector<std::uint64_t> cap_ids,
    std::vector<std::pair<ServerId, std::vector<std::uint64_t>>>*
        notifications) {
  std::unordered_map<ServerId, std::vector<std::uint64_t>> by_server;
  for (std::uint64_t cap_id : cap_ids) {
    auto it = issued_.find(cap_id);
    if (it == issued_.end()) continue;
    for (ServerId server : it->second.cached_on) {
      by_server[server].push_back(cap_id);
    }
    issued_.erase(it);
    revoked_caps_.insert(cap_id);
    ++caps_revoked_;
  }
  for (auto& [server, ids] : by_server) {
    notifications->emplace_back(server, std::move(ids));
  }
}

void AuthzService::ForgetCredential(std::uint64_t cred_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  verified_creds_.erase(cred_id);
}

std::uint64_t AuthzService::verify_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return verify_count_;
}
std::uint64_t AuthzService::authn_roundtrips() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return authn_roundtrips_;
}
std::uint64_t AuthzService::caps_issued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return caps_issued_;
}
std::uint64_t AuthzService::caps_revoked() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return caps_revoked_;
}

}  // namespace lwfs::security
