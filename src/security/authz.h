// Authorization service (§3.1).
//
// Manages container access-control policy, mints capabilities, verifies
// them for storage servers, and drives revocation.  Key properties from the
// paper:
//
//  * capabilities can only be verified here — storage servers never hold
//    the signing key (contrast with NASD/T10 shared-secret schemes);
//  * verify results may be cached by storage servers; this service records
//    *back pointers* (cap_id -> caching servers) so a policy change can
//    invalidate exactly the affected cache entries (§3.1.4);
//  * revocation is partial: removing write access invalidates write
//    capabilities on the container while read capabilities stay live.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "security/authn.h"
#include "security/types.h"
#include "storage/ids.h"
#include "util/status.h"

namespace lwfs::security {

/// Identifies a capability-caching entity (a storage server) for back
/// pointers and invalidation callbacks.
using ServerId = std::uint32_t;

/// The channel through which the authorization service tells a caching
/// server to drop entries.  The service runtime wires this to an RPC; tests
/// wire it to the cache object directly.
class RevocationSink {
 public:
  virtual ~RevocationSink() = default;
  virtual void InvalidateCaps(ServerId server,
                              const std::vector<std::uint64_t>& cap_ids) = 0;
};

struct AuthzOptions {
  std::int64_t capability_ttl_us = 3600LL * 1000 * 1000;
  NowFn now = SystemNowUs;
};

/// Access policy for one container: an owner plus per-uid operation grants.
struct ContainerPolicy {
  Uid owner = kInvalidUid;
  std::unordered_map<Uid, std::uint32_t> grants;
};

class AuthzService {
 public:
  /// `authn` is consulted to verify credentials (and the result cached, so
  /// one authentication round trip amortizes over many getcap calls).
  AuthzService(AuthnService* authn, SipKey key, AuthzOptions options = {});

  void SetRevocationSink(RevocationSink* sink);

  // ---- Container policy --------------------------------------------------

  /// Create a container owned by the credential's principal, who receives a
  /// full grant.
  Result<storage::ContainerId> CreateContainer(const Credential& cred);

  /// Set (replace) the ops granted to `grantee` on `cid`.  Requires
  /// kOpManage.  Shrinking a grant revokes every outstanding capability
  /// whose ops are no longer covered — the "chmod" path of §3.1.4.
  Status SetGrant(const Credential& cred, storage::ContainerId cid,
                  Uid grantee, std::uint32_t ops);

  Result<ContainerPolicy> GetPolicy(const Credential& cred,
                                    storage::ContainerId cid);

  // ---- Capabilities ------------------------------------------------------

  /// Mint a capability for `ops` on `cid` (ops must be covered by the
  /// caller's grant).
  Result<Capability> GetCap(const Credential& cred, storage::ContainerId cid,
                            std::uint32_t ops);

  /// Re-issue an expired (but not revoked) capability if policy still
  /// allows — the refresh behaviour the paper faults NASD for lacking (§5).
  Result<Capability> RefreshCap(const Credential& cred, const Capability& cap);

  /// Verification entry point for storage servers.  On success the service
  /// records a back pointer (server caches the cap).
  Status VerifyForServer(ServerId server, const Capability& cap);

  /// Revoke a single capability immediately.
  Status RevokeCap(const Credential& cred, std::uint64_t cap_id);

  /// Drop a cached credential verification (wired to
  /// AuthnService::SetRevocationObserver).
  void ForgetCredential(std::uint64_t cred_id);

  // ---- Introspection (tests/benches) -------------------------------------
  [[nodiscard]] std::uint64_t instance() const { return instance_; }
  [[nodiscard]] std::uint64_t verify_count() const;
  [[nodiscard]] std::uint64_t authn_roundtrips() const;
  [[nodiscard]] std::uint64_t caps_issued() const;
  [[nodiscard]] std::uint64_t caps_revoked() const;

 private:
  /// Verify `cred`, using the verified-credential cache (lock held).
  Result<Uid> CheckCredLocked(const Credential& cred);

  struct IssuedCap {
    storage::ContainerId cid;
    std::uint32_t ops;
    Uid uid;
    std::unordered_set<ServerId> cached_on;  // back pointers (§3.1.4)
  };

  /// Invalidate `cap_ids` everywhere they are cached.  Must be called with
  /// the lock held; the sink is invoked after releasing it.
  void RevokeLocked(std::vector<std::uint64_t> cap_ids,
                    std::vector<std::pair<ServerId, std::vector<std::uint64_t>>>*
                        notifications);

  AuthnService* const authn_;
  const SipKey key_;
  const AuthzOptions options_;
  const std::uint64_t instance_;

  mutable std::mutex mutex_;
  RevocationSink* sink_ = nullptr;
  std::uint64_t next_container_id_ = 1;
  std::uint64_t next_cap_id_ = 1;
  std::uint64_t verify_count_ = 0;
  std::uint64_t authn_roundtrips_ = 0;
  std::uint64_t caps_issued_ = 0;
  std::uint64_t caps_revoked_ = 0;
  std::unordered_map<storage::ContainerId, ContainerPolicy> containers_;
  std::unordered_map<std::uint64_t, IssuedCap> issued_;  // live caps
  std::unordered_set<std::uint64_t> revoked_caps_;
  std::unordered_map<std::uint64_t, Uid> verified_creds_;  // cred_id -> uid
};

}  // namespace lwfs::security
