// Storage-server-side capability cache (§3.1.2).
//
// After the authorization service has verified a capability once, the
// storage server caches the verdict so subsequent requests bearing the same
// capability cost zero extra messages.  Entries are keyed by cap_id but a
// hit requires the *entire* capability (including its tag) to match the
// cached copy — a forged capability reusing a cached id never hits.
// Invalidation arrives from the authorization service through the back
// pointers it keeps (§3.1.4).
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>

#include "security/types.h"

namespace lwfs::security {

class CapCache {
 public:
  /// True iff `cap` is byte-identical to a cached, verified capability and
  /// is not expired at `now_us`.
  bool Lookup(const Capability& cap, std::int64_t now_us);

  /// Record a capability that the authorization service just verified.
  void Insert(const Capability& cap);

  /// Drop entries by cap id (the revocation path).
  void Invalidate(std::span<const std::uint64_t> cap_ids);

  /// Drop everything (server restart / authz instance change).
  void Clear();

  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Capability> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace lwfs::security
