#include "security/types.h"

namespace lwfs::security {

std::string OpMaskToString(std::uint32_t ops) {
  std::string s;
  s += (ops & kOpRead) ? 'R' : '-';
  s += (ops & kOpWrite) ? 'W' : '-';
  s += (ops & kOpCreate) ? 'C' : '-';
  s += (ops & kOpRemove) ? 'D' : '-';
  s += (ops & kOpManage) ? 'M' : '-';
  return s;
}

void Credential::Encode(Encoder& enc) const {
  enc.PutU64(cred_id);
  enc.PutU64(uid);
  enc.PutU64(instance);
  enc.PutI64(expires_us);
  enc.PutU64(tag.lo);
  enc.PutU64(tag.hi);
}

Result<Credential> Credential::Decode(Decoder& dec) {
  Credential c;
  auto cred_id = dec.GetU64();
  auto uid = dec.GetU64();
  auto instance = dec.GetU64();
  auto expires = dec.GetI64();
  auto lo = dec.GetU64();
  auto hi = dec.GetU64();
  if (!cred_id.ok() || !uid.ok() || !instance.ok() || !expires.ok() ||
      !lo.ok() || !hi.ok()) {
    return InvalidArgument("malformed credential");
  }
  c.cred_id = *cred_id;
  c.uid = *uid;
  c.instance = *instance;
  c.expires_us = *expires;
  c.tag = Tag128{*lo, *hi};
  return c;
}

Buffer Credential::SignedBytes() const {
  Encoder enc;
  enc.PutU64(cred_id);
  enc.PutU64(uid);
  enc.PutU64(instance);
  enc.PutI64(expires_us);
  return std::move(enc).Take();
}

void Capability::Encode(Encoder& enc) const {
  enc.PutU64(cap_id);
  enc.PutU64(cid.value);
  enc.PutU32(ops);
  enc.PutU64(uid);
  enc.PutU64(instance);
  enc.PutI64(expires_us);
  enc.PutU64(tag.lo);
  enc.PutU64(tag.hi);
}

Result<Capability> Capability::Decode(Decoder& dec) {
  Capability c;
  auto cap_id = dec.GetU64();
  auto cid = dec.GetU64();
  auto ops = dec.GetU32();
  auto uid = dec.GetU64();
  auto instance = dec.GetU64();
  auto expires = dec.GetI64();
  auto lo = dec.GetU64();
  auto hi = dec.GetU64();
  if (!cap_id.ok() || !cid.ok() || !ops.ok() || !uid.ok() || !instance.ok() ||
      !expires.ok() || !lo.ok() || !hi.ok()) {
    return InvalidArgument("malformed capability");
  }
  c.cap_id = *cap_id;
  c.cid = storage::ContainerId{*cid};
  c.ops = *ops;
  c.uid = *uid;
  c.instance = *instance;
  c.expires_us = *expires;
  c.tag = Tag128{*lo, *hi};
  return c;
}

Buffer Capability::SignedBytes() const {
  Encoder enc;
  enc.PutU64(cap_id);
  enc.PutU64(cid.value);
  enc.PutU32(ops);
  enc.PutU64(uid);
  enc.PutU64(instance);
  enc.PutI64(expires_us);
  return std::move(enc).Take();
}

}  // namespace lwfs::security
