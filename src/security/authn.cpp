#include "security/authn.h"

#include <atomic>

#include "util/clock.h"

namespace lwfs::security {

std::int64_t SystemNowUs() {
  // Monotonic microseconds on an explicit Unix epoch (RealClock anchors
  // steady readings to wall time at process start), so credential
  // issue/expiry stamps are meaningful across restarts — unlike the raw
  // steady_clock epoch this used to read, which is unspecified per boot.
  return util::RealClockInstance()->NowUs();
}

void TableAuthenticator::AddPrincipal(const std::string& name,
                                      const std::string& secret, Uid uid) {
  std::lock_guard<std::mutex> lock(mutex_);
  table_[name] = Entry{secret, uid};
}

Result<Uid> TableAuthenticator::Authenticate(const std::string& principal,
                                             const std::string& secret) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = table_.find(principal);
  if (it == table_.end() || it->second.secret != secret) {
    return Unauthenticated("unknown principal or bad secret");
  }
  return it->second.uid;
}

namespace {
std::uint64_t NextInstanceId() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

AuthnService::AuthnService(ExternalAuthenticator* external, SipKey key,
                           AuthnOptions options)
    : external_(external),
      key_(key),
      options_(std::move(options)),
      instance_(NextInstanceId()) {}

Result<Credential> AuthnService::Login(const std::string& principal,
                                       const std::string& secret) {
  auto uid = external_->Authenticate(principal, secret);
  if (!uid.ok()) return uid.status();

  Credential cred;
  cred.uid = *uid;
  cred.instance = instance_;
  cred.expires_us = options_.now() + options_.credential_ttl_us;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cred.cred_id = next_cred_id_++;
    live_[cred.cred_id] = cred.uid;
  }
  cred.tag = SipTag(key_, ByteSpan(cred.SignedBytes()));
  return cred;
}

Result<Uid> AuthnService::Verify(const Credential& cred) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++verify_count_;
  }
  if (cred.instance != instance_) {
    return Unauthenticated("credential from a different service instance");
  }
  if (cred.tag != SipTag(key_, ByteSpan(cred.SignedBytes()))) {
    return Unauthenticated("credential signature mismatch");
  }
  if (cred.expires_us <= options_.now()) {
    return Unauthenticated("credential expired");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (revoked_.contains(cred.cred_id)) {
    return Unauthenticated("credential revoked");
  }
  if (!live_.contains(cred.cred_id)) {
    return Unauthenticated("unknown credential");
  }
  return cred.uid;
}

Status AuthnService::Revoke(std::uint64_t cred_id) {
  std::function<void(std::uint64_t)> observer;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = live_.find(cred_id);
    if (it == live_.end()) return NotFound("no such credential");
    live_.erase(it);
    revoked_.insert(cred_id);
    observer = revocation_observer_;
  }
  if (observer) observer(cred_id);
  return OkStatus();
}

void AuthnService::RevokeAllForUid(Uid uid) {
  std::vector<std::uint64_t> victims;
  std::function<void(std::uint64_t)> observer;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = live_.begin(); it != live_.end();) {
      if (it->second == uid) {
        victims.push_back(it->first);
        revoked_.insert(it->first);
        it = live_.erase(it);
      } else {
        ++it;
      }
    }
    observer = revocation_observer_;
  }
  if (observer) {
    for (std::uint64_t id : victims) observer(id);
  }
}

void AuthnService::SetRevocationObserver(
    std::function<void(std::uint64_t)> observer) {
  std::lock_guard<std::mutex> lock(mutex_);
  revocation_observer_ = std::move(observer);
}

std::uint64_t AuthnService::verify_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return verify_count_;
}

}  // namespace lwfs::security
