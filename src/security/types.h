// Credentials and capabilities (§3.1.2).
//
// A credential is proof of authentication: it names a principal, is issued
// by the authentication service, is fully transferable (any process holding
// the bytes may use it), and can only be *verified* by its issuer.
//
// A capability is proof of authorization: it entitles its holder to perform
// one class of operation on one container of objects.  Capabilities are
// opaque, fully transferable, bounded by issuer instance and expiry, and —
// unlike NASD/T10 capabilities — verifiable only by the authorization
// service that minted them (storage servers *cache* verify results instead
// of holding the signing key).
#pragma once

#include <cstdint>
#include <string>

#include "security/siphash.h"
#include "storage/ids.h"
#include "util/bytes.h"
#include "util/status.h"

namespace lwfs::security {

/// Principal (user) identity as established by the external authenticator.
using Uid = std::uint64_t;
inline constexpr Uid kInvalidUid = 0;

/// Operation classes subject to access control on a container.
enum OpMask : std::uint32_t {
  kOpNone = 0,
  kOpRead = 1u << 0,    // read object data / attributes
  kOpWrite = 1u << 1,   // write object data
  kOpCreate = 1u << 2,  // create objects in the container
  kOpRemove = 1u << 3,  // remove objects from the container
  kOpManage = 1u << 4,  // change the container's access policy
  kOpAll = kOpRead | kOpWrite | kOpCreate | kOpRemove | kOpManage,
};

/// Printable form like "RW-C-" for diagnostics.
std::string OpMaskToString(std::uint32_t ops);

/// Proof of authentication.  The tag binds every visible field under the
/// authentication service's private key.
struct Credential {
  std::uint64_t cred_id = 0;   // unique per issuance
  Uid uid = kInvalidUid;       // authenticated principal
  std::uint64_t instance = 0;  // issuing service instance (epoch)
  std::int64_t expires_us = 0; // absolute expiry, microseconds
  Tag128 tag;

  void Encode(Encoder& enc) const;
  static Result<Credential> Decode(Decoder& dec);
  /// The bytes covered by the tag (everything except the tag itself).
  [[nodiscard]] Buffer SignedBytes() const;
};

/// Proof of authorization for `ops` on container `cid`.
struct Capability {
  std::uint64_t cap_id = 0;
  storage::ContainerId cid;
  std::uint32_t ops = kOpNone;
  Uid uid = kInvalidUid;       // principal it was issued to (informational)
  std::uint64_t instance = 0;  // issuing authorization-service instance
  std::int64_t expires_us = 0;
  Tag128 tag;

  void Encode(Encoder& enc) const;
  static Result<Capability> Decode(Decoder& dec);
  [[nodiscard]] Buffer SignedBytes() const;
};

}  // namespace lwfs::security
