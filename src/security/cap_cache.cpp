#include "security/cap_cache.h"

namespace lwfs::security {

bool CapCache::Lookup(const Capability& cap, std::int64_t now_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(cap.cap_id);
  if (it == entries_.end()) {
    ++misses_;
    return false;
  }
  const Capability& cached = it->second;
  const bool identical = cached.cap_id == cap.cap_id && cached.cid == cap.cid &&
                         cached.ops == cap.ops && cached.uid == cap.uid &&
                         cached.instance == cap.instance &&
                         cached.expires_us == cap.expires_us &&
                         cached.tag == cap.tag;
  if (!identical || cap.expires_us <= now_us) {
    if (cap.expires_us <= now_us && identical) entries_.erase(it);
    ++misses_;
    return false;
  }
  ++hits_;
  return true;
}

void CapCache::Insert(const Capability& cap) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[cap.cap_id] = cap;
}

void CapCache::Invalidate(std::span<const std::uint64_t> cap_ids) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::uint64_t id : cap_ids) entries_.erase(id);
}

void CapCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

std::uint64_t CapCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}
std::uint64_t CapCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}
std::size_t CapCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace lwfs::security
