// SipHash-2-4: a keyed pseudo-random function.
//
// Credentials and capabilities are "a cryptographically secure random
// number ... that can only be verified by the service that generated it"
// (§3.1.2).  We realize that with SipHash under a key that never leaves the
// issuing service — by construction the storage service cannot mint
// capabilities, which is exactly the trust property LWFS claims over the
// NASD/T10 shared-key scheme.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace lwfs::security {

/// 128-bit key held privately by an issuing service.
struct SipKey {
  std::uint64_t k0 = 0;
  std::uint64_t k1 = 0;
  auto operator<=>(const SipKey&) const = default;
};

/// SipHash-2-4 of `data` under `key`.
std::uint64_t SipHash24(const SipKey& key, ByteSpan data);

/// 128-bit tag: two SipHash passes under domain-separated keys.  Tags of
/// this form are what travels inside credentials and capabilities.
struct Tag128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  auto operator<=>(const Tag128&) const = default;
};

Tag128 SipTag(const SipKey& key, ByteSpan data);

}  // namespace lwfs::security
