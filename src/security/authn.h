// Authentication service (§3.1, Figure 3).
//
// Interfaces with an *external* authentication mechanism (the paper names
// Kerberos/GSS-API/SASL; we provide a pluggable interface with a
// deterministic table-backed mock) and issues transferable credentials that
// only this service can verify.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "security/types.h"
#include "util/status.h"

namespace lwfs::security {

/// Time source, injectable so tests control expiry.
using NowFn = std::function<std::int64_t()>;

/// Wall-clock microseconds (the default NowFn).
std::int64_t SystemNowUs();

/// The external mechanism the authentication server fronts (the "Kerberos"
/// box in Figure 3).
class ExternalAuthenticator {
 public:
  virtual ~ExternalAuthenticator() = default;
  /// Map (principal, secret) to a uid, or kUnauthenticated.
  virtual Result<Uid> Authenticate(const std::string& principal,
                                   const std::string& secret) = 0;
};

/// Table-backed mock of the external mechanism.
class TableAuthenticator final : public ExternalAuthenticator {
 public:
  void AddPrincipal(const std::string& name, const std::string& secret,
                    Uid uid);
  Result<Uid> Authenticate(const std::string& principal,
                           const std::string& secret) override;

 private:
  struct Entry {
    std::string secret;
    Uid uid;
  };
  std::mutex mutex_;
  std::unordered_map<std::string, Entry> table_;
};

struct AuthnOptions {
  /// Credential lifetime.
  std::int64_t credential_ttl_us = 3600LL * 1000 * 1000;
  NowFn now = SystemNowUs;
};

/// Issues and verifies credentials.  Thread-safe.
class AuthnService {
 public:
  AuthnService(ExternalAuthenticator* external, SipKey key,
               AuthnOptions options = {});

  /// Authenticate against the external mechanism and mint a credential.
  Result<Credential> Login(const std::string& principal,
                           const std::string& secret);

  /// Verify a credential: signature, instance, expiry, revocation.  Returns
  /// the authenticated uid.
  Result<Uid> Verify(const Credential& cred);

  /// Immediately revoke one credential (application exit, compromise).
  Status Revoke(std::uint64_t cred_id);

  /// Revoke every live credential of a principal.
  void RevokeAllForUid(Uid uid);

  /// Observer invoked with each revoked cred_id (the authorization service
  /// uses this to drop its verified-credential cache entries).
  void SetRevocationObserver(std::function<void(std::uint64_t)> observer);

  [[nodiscard]] std::uint64_t instance() const { return instance_; }
  [[nodiscard]] std::uint64_t verify_count() const;

 private:
  ExternalAuthenticator* const external_;
  const SipKey key_;
  const AuthnOptions options_;
  const std::uint64_t instance_;

  mutable std::mutex mutex_;
  std::uint64_t next_cred_id_ = 1;
  std::uint64_t verify_count_ = 0;
  std::unordered_map<std::uint64_t, Uid> live_;  // cred_id -> uid
  std::unordered_set<std::uint64_t> revoked_;
  std::function<void(std::uint64_t)> revocation_observer_;
};

}  // namespace lwfs::security
