#include "security/siphash.h"

namespace lwfs::security {
namespace {

inline std::uint64_t Rotl(std::uint64_t x, int b) {
  return (x << b) | (x >> (64 - b));
}

inline void SipRound(std::uint64_t& v0, std::uint64_t& v1, std::uint64_t& v2,
                     std::uint64_t& v3) {
  v0 += v1;
  v1 = Rotl(v1, 13);
  v1 ^= v0;
  v0 = Rotl(v0, 32);
  v2 += v3;
  v3 = Rotl(v3, 16);
  v3 ^= v2;
  v0 += v3;
  v3 = Rotl(v3, 21);
  v3 ^= v0;
  v2 += v1;
  v1 = Rotl(v1, 17);
  v1 ^= v2;
  v2 = Rotl(v2, 32);
}

}  // namespace

std::uint64_t SipHash24(const SipKey& key, ByteSpan data) {
  std::uint64_t v0 = key.k0 ^ 0x736F6D6570736575ULL;
  std::uint64_t v1 = key.k1 ^ 0x646F72616E646F6DULL;
  std::uint64_t v2 = key.k0 ^ 0x6C7967656E657261ULL;
  std::uint64_t v3 = key.k1 ^ 0x7465646279746573ULL;

  const std::size_t n = data.size();
  const std::size_t full = n / 8;
  for (std::size_t b = 0; b < full; ++b) {
    std::uint64_t m = 0;
    for (int i = 0; i < 8; ++i) {
      m |= static_cast<std::uint64_t>(data[b * 8 + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    v3 ^= m;
    SipRound(v0, v1, v2, v3);
    SipRound(v0, v1, v2, v3);
    v0 ^= m;
  }

  // Final block: remaining bytes plus the length in the top byte.
  std::uint64_t m = static_cast<std::uint64_t>(n & 0xFF) << 56;
  for (std::size_t i = full * 8; i < n; ++i) {
    m |= static_cast<std::uint64_t>(data[i]) << (8 * (i % 8));
  }
  v3 ^= m;
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  v0 ^= m;

  v2 ^= 0xFF;
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  return v0 ^ v1 ^ v2 ^ v3;
}

Tag128 SipTag(const SipKey& key, ByteSpan data) {
  Tag128 tag;
  tag.lo = SipHash24(key, data);
  SipKey hi_key{key.k0 ^ 0xA5A5A5A5A5A5A5A5ULL, key.k1 ^ 0x5A5A5A5A5A5A5A5AULL};
  tag.hi = SipHash24(hi_key, data);
  return tag;
}

}  // namespace lwfs::security
