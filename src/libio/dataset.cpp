#include "libio/dataset.h"

#include <algorithm>
#include <deque>

namespace lwfs::io {

namespace {
constexpr std::uint32_t kHeaderMagic = 0x4C444154;  // "LDAT"
}  // namespace

Result<std::vector<SlabRun>> MapHyperslab(const DatasetSpec& spec,
                                          std::span<const std::uint64_t> start,
                                          std::span<const std::uint64_t> count) {
  const std::size_t ndims = spec.dims.size();
  if (ndims == 0) return InvalidArgument("dataset has no dimensions");
  if (start.size() != ndims || count.size() != ndims) {
    return InvalidArgument("start/count rank mismatch");
  }
  std::uint64_t slab_elems = 1;
  for (std::size_t d = 0; d < ndims; ++d) {
    if (count[d] == 0) return std::vector<SlabRun>{};
    if (start[d] + count[d] > spec.dims[d]) {
      return OutOfRange("hyperslab exceeds dataset extent");
    }
    slab_elems *= count[d];
  }

  // Row-major strides in elements.
  std::vector<std::uint64_t> stride(ndims, 1);
  for (std::size_t d = ndims - 1; d > 0; --d) {
    stride[d - 1] = stride[d] * spec.dims[d];
  }

  // The innermost contiguous run: merge trailing dimensions that the slab
  // covers completely.
  std::size_t run_dims = 1;  // trailing dims folded into one run
  std::uint64_t run_elems = count[ndims - 1];
  while (run_dims < ndims && count[ndims - run_dims] == spec.dims[ndims - run_dims]) {
    ++run_dims;
    if (run_dims <= ndims) {
      run_elems = 1;
      for (std::size_t d = ndims - run_dims; d < ndims; ++d) run_elems *= count[d];
    }
  }
  const std::size_t outer_dims = ndims - run_dims;

  std::vector<SlabRun> runs;
  runs.reserve(static_cast<std::size_t>(slab_elems / std::max<std::uint64_t>(run_elems, 1)));
  std::vector<std::uint64_t> idx(outer_dims, 0);
  for (;;) {
    std::uint64_t elem_offset = 0;
    for (std::size_t d = 0; d < outer_dims; ++d) {
      elem_offset += (start[d] + idx[d]) * stride[d];
    }
    for (std::size_t d = outer_dims; d < ndims; ++d) {
      elem_offset += start[d] * stride[d];
    }
    runs.push_back(SlabRun{elem_offset * spec.elem_size,
                           run_elems * spec.elem_size});
    // Odometer over the outer dimensions.
    std::size_t d = outer_dims;
    while (d > 0) {
      --d;
      if (++idx[d] < count[d]) break;
      idx[d] = 0;
      if (d == 0) return runs;
    }
    if (outer_dims == 0) return runs;
  }
}

Result<Dataset> Dataset::Create(fs::LwfsFs* fs, const std::string& path,
                                DatasetSpec spec,
                                std::map<std::string, std::string> attributes) {
  if (spec.dims.empty() || spec.elem_size == 0) {
    return InvalidArgument("bad dataset spec");
  }
  Dataset ds(fs, path);
  ds.spec_ = std::move(spec);
  ds.attributes_ = std::move(attributes);

  // Header file.
  Encoder enc;
  enc.PutU32(kHeaderMagic);
  enc.PutU32(ds.spec_.elem_size);
  enc.PutU32(static_cast<std::uint32_t>(ds.spec_.dims.size()));
  for (std::uint64_t d : ds.spec_.dims) enc.PutU64(d);
  enc.PutU32(static_cast<std::uint32_t>(ds.attributes_.size()));
  for (const auto& [key, value] : ds.attributes_) {
    enc.PutString(key);
    enc.PutString(value);
  }
  auto header = fs->Create(HeaderPath(path));
  if (!header.ok()) return header.status();
  LWFS_RETURN_IF_ERROR(fs->Write(*header, 0, ByteSpan(enc.buffer())));
  LWFS_RETURN_IF_ERROR(fs->Flush(*header));

  auto file = fs->Create(path);
  if (!file.ok()) return file.status();
  ds.file_ = std::move(*file);
  return ds;
}

Result<Dataset> Dataset::Open(fs::LwfsFs* fs, const std::string& path) {
  Dataset ds(fs, path);
  auto header = fs->Open(HeaderPath(path));
  if (!header.ok()) return header.status();
  auto size = fs->Size(*header);
  if (!size.ok()) return size.status();
  Buffer raw(static_cast<std::size_t>(*size), 0);
  auto n = fs->Read(*header, 0, MutableByteSpan(raw));
  if (!n.ok()) return n.status();

  Decoder dec(raw);
  auto magic = dec.GetU32();
  if (!magic.ok() || *magic != kHeaderMagic) {
    return DataLoss("bad dataset header for " + path);
  }
  auto elem_size = dec.GetU32();
  auto ndims = dec.GetU32();
  if (!elem_size.ok() || !ndims.ok()) return DataLoss("truncated header");
  ds.spec_.elem_size = *elem_size;
  for (std::uint32_t d = 0; d < *ndims; ++d) {
    auto dim = dec.GetU64();
    if (!dim.ok()) return DataLoss("truncated dims");
    ds.spec_.dims.push_back(*dim);
  }
  auto nattrs = dec.GetU32();
  if (!nattrs.ok()) return DataLoss("truncated attributes");
  for (std::uint32_t a = 0; a < *nattrs; ++a) {
    auto key = dec.GetString();
    auto value = dec.GetString();
    if (!key.ok() || !value.ok()) return DataLoss("truncated attribute");
    ds.attributes_.emplace(std::move(*key), std::move(*value));
  }

  auto file = fs->Open(path);
  if (!file.ok()) return file.status();
  ds.file_ = std::move(*file);
  return ds;
}

Status Dataset::WriteSlab(std::span<const std::uint64_t> start,
                          std::span<const std::uint64_t> count,
                          ByteSpan data) {
  auto runs = MapHyperslab(spec_, start, count);
  if (!runs.ok()) return runs.status();
  std::uint64_t consumed = 0;
  for (const SlabRun& run : *runs) consumed += run.length;
  if (consumed != data.size()) {
    return InvalidArgument("data size does not match hyperslab");
  }
  std::uint64_t pos = 0;
  for (const SlabRun& run : *runs) {
    LWFS_RETURN_IF_ERROR(fs_->Write(
        file_, run.file_offset,
        data.subspan(static_cast<std::size_t>(pos),
                     static_cast<std::size_t>(run.length))));
    pos += run.length;
  }
  return OkStatus();
}

Status Dataset::WriteSlabSlice(std::span<const std::uint64_t> start,
                               std::span<const std::uint64_t> count,
                               const util::SharedSlice& data) {
  auto runs = MapHyperslab(spec_, start, count);
  if (!runs.ok()) return runs.status();
  std::uint64_t consumed = 0;
  for (const SlabRun& run : *runs) consumed += run.length;
  if (consumed != data.size()) {
    return InvalidArgument("data size does not match hyperslab");
  }
  std::uint64_t pos = 0;
  for (const SlabRun& run : *runs) {
    LWFS_RETURN_IF_ERROR(fs_->WriteSlice(
        file_, run.file_offset,
        data.Slice(static_cast<std::size_t>(pos),
                   static_cast<std::size_t>(run.length))));
    pos += run.length;
  }
  return OkStatus();
}

Result<Buffer> Dataset::ReadSlab(std::span<const std::uint64_t> start,
                                 std::span<const std::uint64_t> count) {
  auto runs = MapHyperslab(spec_, start, count);
  if (!runs.ok()) return runs.status();
  std::uint64_t total = 0;
  for (const SlabRun& run : *runs) total += run.length;
  Buffer out(static_cast<std::size_t>(total), 0);

  // Pipeline the per-run reads: a bounded window of async file handles
  // keeps runs on different stripes in flight together instead of paying
  // one full round trip per run.  Retire in issue order; every handle is
  // drained even after an error so `out` is quiescent on return.
  std::deque<fs::FileIo> inflight;
  Status error = OkStatus();
  std::uint64_t pos = 0;
  std::size_t next = 0;
  auto retire = [&] {
    auto n = inflight.front().Await();
    inflight.pop_front();
    if (!n.ok() && error.ok()) error = n.status();
  };
  while (error.ok() && next < runs->size()) {
    if (inflight.size() >= fs_->options().io_window) {
      retire();
      continue;
    }
    const SlabRun& run = (*runs)[next++];
    auto span = MutableByteSpan(out).subspan(
        static_cast<std::size_t>(pos), static_cast<std::size_t>(run.length));
    pos += run.length;
    auto io = fs_->ReadAsync(file_, run.file_offset, span);
    if (!io.ok()) {
      error = io.status();
      break;
    }
    inflight.push_back(std::move(*io));
  }
  while (!inflight.empty()) retire();
  if (!error.ok()) return error;
  return out;
}

Result<util::SharedSlice> Dataset::ReadSlabSlice(
    std::span<const std::uint64_t> start,
    std::span<const std::uint64_t> count) {
  auto runs = MapHyperslab(spec_, start, count);
  if (!runs.ok()) return runs.status();
  std::uint64_t total = 0;
  for (const SlabRun& run : *runs) total += run.length;

  // Contiguous slab: the file system's slice comes straight through, so a
  // full-dataset restore holds exactly one store-owned payload.
  if (runs->size() == 1) {
    const SlabRun& run = runs->front();
    auto got = fs_->ReadSlice(file_, run.file_offset, run.length);
    if (!got.ok()) return got.status();
    if (got->size() == run.length) return got;
    Buffer padded(static_cast<std::size_t>(run.length), std::uint8_t{0});
    std::copy(got->span().begin(), got->span().end(), padded.begin());
    LWFS_COUNT_COPY(util::CopyKind::kDeliver, got->size());
    return util::SharedSlice::FromBuffer(std::move(padded));
  }

  // Fragmented slab: gather per-run slices into one allocation (a single
  // delivery copy per byte); short runs leave zeros.
  Buffer out(static_cast<std::size_t>(total), std::uint8_t{0});
  std::uint64_t pos = 0;
  for (const SlabRun& run : *runs) {
    auto got = fs_->ReadSlice(file_, run.file_offset, run.length);
    if (!got.ok()) return got.status();
    std::copy(got->span().begin(), got->span().end(),
              out.begin() + static_cast<std::ptrdiff_t>(pos));
    LWFS_COUNT_COPY(util::CopyKind::kDeliver, got->size());
    pos += run.length;
  }
  return util::SharedSlice::FromBuffer(std::move(out));
}

}  // namespace lwfs::io
