#include "libio/prefetch.h"

#include <algorithm>
#include <cstring>

namespace lwfs::io {

Status PrefetchReader::Fill(std::uint64_t offset) {
  window_.resize(static_cast<std::size_t>(options_.window_bytes));
  std::uint64_t got = 0;
  if (ahead_.valid() && ahead_offset_ == offset &&
      ahead_buf_.size() == window_.size()) {
    // The read-ahead issued while the caller consumed the previous window
    // is exactly what is needed: adopt it.
    fs::FileIo io = std::move(ahead_);
    auto n = io.Await();
    if (!n.ok()) return n.status();
    window_.swap(ahead_buf_);
    got = *n;
    ++stats_.readaheads;
  } else {
    if (ahead_.valid()) {
      // Stale read-ahead (the caller seeked): drain and discard.
      fs::FileIo io = std::move(ahead_);
      (void)io.Await();
    }
    auto n = fs_->Read(file_, offset, MutableByteSpan(window_));
    if (!n.ok()) return n.status();
    got = *n;
  }
  window_offset_ = offset;
  window_len_ = got;
  ++stats_.fetches;
  stats_.bytes_fetched += got;
  // A full window under sequential access predicts the next one: start
  // fetching it while the caller consumes this one.
  if (sequential_ && window_len_ == window_.size()) StartReadAhead();
  return OkStatus();
}

void PrefetchReader::StartReadAhead() {
  ahead_offset_ = window_offset_ + window_len_;
  ahead_buf_.resize(window_.size());
  auto io = fs_->ReadAsync(file_, ahead_offset_, MutableByteSpan(ahead_buf_));
  if (io.ok()) ahead_ = std::move(*io);  // best effort: failure just means no read-ahead
}

Result<std::uint64_t> PrefetchReader::Read(std::uint64_t offset,
                                           MutableByteSpan out) {
  ++stats_.reads;

  // Sequentiality detection: this read starts at (or just past) the end of
  // the previous one.
  sequential_ = stats_.reads > 1 && offset >= last_end_ &&
                offset - last_end_ <= options_.sequential_slack;

  std::uint64_t served = 0;
  while (served < out.size()) {
    const std::uint64_t pos = offset + served;
    const bool in_window =
        window_len_ > 0 && pos >= window_offset_ &&
        pos < window_offset_ + window_len_;
    if (in_window) {
      const std::uint64_t avail = window_offset_ + window_len_ - pos;
      const std::uint64_t n =
          std::min<std::uint64_t>(avail, out.size() - served);
      std::memcpy(out.data() + served,
                  window_.data() + (pos - window_offset_),
                  static_cast<std::size_t>(n));
      served += n;
      stats_.bytes_served += n;
      continue;
    }
    // Miss.  For sequential (or large) access, fetch a whole read-ahead
    // window; for random small reads, bypass the cache entirely so we
    // never fetch more than asked.
    if (sequential_ || out.size() >= options_.window_bytes / 4) {
      LWFS_RETURN_IF_ERROR(Fill(pos));
      if (window_len_ == 0) break;  // EOF
    } else {
      auto span = out.subspan(static_cast<std::size_t>(served));
      auto n = fs_->Read(file_, pos, span);
      if (!n.ok()) return n.status();
      ++stats_.fetches;
      stats_.bytes_fetched += *n;
      stats_.bytes_served += *n;
      served += *n;
      break;  // direct reads never loop (short read = EOF)
    }
  }

  if (served == out.size() && stats_.reads > 1 && sequential_) ++stats_.hits;
  last_end_ = offset + served;
  return served;
}

}  // namespace lwfs::io
