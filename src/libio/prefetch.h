// Sequential read-ahead (references [20, 29] of the paper's introduction).
//
// "Tailoring prefetching and caching policies to match an application's
// access patterns" is one of the application-specific optimizations the
// paper argues belong above the core.  PrefetchReader detects sequential
// access on one file handle and keeps a read-ahead window cached, so a
// scan of small reads costs one I/O per window instead of one per read.
#pragma once

#include <cstdint>

#include "lwfsfs/lwfsfs.h"
#include "util/status.h"

namespace lwfs::io {

struct PrefetchOptions {
  std::uint64_t window_bytes = 4ull << 20;
  /// Reads are "sequential" when they start within this many bytes past
  /// the previous read's end (allows small seeks/holes).
  std::uint64_t sequential_slack = 4096;
};

struct PrefetchStats {
  std::uint64_t reads = 0;             // caller reads served
  std::uint64_t hits = 0;              // served fully from the window
  std::uint64_t fetches = 0;           // I/O requests whose data was used
  std::uint64_t bytes_fetched = 0;
  std::uint64_t bytes_served = 0;
  std::uint64_t readaheads = 0;        // async read-aheads adopted
};

/// Not thread-safe: one PrefetchReader per reading thread, like a stdio
/// stream.
class PrefetchReader {
 public:
  PrefetchReader(fs::LwfsFs* fs, fs::FileHandle file,
                 PrefetchOptions options = {})
      : fs_(fs), file_(std::move(file)), options_(options) {}

  /// Same contract as LwfsFs::Read.
  Result<std::uint64_t> Read(std::uint64_t offset, MutableByteSpan out);

  [[nodiscard]] const PrefetchStats& stats() const { return stats_; }
  [[nodiscard]] fs::FileHandle& file() { return file_; }

 private:
  /// Fill the window starting at `offset` — adopting the pending async
  /// read-ahead when it matches, fetching synchronously otherwise.
  Status Fill(std::uint64_t offset);
  /// Start fetching the window after the current one in the background.
  void StartReadAhead();

  fs::LwfsFs* fs_;
  fs::FileHandle file_;
  PrefetchOptions options_;
  PrefetchStats stats_;

  Buffer window_;
  std::uint64_t window_offset_ = 0;
  std::uint64_t window_len_ = 0;   // valid bytes in window_
  std::uint64_t last_end_ = 0;     // end of the previous caller read
  bool sequential_ = false;

  // Pending read-ahead.  `ahead_` is declared after the buffer it reads
  // into so its destructor (which drains the I/O) runs first.
  Buffer ahead_buf_;
  std::uint64_t ahead_offset_ = 0;
  fs::FileIo ahead_;
};

}  // namespace lwfs::io
