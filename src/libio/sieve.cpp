#include "libio/sieve.h"

#include <algorithm>
#include <cstring>

namespace lwfs::io {

namespace {

Status ValidateFragments(std::span<const Fragment> fragments,
                         MutableByteSpan out) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < fragments.size(); ++i) {
    if (fragments[i].second == 0) return InvalidArgument("empty fragment");
    if (i > 0 && fragments[i - 1].first + fragments[i - 1].second >
                     fragments[i].first) {
      return InvalidArgument("fragments must be sorted and disjoint");
    }
    total += fragments[i].second;
  }
  if (total != out.size()) {
    return InvalidArgument("output buffer does not match fragment total");
  }
  return OkStatus();
}

}  // namespace

Result<SieveStats> SievedRead(fs::LwfsFs& fs, fs::FileHandle& file,
                              std::span<const Fragment> fragments,
                              MutableByteSpan out,
                              const SieveOptions& options) {
  LWFS_RETURN_IF_ERROR(ValidateFragments(fragments, out));
  SieveStats stats;
  Buffer window;

  std::size_t i = 0;
  std::uint64_t out_pos = 0;
  while (i < fragments.size()) {
    // Grow a candidate window while it stays under the cap and dense
    // enough.
    std::size_t j = i + 1;
    std::uint64_t needed = fragments[i].second;
    std::uint64_t span_end = fragments[i].first + fragments[i].second;
    while (j < fragments.size()) {
      const std::uint64_t new_end = fragments[j].first + fragments[j].second;
      const std::uint64_t new_span = new_end - fragments[i].first;
      const std::uint64_t new_needed = needed + fragments[j].second;
      if (new_span > options.max_window_bytes) break;
      if (static_cast<double>(new_needed) / static_cast<double>(new_span) <
          options.density_threshold) {
        break;
      }
      needed = new_needed;
      span_end = new_end;
      ++j;
    }

    const std::uint64_t span = span_end - fragments[i].first;
    stats.bytes_needed += needed;
    if (j - i > 1) {
      // Sieve: one spanning read, then extract.
      window.resize(static_cast<std::size_t>(span));
      auto n = fs.Read(file, fragments[i].first, MutableByteSpan(window));
      if (!n.ok()) return n.status();
      ++stats.requests;
      stats.bytes_transferred += span;
      for (std::size_t k = i; k < j; ++k) {
        const std::uint64_t rel = fragments[k].first - fragments[i].first;
        std::memcpy(out.data() + out_pos, window.data() + rel,
                    static_cast<std::size_t>(fragments[k].second));
        out_pos += fragments[k].second;
      }
    } else {
      // Lone/sparse fragment: read it directly.
      auto span_out = out.subspan(static_cast<std::size_t>(out_pos),
                                  static_cast<std::size_t>(fragments[i].second));
      auto n = fs.Read(file, fragments[i].first, span_out);
      if (!n.ok()) return n.status();
      ++stats.requests;
      stats.bytes_transferred += fragments[i].second;
      out_pos += fragments[i].second;
    }
    i = j;
  }
  return stats;
}

Result<SieveStats> DirectRead(fs::LwfsFs& fs, fs::FileHandle& file,
                              std::span<const Fragment> fragments,
                              MutableByteSpan out) {
  LWFS_RETURN_IF_ERROR(ValidateFragments(fragments, out));
  SieveStats stats;
  std::uint64_t out_pos = 0;
  for (const Fragment& frag : fragments) {
    auto span = out.subspan(static_cast<std::size_t>(out_pos),
                            static_cast<std::size_t>(frag.second));
    auto n = fs.Read(file, frag.first, span);
    if (!n.ok()) return n.status();
    ++stats.requests;
    stats.bytes_transferred += frag.second;
    stats.bytes_needed += frag.second;
    out_pos += frag.second;
  }
  return stats;
}

}  // namespace lwfs::io
