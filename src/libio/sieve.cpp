#include "libio/sieve.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <vector>

namespace lwfs::io {

namespace {

Status ValidateFragments(std::span<const Fragment> fragments,
                         MutableByteSpan out) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < fragments.size(); ++i) {
    if (fragments[i].second == 0) return InvalidArgument("empty fragment");
    if (i > 0 && fragments[i - 1].first + fragments[i - 1].second >
                     fragments[i].first) {
      return InvalidArgument("fragments must be sorted and disjoint");
    }
    total += fragments[i].second;
  }
  if (total != out.size()) {
    return InvalidArgument("output buffer does not match fragment total");
  }
  return OkStatus();
}

/// One planned read: either a sieve window spanning fragments [first,last)
/// or a lone fragment read straight into `out`.
struct Run {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::size_t first = 0;
  std::size_t last = 0;
  std::uint64_t out_pos = 0;
  [[nodiscard]] bool sieved() const { return last - first > 1; }
};

struct PendingRun {
  Run run;
  Buffer window;  // sieved runs read here, then extract
  fs::FileIo io;
};

}  // namespace

Result<SieveStats> SievedRead(fs::LwfsFs& fs, fs::FileHandle& file,
                              std::span<const Fragment> fragments,
                              MutableByteSpan out,
                              const SieveOptions& options) {
  LWFS_RETURN_IF_ERROR(ValidateFragments(fragments, out));
  SieveStats stats;

  // Plan: grow each candidate window while it stays under the cap and
  // dense enough.
  std::vector<Run> runs;
  std::size_t i = 0;
  std::uint64_t out_pos = 0;
  while (i < fragments.size()) {
    std::size_t j = i + 1;
    std::uint64_t needed = fragments[i].second;
    std::uint64_t span_end = fragments[i].first + fragments[i].second;
    while (j < fragments.size()) {
      const std::uint64_t new_end = fragments[j].first + fragments[j].second;
      const std::uint64_t new_span = new_end - fragments[i].first;
      const std::uint64_t new_needed = needed + fragments[j].second;
      if (new_span > options.max_window_bytes) break;
      if (static_cast<double>(new_needed) / static_cast<double>(new_span) <
          options.density_threshold) {
        break;
      }
      needed = new_needed;
      span_end = new_end;
      ++j;
    }
    Run run;
    run.offset = fragments[i].first;
    run.length = span_end - fragments[i].first;
    run.first = i;
    run.last = j;
    run.out_pos = out_pos;
    runs.push_back(run);
    stats.bytes_needed += needed;
    out_pos += needed;
    i = j;
  }

  // Issue the runs through a bounded window of async reads; extraction
  // happens as each run retires.  (If a retire fails, the deque's FileIo
  // destructors drain the rest before the buffers go away.)
  const std::size_t window = options.io_window == 0 ? 1 : options.io_window;
  std::deque<PendingRun> inflight;
  auto retire = [&]() -> Status {
    PendingRun p = std::move(inflight.front());
    inflight.pop_front();
    auto n = p.io.Await();
    if (!n.ok()) return n.status();
    if (p.run.sieved()) {
      std::uint64_t pos = p.run.out_pos;
      for (std::size_t k = p.run.first; k < p.run.last; ++k) {
        const std::uint64_t rel = fragments[k].first - p.run.offset;
        std::memcpy(out.data() + pos, p.window.data() + rel,
                    static_cast<std::size_t>(fragments[k].second));
        pos += fragments[k].second;
      }
    }
    return OkStatus();
  };

  for (const Run& run : runs) {
    while (inflight.size() >= window) LWFS_RETURN_IF_ERROR(retire());
    PendingRun p;
    p.run = run;
    Result<fs::FileIo> io = FailedPrecondition("unissued");
    if (run.sieved()) {
      // Sieve: one spanning read, extracted on retire.
      p.window.resize(static_cast<std::size_t>(run.length));
      io = fs.ReadAsync(file, run.offset, MutableByteSpan(p.window));
    } else {
      // Lone/sparse fragment: read it directly into place.
      io = fs.ReadAsync(file, run.offset,
                        out.subspan(static_cast<std::size_t>(run.out_pos),
                                    static_cast<std::size_t>(run.length)));
    }
    if (!io.ok()) return io.status();
    p.io = std::move(*io);
    ++stats.requests;
    stats.bytes_transferred += run.length;
    inflight.push_back(std::move(p));
  }
  while (!inflight.empty()) LWFS_RETURN_IF_ERROR(retire());
  return stats;
}

Result<SieveStats> DirectRead(fs::LwfsFs& fs, fs::FileHandle& file,
                              std::span<const Fragment> fragments,
                              MutableByteSpan out) {
  LWFS_RETURN_IF_ERROR(ValidateFragments(fragments, out));
  SieveStats stats;
  constexpr std::size_t kWindow = 8;
  std::deque<fs::FileIo> inflight;
  auto retire = [&]() -> Status {
    auto n = inflight.front().Await();
    inflight.pop_front();
    return n.ok() ? OkStatus() : n.status();
  };
  std::uint64_t out_pos = 0;
  for (const Fragment& frag : fragments) {
    while (inflight.size() >= kWindow) LWFS_RETURN_IF_ERROR(retire());
    auto io = fs.ReadAsync(file, frag.first,
                           out.subspan(static_cast<std::size_t>(out_pos),
                                       static_cast<std::size_t>(frag.second)));
    if (!io.ok()) return io.status();
    inflight.push_back(std::move(*io));
    ++stats.requests;
    stats.bytes_transferred += frag.second;
    stats.bytes_needed += frag.second;
    out_pos += frag.second;
  }
  while (!inflight.empty()) LWFS_RETURN_IF_ERROR(retire());
  return stats;
}

}  // namespace lwfs::io
