// Two-phase collective write (references [12] and [37] of the paper).
//
// When n ranks each hold many small, interleaved fragments of one file,
// writing them independently floods the storage servers with tiny requests.
// Two-phase I/O first *exchanges* fragments so that each of a small number
// of aggregators owns a contiguous file domain, then each aggregator issues
// few large writes.  On an MPP the exchange is an MPI all-to-all over the
// fast interconnect; here it is an in-memory shuffle, which preserves the
// property under study (requests issued against the I/O system).
#pragma once

#include <cstdint>
#include <vector>

#include "lwfsfs/lwfsfs.h"
#include "util/status.h"

namespace lwfs::io {

/// One fragment a rank wants written.
struct WriteFragment {
  std::uint64_t offset = 0;
  Buffer data;
};

struct CollectiveOptions {
  /// Number of aggregator "ranks" (file domains).
  std::uint32_t aggregators = 4;
  /// Cap on a single coalesced write (collective buffer size).
  std::uint64_t cb_buffer_bytes = 16ull << 20;
  /// Outstanding async coalesced writes (aggregators flush in parallel).
  std::size_t io_window = 4;
};

struct CollectiveStats {
  std::uint64_t fragments_in = 0;   // total fragments from all ranks
  std::uint64_t writes_issued = 0;  // coalesced writes sent to the FS
  std::uint64_t bytes = 0;
};

/// Collectively write all ranks' fragments to `file`.  Overlapping
/// fragments are invalid (collective writes are non-overlapping by MPI-IO
/// semantics) and rejected.
Result<CollectiveStats> CollectiveWrite(
    fs::LwfsFs& fs, fs::FileHandle& file,
    std::vector<std::vector<WriteFragment>> per_rank,
    const CollectiveOptions& options = {});

/// Baseline for the ablation: every rank writes its fragments one by one.
Result<CollectiveStats> IndependentWrite(
    fs::LwfsFs& fs, fs::FileHandle& file,
    const std::vector<std::vector<WriteFragment>>& per_rank);

}  // namespace lwfs::io
