#include "libio/collective.h"

#include <algorithm>
#include <deque>
#include <utility>

namespace lwfs::io {

namespace {

struct Placed {
  std::uint64_t offset;
  ByteSpan data;
  bool operator<(const Placed& other) const { return offset < other.offset; }
};

/// A coalesced run in flight: the collective buffer must stay alive until
/// the write retires.
struct PendingWrite {
  Buffer cb;
  fs::FileIo io;
};

}  // namespace

Result<CollectiveStats> CollectiveWrite(
    fs::LwfsFs& fs, fs::FileHandle& file,
    std::vector<std::vector<WriteFragment>> per_rank,
    const CollectiveOptions& options) {
  if (options.aggregators == 0 || options.cb_buffer_bytes == 0) {
    return InvalidArgument("bad collective options");
  }
  CollectiveStats stats;

  // Phase 0: flatten and sort by offset (the "exchange": every fragment is
  // routed to the aggregator owning its file domain).
  std::vector<Placed> all;
  for (const auto& rank : per_rank) {
    for (const WriteFragment& frag : rank) {
      if (frag.data.empty()) continue;
      all.push_back(Placed{frag.offset, ByteSpan(frag.data)});
      ++stats.fragments_in;
      stats.bytes += frag.data.size();
    }
  }
  if (all.empty()) return stats;
  std::sort(all.begin(), all.end());
  for (std::size_t i = 1; i < all.size(); ++i) {
    if (all[i - 1].offset + all[i - 1].data.size() > all[i].offset) {
      return InvalidArgument("overlapping collective fragments");
    }
  }

  // Phase 1: partition file space into aggregator domains.
  const std::uint64_t lo = all.front().offset;
  const std::uint64_t hi = all.back().offset + all.back().data.size();
  const std::uint64_t domain =
      std::max<std::uint64_t>(1, (hi - lo + options.aggregators - 1) /
                                     options.aggregators);

  // Phase 2: per domain, coalesce adjacent fragments into runs bounded by
  // the collective buffer, and push each run through a bounded window of
  // async writes — the aggregators' flushes overlap instead of taking
  // turns.  (If a retire fails, the deque's FileIo destructors drain the
  // rest before the buffers go away.)
  const std::size_t window = options.io_window == 0 ? 1 : options.io_window;
  std::deque<PendingWrite> inflight;
  auto retire = [&]() -> Status {
    auto n = inflight.front().io.Await();
    inflight.pop_front();
    return n.ok() ? OkStatus() : n.status();
  };
  std::size_t i = 0;
  while (i < all.size()) {
    const std::uint64_t domain_end =
        lo + ((all[i].offset - lo) / domain + 1) * domain;
    Buffer cb;
    std::uint64_t run_start = all[i].offset;
    std::uint64_t run_end = run_start;
    auto flush = [&]() -> Status {
      if (cb.empty()) return OkStatus();
      while (inflight.size() >= window) LWFS_RETURN_IF_ERROR(retire());
      PendingWrite p{std::move(cb), fs::FileIo{}};
      auto io = fs.WriteAsync(file, run_start, ByteSpan(p.cb));
      if (!io.ok()) return io.status();
      p.io = std::move(*io);
      inflight.push_back(std::move(p));
      ++stats.writes_issued;
      cb = Buffer{};
      return OkStatus();
    };
    while (i < all.size() && all[i].offset < domain_end) {
      const Placed& frag = all[i];
      const bool adjacent = cb.empty() || frag.offset == run_end;
      const bool fits = cb.size() + frag.data.size() <= options.cb_buffer_bytes;
      if (!adjacent || !fits) {
        LWFS_RETURN_IF_ERROR(flush());
        run_start = frag.offset;
        run_end = frag.offset;
      }
      cb.insert(cb.end(), frag.data.begin(), frag.data.end());
      run_end = frag.offset + frag.data.size();
      ++i;
    }
    LWFS_RETURN_IF_ERROR(flush());
  }
  while (!inflight.empty()) LWFS_RETURN_IF_ERROR(retire());
  return stats;
}

Result<CollectiveStats> IndependentWrite(
    fs::LwfsFs& fs, fs::FileHandle& file,
    const std::vector<std::vector<WriteFragment>>& per_rank) {
  CollectiveStats stats;
  for (const auto& rank : per_rank) {
    for (const WriteFragment& frag : rank) {
      if (frag.data.empty()) continue;
      LWFS_RETURN_IF_ERROR(fs.Write(file, frag.offset, ByteSpan(frag.data)));
      ++stats.fragments_in;
      ++stats.writes_issued;
      stats.bytes += frag.data.size();
    }
  }
  return stats;
}

}  // namespace lwfs::io
