// Datasets: an HDF5/netCDF-flavoured array layer directly on LwfsFs.
//
// §6: "commonly used high-level libraries can make better use of the
// underlying hardware ... if they bypass the intermediate layers and
// interact directly with the LWFS core components."  A Dataset is an
// n-dimensional row-major array with named string attributes; hyperslab
// reads/writes map to file extents on an LwfsFs file, which maps to striped
// objects, which map to storage servers — no POSIX layer in between.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "lwfsfs/lwfsfs.h"
#include "util/status.h"

namespace lwfs::io {

struct DatasetSpec {
  std::vector<std::uint64_t> dims;  // row-major, slowest first
  std::uint32_t elem_size = 1;

  [[nodiscard]] std::uint64_t ElementCount() const {
    std::uint64_t n = 1;
    for (std::uint64_t d : dims) n *= d;
    return n;
  }
  [[nodiscard]] std::uint64_t ByteSize() const {
    return ElementCount() * elem_size;
  }
};

/// A contiguous run of a hyperslab in file space.
struct SlabRun {
  std::uint64_t file_offset = 0;  // bytes
  std::uint64_t length = 0;       // bytes
};

/// Decompose the hyperslab [start, start+count) of a dataset into
/// contiguous byte runs (row-major).  Pure; exhaustively tested.
Result<std::vector<SlabRun>> MapHyperslab(const DatasetSpec& spec,
                                          std::span<const std::uint64_t> start,
                                          std::span<const std::uint64_t> count);

class Dataset {
 public:
  /// Create a dataset file plus its header at `path`.
  static Result<Dataset> Create(
      fs::LwfsFs* fs, const std::string& path, DatasetSpec spec,
      std::map<std::string, std::string> attributes = {});

  /// Open an existing dataset.
  static Result<Dataset> Open(fs::LwfsFs* fs, const std::string& path);

  /// Write the hyperslab [start, start+count); `data` holds the slab
  /// row-major and must be exactly the slab's byte size.
  Status WriteSlab(std::span<const std::uint64_t> start,
                   std::span<const std::uint64_t> count, ByteSpan data);

  /// Zero-copy WriteSlab: each contiguous run goes out as an O(1)
  /// sub-slice of `data` (no staging copy on either side), and the slice
  /// keeps the slab alive until every run retires.  Non-owned slices fall
  /// back to the span path.
  Status WriteSlabSlice(std::span<const std::uint64_t> start,
                        std::span<const std::uint64_t> count,
                        const util::SharedSlice& data);

  /// Read the hyperslab into a freshly allocated buffer.  Per-run file
  /// reads are pipelined through a bounded window of async handles (like
  /// the striped write path), so runs on different stripes overlap.
  Result<Buffer> ReadSlab(std::span<const std::uint64_t> start,
                          std::span<const std::uint64_t> count);

  /// Zero-copy ReadSlab: a slab that maps to one contiguous run returns
  /// the file system's store-owned slice unchanged (no dataset-layer
  /// copy); fragmented slabs gather per-run slices into one freshly
  /// allocated slice.  Holes read as zero; always exactly the slab size.
  Result<util::SharedSlice> ReadSlabSlice(std::span<const std::uint64_t> start,
                                          std::span<const std::uint64_t> count);

  [[nodiscard]] const DatasetSpec& spec() const { return spec_; }
  [[nodiscard]] const std::map<std::string, std::string>& attributes() const {
    return attributes_;
  }
  [[nodiscard]] const std::string& path() const { return path_; }
  /// The underlying file (for collective/sieved access layered above).
  [[nodiscard]] fs::FileHandle& file() { return file_; }

 private:
  Dataset(fs::LwfsFs* fs, std::string path) : fs_(fs), path_(std::move(path)) {}

  static std::string HeaderPath(const std::string& path) {
    return path + ".dshdr";
  }

  fs::LwfsFs* fs_;
  std::string path_;
  DatasetSpec spec_;
  std::map<std::string, std::string> attributes_;
  fs::FileHandle file_;
};

}  // namespace lwfs::io
