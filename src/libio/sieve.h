// Data sieving (references [25-27, 33] of the paper's introduction).
//
// When an application reads many small, strided fragments, issuing one I/O
// per fragment pays per-request overhead hundreds of times.  A sieving
// reader instead reads one spanning window and extracts the fragments,
// trading extra bytes on the wire for far fewer requests — profitable
// whenever the fragments are dense enough.  The density threshold and
// window cap are application policy, which is exactly the kind of knob the
// LWFS "open architecture" keeps out of the core.
#pragma once

#include <cstdint>
#include <span>
#include <utility>

#include "lwfsfs/lwfsfs.h"
#include "util/status.h"

namespace lwfs::io {

struct SieveOptions {
  /// Sieve a window when (needed bytes / window span) >= this.
  double density_threshold = 0.25;
  /// Never read a sieve window larger than this.
  std::uint64_t max_window_bytes = 8ull << 20;
  /// Outstanding async window reads (bounds buffered window memory).
  std::size_t io_window = 4;
};

struct SieveStats {
  std::uint64_t requests = 0;           // I/O requests issued
  std::uint64_t bytes_transferred = 0;  // bytes moved over the wire
  std::uint64_t bytes_needed = 0;       // bytes the caller asked for
  [[nodiscard]] double overhead() const {
    return bytes_needed > 0
               ? static_cast<double>(bytes_transferred) /
                     static_cast<double>(bytes_needed)
               : 0;
  }
};

/// A fragment to read: (file offset, length).
using Fragment = std::pair<std::uint64_t, std::uint64_t>;

/// Read `fragments` (must be sorted, non-overlapping) into `out`
/// back-to-back, sieving windows where profitable.
Result<SieveStats> SievedRead(fs::LwfsFs& fs, fs::FileHandle& file,
                              std::span<const Fragment> fragments,
                              MutableByteSpan out,
                              const SieveOptions& options = {});

/// Baseline: one read per fragment.
Result<SieveStats> DirectRead(fs::LwfsFs& fs, fs::FileHandle& file,
                              std::span<const Fragment> fragments,
                              MutableByteSpan out);

}  // namespace lwfs::io
