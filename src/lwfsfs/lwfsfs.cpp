#include "lwfsfs/lwfsfs.h"

#include <algorithm>
#include <set>

#include "core/protocol.h"

namespace lwfs::fs {

namespace {

constexpr std::uint32_t kInodeMagic = 0x4C46494E;  // "LFIN"

txn::LockKey FileLockKey(const security::Capability& cap,
                         const storage::ObjectRef& inode) {
  return txn::LockKey{cap.cid.value, inode.oid.value};
}

/// Bytes of the file extent [0, size) that land in stripe `i` of
/// `stripe_count` stripes of `stripe_size` — i.e. the stripe object's size
/// implied by a file size.
std::uint64_t StripeObjectSize(std::uint64_t size, std::uint32_t stripe_size,
                               std::uint32_t stripe_count, std::uint32_t i) {
  const std::uint64_t row_bytes =
      static_cast<std::uint64_t>(stripe_size) * stripe_count;
  const std::uint64_t full_rows = size / row_bytes;
  const std::uint64_t rem = size % row_bytes;
  const std::uint64_t stripe_start = static_cast<std::uint64_t>(i) * stripe_size;
  std::uint64_t extra = 0;
  if (rem > stripe_start) {
    extra = std::min<std::uint64_t>(rem - stripe_start, stripe_size);
  }
  return full_rows * stripe_size + extra;
}

}  // namespace

Result<std::unique_ptr<LwfsFs>> LwfsFs::Mount(core::Client* client,
                                              security::Capability cap,
                                              std::string root,
                                              FsOptions options) {
  if (root.empty() || root.front() != '/') {
    return InvalidArgument("root must be an absolute naming path");
  }
  if (options.stripe_size == 0) return InvalidArgument("zero stripe size");
  auto fs = std::unique_ptr<LwfsFs>(
      new LwfsFs(client, std::move(cap), std::move(root), options));
  Status mkdir = client->Mkdir(fs->root_, /*recursive=*/true);
  if (!mkdir.ok() && mkdir.code() != ErrorCode::kAlreadyExists) return mkdir;
  return fs;
}

std::string LwfsFs::Absolute(const std::string& path) const {
  return root_ + path;
}

Status LwfsFs::Mkdir(const std::string& path) {
  return client_->Mkdir(Absolute(path));
}

Result<std::vector<std::string>> LwfsFs::Readdir(const std::string& path) {
  auto entries = client_->ListNames(Absolute(path));
  if (!entries.ok()) return entries.status();
  std::vector<std::string> names;
  names.reserve(entries->size());
  for (const naming::DirEntry& e : *entries) names.push_back(e.name);
  return names;
}

Status LwfsFs::Rename(const std::string& from, const std::string& to) {
  return client_->RenameName(Absolute(from), Absolute(to));
}

bool LwfsFs::Exists(const std::string& path) {
  return client_->LookupName(Absolute(path)).ok();
}

Status LwfsFs::WriteInode(const FileHandle& file) {
  Encoder enc;
  enc.PutU32(kInodeMagic);
  enc.PutU32(file.stripe_size);
  enc.PutU32(static_cast<std::uint32_t>(file.stripes.size()));
  for (const pfs::StripeTarget& t : file.stripes) {
    enc.PutU32(t.ost_index);
    enc.PutU64(t.oid.value);
  }
  enc.PutU64(file.size);
  return client_->WriteObject(file.inode.server_index, cap_, file.inode.oid,
                              0, ByteSpan(enc.buffer()));
}

Result<FileHandle> LwfsFs::DecodeInode(const std::string& path,
                                       const storage::ObjectRef& ref) {
  auto attr = client_->GetAttr(ref.server_index, cap_, ref.oid);
  if (!attr.ok()) return attr.status();
  auto raw = client_->ReadObjectAlloc(ref.server_index, cap_, ref.oid, 0,
                                      attr->size);
  if (!raw.ok()) return raw.status();
  Decoder dec(*raw);
  auto magic = dec.GetU32();
  if (!magic.ok() || *magic != kInodeMagic) {
    return DataLoss("bad inode magic for " + path);
  }
  FileHandle file;
  file.path = path;
  file.inode = ref;
  auto stripe_size = dec.GetU32();
  auto count = dec.GetU32();
  if (!stripe_size.ok() || !count.ok()) return DataLoss("truncated inode");
  file.stripe_size = *stripe_size;
  file.stripes.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto server = dec.GetU32();
    auto oid = dec.GetU64();
    if (!server.ok() || !oid.ok()) return DataLoss("truncated inode stripes");
    file.stripes.push_back(
        pfs::StripeTarget{*server, storage::ObjectId{*oid}});
  }
  auto size = dec.GetU64();
  if (!size.ok()) return DataLoss("truncated inode size");
  file.size = *size;
  return file;
}

Result<FileHandle> LwfsFs::Create(const std::string& path,
                                  std::uint32_t stripe_count) {
  const auto nservers =
      static_cast<std::uint32_t>(client_->storage_server_count());
  if (stripe_count == 0) stripe_count = options_.default_stripe_count;
  if (stripe_count == 0 || stripe_count > nservers) stripe_count = nservers;
  // Default policy: round-robin starting at a path-hash offset.
  const std::uint32_t base =
      static_cast<std::uint32_t>(std::hash<std::string>{}(path) % nservers);
  std::vector<std::uint32_t> servers(stripe_count);
  for (std::uint32_t i = 0; i < stripe_count; ++i) {
    servers[i] = (base + i) % nservers;
  }
  return CreateWithPlacement(path, servers);
}

Result<FileHandle> LwfsFs::CreateWithPlacement(
    const std::string& path, std::span<const std::uint32_t> servers) {
  const auto nservers =
      static_cast<std::uint32_t>(client_->storage_server_count());
  if (servers.empty()) return InvalidArgument("empty placement");
  for (std::uint32_t s : servers) {
    if (s >= nservers) return InvalidArgument("placement names unknown server");
  }

  FileHandle file;
  file.path = path;
  file.stripe_size = options_.stripe_size;
  file.size = 0;

  // Stripe objects are created directly on the storage servers — no
  // metadata server anywhere on this path.
  auto cleanup = [&] {
    for (const pfs::StripeTarget& t : file.stripes) {
      (void)client_->RemoveObject(t.ost_index, cap_, t.oid);
    }
    if (file.inode.oid != storage::kInvalidObject) {
      (void)client_->RemoveObject(file.inode.server_index, cap_,
                                  file.inode.oid);
    }
  };
  for (std::uint32_t server : servers) {
    auto oid = client_->CreateObject(server, cap_);
    if (!oid.ok()) {
      cleanup();
      return oid.status();
    }
    file.stripes.push_back(pfs::StripeTarget{server, *oid});
  }

  const std::uint32_t inode_server = servers[0];
  auto inode_oid = client_->CreateObject(inode_server, cap_);
  if (!inode_oid.ok()) {
    cleanup();
    return inode_oid.status();
  }
  file.inode = storage::ObjectRef{cap_.cid, inode_server, *inode_oid};
  Status wrote = WriteInode(file);
  if (!wrote.ok()) {
    cleanup();
    return wrote;
  }
  Status linked = client_->LinkName(Absolute(path), file.inode);
  if (!linked.ok()) {
    cleanup();
    return linked;
  }
  return file;
}

Result<FileHandle> LwfsFs::Open(const std::string& path) {
  auto ref = client_->LookupName(Absolute(path));
  if (!ref.ok()) return ref.status();
  return DecodeInode(path, *ref);
}

Status LwfsFs::Remove(const std::string& path) {
  auto file = Open(path);
  if (!file.ok()) return file.status();
  LWFS_RETURN_IF_ERROR(client_->UnlinkName(Absolute(path)));
  for (const pfs::StripeTarget& t : file->stripes) {
    (void)client_->RemoveObject(t.ost_index, cap_, t.oid);
  }
  return client_->RemoveObject(file->inode.server_index, cap_,
                               file->inode.oid);
}

Status LwfsFs::Write(FileHandle& file, std::uint64_t offset, ByteSpan data) {
  std::optional<txn::LockId> lock;
  if (options_.consistency == FsConsistency::kPosix) {
    auto id = client_->LockBlocking(FileLockKey(cap_, file.inode),
                                    {offset, offset + data.size()},
                                    txn::LockMode::kExclusive);
    if (!id.ok()) return id.status();
    lock = *id;
  }
  Status result = OkStatus();
  const auto chunks = pfs::MapExtent(
      file.stripe_size, static_cast<std::uint32_t>(file.stripes.size()),
      offset, data.size());
  for (const pfs::StripeChunk& chunk : chunks) {
    const pfs::StripeTarget& target = file.stripes[chunk.stripe_index];
    result = client_->WriteObject(
        target.ost_index, cap_, target.oid, chunk.object_offset,
        data.subspan(static_cast<std::size_t>(chunk.file_offset - offset),
                     static_cast<std::size_t>(chunk.length)));
    if (!result.ok()) break;
  }
  if (result.ok()) file.size = std::max(file.size, offset + data.size());
  if (lock) {
    Status unlocked = client_->Unlock(*lock);
    if (result.ok()) result = unlocked;
  }
  return result;
}

Result<std::uint64_t> LwfsFs::Read(FileHandle& file, std::uint64_t offset,
                                   MutableByteSpan out) {
  std::optional<txn::LockId> lock;
  if (options_.consistency == FsConsistency::kPosix) {
    auto id = client_->LockBlocking(FileLockKey(cap_, file.inode),
                                    {offset, offset + out.size()},
                                    txn::LockMode::kShared);
    if (!id.ok()) return id.status();
    lock = *id;
  }

  auto finish = [&](Result<std::uint64_t> r) -> Result<std::uint64_t> {
    if (lock) (void)client_->Unlock(*lock);
    return r;
  };

  auto size = Size(file);
  if (!size.ok()) return finish(size.status());
  if (offset >= *size) return finish(std::uint64_t{0});
  const std::uint64_t want = std::min<std::uint64_t>(out.size(), *size - offset);

  const auto chunks = pfs::MapExtent(
      file.stripe_size, static_cast<std::uint32_t>(file.stripes.size()),
      offset, want);
  for (const pfs::StripeChunk& chunk : chunks) {
    const pfs::StripeTarget& target = file.stripes[chunk.stripe_index];
    auto span =
        out.subspan(static_cast<std::size_t>(chunk.file_offset - offset),
                    static_cast<std::size_t>(chunk.length));
    auto n = client_->ReadObject(target.ost_index, cap_, target.oid,
                                 chunk.object_offset, span);
    if (!n.ok()) return finish(n.status());
    if (*n < chunk.length) {
      // Hole within the file extent (sparse writes): reads as zero.
      std::fill(span.begin() + static_cast<std::ptrdiff_t>(*n), span.end(), 0);
    }
  }
  return finish(want);
}

Status LwfsFs::Truncate(FileHandle& file, std::uint64_t size) {
  std::optional<txn::LockId> lock;
  if (options_.consistency == FsConsistency::kPosix) {
    auto id = client_->LockBlocking(FileLockKey(cap_, file.inode),
                                    txn::kWholeResource,
                                    txn::LockMode::kExclusive);
    if (!id.ok()) return id.status();
    lock = *id;
  }
  Status result = OkStatus();
  const auto count = static_cast<std::uint32_t>(file.stripes.size());
  for (std::uint32_t i = 0; i < count && result.ok(); ++i) {
    result = client_->TruncateObject(
        file.stripes[i].ost_index, cap_, file.stripes[i].oid,
        StripeObjectSize(size, file.stripe_size, count, i));
  }
  if (result.ok()) {
    file.size = size;
    result = WriteInode(file);
  }
  if (lock) {
    Status unlocked = client_->Unlock(*lock);
    if (result.ok()) result = unlocked;
  }
  return result;
}

Status LwfsFs::Flush(FileHandle& file) {
  if (options_.consistency == FsConsistency::kPosix) {
    auto id = client_->LockBlocking(FileLockKey(cap_, file.inode),
                                    txn::kWholeResource,
                                    txn::LockMode::kExclusive);
    if (!id.ok()) return id.status();
    // Merge with any size another writer already published.
    auto current = DecodeInode(file.path, file.inode);
    if (current.ok()) file.size = std::max(file.size, current->size);
    Status wrote = WriteInode(file);
    Status unlocked = client_->Unlock(*id);
    return wrote.ok() ? unlocked : wrote;
  }
  return WriteInode(file);
}

Result<std::uint64_t> LwfsFs::DerivedSize(const FileHandle& file) {
  const auto count = static_cast<std::uint32_t>(file.stripes.size());
  std::uint64_t size = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    auto attr = client_->GetAttr(file.stripes[i].ost_index, cap_,
                                 file.stripes[i].oid);
    if (!attr.ok()) return attr.status();
    if (attr->size == 0) continue;
    const std::uint64_t last = attr->size - 1;  // last byte in stripe object
    const std::uint64_t row = last / file.stripe_size;
    const std::uint64_t in_stripe = last % file.stripe_size;
    const std::uint64_t file_offset =
        (row * count + i) * file.stripe_size + in_stripe;
    size = std::max(size, file_offset + 1);
  }
  return size;
}

Result<LwfsFs::FsckReport> LwfsFs::Fsck(bool remove_orphans) {
  FsckReport report;
  // Reachable set: (server, oid) of every inode and stripe object named
  // under the mount root.
  std::set<std::pair<std::uint32_t, std::uint64_t>> reachable;

  // Iterative namespace walk.
  std::vector<std::string> pending = {""};  // paths relative to root_
  while (!pending.empty()) {
    const std::string dir = std::move(pending.back());
    pending.pop_back();
    auto entries = client_->ListNames(root_ + dir);
    if (!entries.ok()) return entries.status();
    ++report.directories;
    for (const naming::DirEntry& entry : *entries) {
      const std::string path = dir + "/" + entry.name;
      if (entry.is_directory) {
        pending.push_back(path);
        continue;
      }
      if (!entry.ref) continue;
      auto file = DecodeInode(path, *entry.ref);
      if (!file.ok()) {
        report.broken_files.push_back(path);
        continue;
      }
      ++report.files;
      reachable.emplace(entry.ref->server_index, entry.ref->oid.value);
      for (const pfs::StripeTarget& t : file->stripes) {
        reachable.emplace(t.ost_index, t.oid.value);
      }
    }
  }
  report.reachable_objects = reachable.size();

  // Container sweep on every storage server.
  const auto nservers =
      static_cast<std::uint32_t>(client_->storage_server_count());
  for (std::uint32_t s = 0; s < nservers; ++s) {
    auto ids = client_->ListObjects(s, cap_);
    if (!ids.ok()) return ids.status();
    for (storage::ObjectId oid : *ids) {
      if (!reachable.contains({s, oid.value})) {
        report.orphans.push_back(storage::ObjectRef{cap_.cid, s, oid});
      }
    }
  }

  if (remove_orphans) {
    for (const storage::ObjectRef& orphan : report.orphans) {
      LWFS_RETURN_IF_ERROR(
          client_->RemoveObject(orphan.server_index, cap_, orphan.oid));
    }
  }
  return report;
}

Result<std::uint64_t> LwfsFs::Size(const FileHandle& file) {
  if (options_.consistency == FsConsistency::kPosix) {
    // The inode is authoritative, but a handle that has written past it
    // sees its own writes.
    auto inode = DecodeInode(file.path, file.inode);
    if (!inode.ok()) return inode.status();
    return std::max(inode->size, file.size);
  }
  auto derived = DerivedSize(file);
  if (!derived.ok()) return derived.status();
  return std::max(*derived, file.size);
}

}  // namespace lwfs::fs
