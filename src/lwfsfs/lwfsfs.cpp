#include "lwfsfs/lwfsfs.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <set>

#include "core/protocol.h"

namespace lwfs::fs {

namespace {

constexpr std::uint32_t kInodeMagic = 0x4C46494E;  // "LFIN"

txn::LockKey FileLockKey(const security::Capability& cap,
                         const storage::ObjectRef& inode) {
  return txn::LockKey{cap.cid.value, inode.oid.value};
}

/// Bytes of the file extent [0, size) that land in stripe `i` of
/// `stripe_count` stripes of `stripe_size` — i.e. the stripe object's size
/// implied by a file size.
std::uint64_t StripeObjectSize(std::uint64_t size, std::uint32_t stripe_size,
                               std::uint32_t stripe_count, std::uint32_t i) {
  const std::uint64_t row_bytes =
      static_cast<std::uint64_t>(stripe_size) * stripe_count;
  const std::uint64_t full_rows = size / row_bytes;
  const std::uint64_t rem = size % row_bytes;
  const std::uint64_t stripe_start = static_cast<std::uint64_t>(i) * stripe_size;
  std::uint64_t extra = 0;
  if (rem > stripe_start) {
    extra = std::min<std::uint64_t>(rem - stripe_start, stripe_size);
  }
  return full_rows * stripe_size + extra;
}

}  // namespace

// ---------------------------------------------------------------------------
// FileIo
// ---------------------------------------------------------------------------

struct FileIo::State {
  LwfsFs* fs = nullptr;
  FileHandle* file = nullptr;  // must outlive the handle
  bool is_read = false;
  std::uint64_t offset = 0;
  ByteSpan data{};          // write payload
  // Ref-counted write payload (WriteSliceAsync): chunks register O(1)
  // sub-slices of this for the server pull instead of raw spans, and the
  // slice keeps the payload alive past caller scope.
  util::SharedSlice data_slice{};
  MutableByteSpan out{};    // read destination

  // kPosix: the byte-range lock is acquired lazily in Await() so a driver
  // pipelining several FileIo handles cannot deadlock against locks held
  // by its own not-yet-retired handles.
  bool need_lock = false;
  std::optional<txn::LockId> lock;

  struct Chunk {
    std::uint32_t server = 0;
    storage::ObjectId oid;
    std::uint64_t object_offset = 0;
    std::uint64_t length = 0;
    std::size_t span_offset = 0;  // into `data` / `out`
  };
  std::vector<Chunk> chunks;
  std::size_t next_chunk = 0;
  bool planned = false;  // reads plan under the lock, inside Await()
  std::uint64_t want = 0;  // read extent after clamping to the file size

  struct Issued {
    core::PendingIo io;
    MutableByteSpan span{};  // read chunk destination, for hole zero-fill
    std::uint64_t length = 0;
  };
  std::deque<Issued> inflight;

  bool completed = false;
  Result<std::uint64_t> result = std::uint64_t{0};
};

FileIo::FileIo() = default;
FileIo::FileIo(FileIo&&) noexcept = default;
FileIo& FileIo::operator=(FileIo&&) noexcept = default;

FileIo::~FileIo() {
  // Drain so the caller's span is quiescent before it can be freed.
  if (state_ && !state_->completed) (void)Await();
}

Result<std::uint64_t> FileIo::Await() {
  if (!state_) return FailedPrecondition("awaiting an empty file io handle");
  State& s = *state_;
  if (s.completed) return s.result;
  LwfsFs& fs = *s.fs;

  if (s.need_lock && !s.lock) {
    const std::uint64_t len = s.is_read ? s.out.size() : s.data.size();
    auto id = fs.client_->LockBlocking(
        FileLockKey(fs.cap_, s.file->inode), {s.offset, s.offset + len},
        s.is_read ? txn::LockMode::kShared : txn::LockMode::kExclusive);
    if (!id.ok()) {
      s.completed = true;
      s.result = id.status();
      return s.result;
    }
    s.lock = *id;
  }

  Status error = OkStatus();
  if (s.is_read && !s.planned) error = fs.PlanRead(s);

  for (;;) {
    while (error.ok() && s.inflight.size() < fs.options_.io_window &&
           s.next_chunk < s.chunks.size()) {
      Status issued = fs.IssueFileChunk(s);
      if (!issued.ok()) error = issued;
    }
    if (s.inflight.empty()) break;
    State::Issued op = std::move(s.inflight.front());
    s.inflight.pop_front();
    auto n = op.io.Await();
    if (!n.ok()) {
      if (error.ok()) error = n.status();
      continue;
    }
    if (s.is_read && error.ok() && *n < op.length) {
      // Hole within the file extent (sparse writes): reads as zero.
      std::fill(op.span.begin() + static_cast<std::ptrdiff_t>(*n),
                op.span.end(), 0);
    }
  }

  if (error.ok() && !s.is_read) {
    s.file->size = std::max(s.file->size, s.offset + s.data.size());
  }
  if (s.lock) {
    Status unlocked = fs.client_->Unlock(*s.lock);
    if (error.ok()) error = unlocked;
    s.lock.reset();
  }
  s.completed = true;
  if (!error.ok()) {
    s.result = error;
  } else {
    s.result = s.is_read ? s.want : static_cast<std::uint64_t>(s.data.size());
  }
  return s.result;
}

Result<std::unique_ptr<LwfsFs>> LwfsFs::Mount(core::Client* client,
                                              security::Capability cap,
                                              std::string root,
                                              FsOptions options) {
  if (root.empty() || root.front() != '/') {
    return InvalidArgument("root must be an absolute naming path");
  }
  if (options.stripe_size == 0) return InvalidArgument("zero stripe size");
  auto fs = std::unique_ptr<LwfsFs>(
      new LwfsFs(client, std::move(cap), std::move(root), options));
  Status mkdir = client->Mkdir(fs->root_, /*recursive=*/true);
  if (!mkdir.ok() && mkdir.code() != ErrorCode::kAlreadyExists) return mkdir;
  return fs;
}

std::string LwfsFs::Absolute(const std::string& path) const {
  return root_ + path;
}

Status LwfsFs::Mkdir(const std::string& path) {
  return client_->Mkdir(Absolute(path));
}

Result<std::vector<std::string>> LwfsFs::Readdir(const std::string& path) {
  auto entries = client_->ListNames(Absolute(path));
  if (!entries.ok()) return entries.status();
  std::vector<std::string> names;
  names.reserve(entries->size());
  for (const naming::DirEntry& e : *entries) names.push_back(e.name);
  return names;
}

Status LwfsFs::Rename(const std::string& from, const std::string& to) {
  return client_->RenameName(Absolute(from), Absolute(to));
}

bool LwfsFs::Exists(const std::string& path) {
  return client_->LookupName(Absolute(path)).ok();
}

Status LwfsFs::WriteInode(const FileHandle& file) {
  Encoder enc;
  enc.PutU32(kInodeMagic);
  enc.PutU32(file.stripe_size);
  enc.PutU32(static_cast<std::uint32_t>(file.stripes.size()));
  for (const pfs::StripeTarget& t : file.stripes) {
    enc.PutU32(t.ost_index);
    enc.PutU64(t.oid.value);
  }
  enc.PutU64(file.size);
  return client_->WriteObject(file.inode.server_index, cap_, file.inode.oid,
                              0, ByteSpan(enc.buffer()));
}

Result<FileHandle> LwfsFs::DecodeInode(const std::string& path,
                                       const storage::ObjectRef& ref) {
  auto attr = client_->GetAttr(ref.server_index, cap_, ref.oid);
  if (!attr.ok()) return attr.status();
  auto raw = client_->ReadObjectAlloc(ref.server_index, cap_, ref.oid, 0,
                                      attr->size);
  if (!raw.ok()) return raw.status();
  Decoder dec(*raw);
  auto magic = dec.GetU32();
  if (!magic.ok() || *magic != kInodeMagic) {
    return DataLoss("bad inode magic for " + path);
  }
  FileHandle file;
  file.path = path;
  file.inode = ref;
  auto stripe_size = dec.GetU32();
  auto count = dec.GetU32();
  if (!stripe_size.ok() || !count.ok()) return DataLoss("truncated inode");
  file.stripe_size = *stripe_size;
  file.stripes.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto server = dec.GetU32();
    auto oid = dec.GetU64();
    if (!server.ok() || !oid.ok()) return DataLoss("truncated inode stripes");
    file.stripes.push_back(
        pfs::StripeTarget{*server, storage::ObjectId{*oid}});
  }
  auto size = dec.GetU64();
  if (!size.ok()) return DataLoss("truncated inode size");
  file.size = *size;
  return file;
}

Result<FileHandle> LwfsFs::Create(const std::string& path,
                                  std::uint32_t stripe_count) {
  const auto nservers =
      static_cast<std::uint32_t>(client_->storage_server_count());
  if (stripe_count == 0) stripe_count = options_.default_stripe_count;
  if (stripe_count == 0 || stripe_count > nservers) stripe_count = nservers;
  // Default policy: round-robin starting at a path-hash offset.
  const std::uint32_t base =
      static_cast<std::uint32_t>(std::hash<std::string>{}(path) % nservers);
  std::vector<std::uint32_t> servers(stripe_count);
  for (std::uint32_t i = 0; i < stripe_count; ++i) {
    servers[i] = (base + i) % nservers;
  }
  return CreateWithPlacement(path, servers);
}

Result<FileHandle> LwfsFs::CreateWithPlacement(
    const std::string& path, std::span<const std::uint32_t> servers) {
  const auto nservers =
      static_cast<std::uint32_t>(client_->storage_server_count());
  if (servers.empty()) return InvalidArgument("empty placement");
  for (std::uint32_t s : servers) {
    if (s >= nservers) return InvalidArgument("placement names unknown server");
  }

  FileHandle file;
  file.path = path;
  file.stripe_size = options_.stripe_size;
  file.size = 0;

  // Stripe objects are created directly on the storage servers — no
  // metadata server anywhere on this path.
  auto cleanup = [&] {
    for (const pfs::StripeTarget& t : file.stripes) {
      (void)client_->RemoveObject(t.ost_index, cap_, t.oid);
    }
    if (file.inode.oid != storage::kInvalidObject) {
      (void)client_->RemoveObject(file.inode.server_index, cap_,
                                  file.inode.oid);
    }
  };
  for (std::uint32_t server : servers) {
    auto oid = client_->CreateObject(server, cap_);
    if (!oid.ok()) {
      cleanup();
      return oid.status();
    }
    file.stripes.push_back(pfs::StripeTarget{server, *oid});
  }

  const std::uint32_t inode_server = servers[0];
  auto inode_oid = client_->CreateObject(inode_server, cap_);
  if (!inode_oid.ok()) {
    cleanup();
    return inode_oid.status();
  }
  file.inode = storage::ObjectRef{cap_.cid, inode_server, *inode_oid};
  Status wrote = WriteInode(file);
  if (!wrote.ok()) {
    cleanup();
    return wrote;
  }
  Status linked = client_->LinkName(Absolute(path), file.inode);
  if (!linked.ok()) {
    cleanup();
    return linked;
  }
  return file;
}

Result<FileHandle> LwfsFs::Open(const std::string& path) {
  auto ref = client_->LookupName(Absolute(path));
  if (!ref.ok()) return ref.status();
  return DecodeInode(path, *ref);
}

Status LwfsFs::Remove(const std::string& path) {
  auto file = Open(path);
  if (!file.ok()) return file.status();
  LWFS_RETURN_IF_ERROR(client_->UnlinkName(Absolute(path)));
  for (const pfs::StripeTarget& t : file->stripes) {
    (void)client_->RemoveObject(t.ost_index, cap_, t.oid);
  }
  return client_->RemoveObject(file->inode.server_index, cap_,
                               file->inode.oid);
}

Status LwfsFs::Write(FileHandle& file, std::uint64_t offset, ByteSpan data) {
  auto io = WriteAsync(file, offset, data);
  if (!io.ok()) return io.status();
  auto n = io->Await();
  return n.ok() ? OkStatus() : n.status();
}

Result<std::uint64_t> LwfsFs::Read(FileHandle& file, std::uint64_t offset,
                                   MutableByteSpan out) {
  auto io = ReadAsync(file, offset, out);
  if (!io.ok()) return io.status();
  return io->Await();
}

Status LwfsFs::PlanRead(FileIo::State& s) {
  s.planned = true;
  auto size = Size(*s.file);
  if (!size.ok()) return size.status();
  if (s.offset >= *size) {
    s.want = 0;
    return OkStatus();
  }
  s.want = std::min<std::uint64_t>(s.out.size(), *size - s.offset);
  const auto chunks = pfs::MapExtent(
      s.file->stripe_size, static_cast<std::uint32_t>(s.file->stripes.size()),
      s.offset, s.want);
  s.chunks.reserve(chunks.size());
  for (const pfs::StripeChunk& chunk : chunks) {
    const pfs::StripeTarget& target = s.file->stripes[chunk.stripe_index];
    s.chunks.push_back(FileIo::State::Chunk{
        target.ost_index, target.oid, chunk.object_offset, chunk.length,
        static_cast<std::size_t>(chunk.file_offset - s.offset)});
  }
  return OkStatus();
}

Status LwfsFs::IssueFileChunk(FileIo::State& s) {
  const FileIo::State::Chunk& chunk = s.chunks[s.next_chunk++];
  if (s.is_read) {
    auto span = s.out.subspan(chunk.span_offset,
                              static_cast<std::size_t>(chunk.length));
    auto io = client_->ReadObjectAsync(chunk.server, cap_, chunk.oid,
                                       chunk.object_offset, span);
    if (!io.ok()) return io.status();
    s.inflight.push_back(
        FileIo::State::Issued{std::move(*io), span, chunk.length});
  } else {
    Result<core::PendingIo> io = InvalidArgument("unplanned chunk");
    if (s.data_slice.owned()) {
      io = client_->WriteObjectSliceAsync(
          chunk.server, cap_, chunk.oid, chunk.object_offset,
          s.data_slice.Slice(chunk.span_offset,
                             static_cast<std::size_t>(chunk.length)));
    } else {
      io = client_->WriteObjectAsync(
          chunk.server, cap_, chunk.oid, chunk.object_offset,
          s.data.subspan(chunk.span_offset,
                         static_cast<std::size_t>(chunk.length)));
    }
    if (!io.ok()) return io.status();
    s.inflight.push_back(
        FileIo::State::Issued{std::move(*io), MutableByteSpan{},
                              chunk.length});
  }
  return OkStatus();
}

Result<FileIo> LwfsFs::WriteAsync(FileHandle& file, std::uint64_t offset,
                                  ByteSpan data) {
  FileIo io;
  io.state_ = std::make_unique<FileIo::State>();
  FileIo::State& s = *io.state_;
  s.fs = this;
  s.file = &file;
  s.is_read = false;
  s.offset = offset;
  s.data = data;
  s.need_lock = options_.consistency == FsConsistency::kPosix;

  const auto chunks = pfs::MapExtent(
      file.stripe_size, static_cast<std::uint32_t>(file.stripes.size()),
      offset, data.size());
  s.chunks.reserve(chunks.size());
  for (const pfs::StripeChunk& chunk : chunks) {
    const pfs::StripeTarget& target = file.stripes[chunk.stripe_index];
    s.chunks.push_back(FileIo::State::Chunk{
        target.ost_index, target.oid, chunk.object_offset, chunk.length,
        static_cast<std::size_t>(chunk.file_offset - offset)});
  }

  // No chunk may go out before the lock is held; kPosix defers issuance
  // to Await().  Otherwise prime the window now for overlap.
  while (!s.need_lock && s.inflight.size() < options_.io_window &&
         s.next_chunk < s.chunks.size()) {
    Status issued = IssueFileChunk(s);
    if (!issued.ok()) {
      (void)io.Await();  // drain before reporting
      return issued;
    }
  }
  return io;
}

Status LwfsFs::WriteSlice(FileHandle& file, std::uint64_t offset,
                          const util::SharedSlice& data) {
  auto io = WriteSliceAsync(file, offset, data);
  if (!io.ok()) return io.status();
  auto n = io->Await();
  return n.ok() ? OkStatus() : n.status();
}

Result<FileIo> LwfsFs::WriteSliceAsync(FileHandle& file, std::uint64_t offset,
                                       const util::SharedSlice& data) {
  FileIo io;
  io.state_ = std::make_unique<FileIo::State>();
  FileIo::State& s = *io.state_;
  s.fs = this;
  s.file = &file;
  s.is_read = false;
  s.offset = offset;
  s.data = data.span();
  s.data_slice = data;  // before priming: every chunk rides the slice path
  s.need_lock = options_.consistency == FsConsistency::kPosix;

  const auto chunks = pfs::MapExtent(
      file.stripe_size, static_cast<std::uint32_t>(file.stripes.size()),
      offset, data.size());
  s.chunks.reserve(chunks.size());
  for (const pfs::StripeChunk& chunk : chunks) {
    const pfs::StripeTarget& target = file.stripes[chunk.stripe_index];
    s.chunks.push_back(FileIo::State::Chunk{
        target.ost_index, target.oid, chunk.object_offset, chunk.length,
        static_cast<std::size_t>(chunk.file_offset - offset)});
  }

  while (!s.need_lock && s.inflight.size() < options_.io_window &&
         s.next_chunk < s.chunks.size()) {
    Status issued = IssueFileChunk(s);
    if (!issued.ok()) {
      (void)io.Await();  // drain before reporting
      return issued;
    }
  }
  return io;
}

Result<FileIo> LwfsFs::ReadAsync(FileHandle& file, std::uint64_t offset,
                                 MutableByteSpan out) {
  FileIo io;
  io.state_ = std::make_unique<FileIo::State>();
  FileIo::State& s = *io.state_;
  s.fs = this;
  s.file = &file;
  s.is_read = true;
  s.offset = offset;
  s.out = out;
  s.need_lock = options_.consistency == FsConsistency::kPosix;

  // Reads clamp against the current size, which under kPosix must be
  // observed with the shared lock held — so planning happens in Await().
  // Relaxed mode plans and primes now for overlap.
  if (!s.need_lock) {
    Status planned = PlanRead(s);
    if (!planned.ok()) return planned;
    while (s.inflight.size() < options_.io_window &&
           s.next_chunk < s.chunks.size()) {
      Status issued = IssueFileChunk(s);
      if (!issued.ok()) {
        (void)io.Await();
        return issued;
      }
    }
  }
  return io;
}

Result<util::SharedSlice> LwfsFs::ReadSlice(FileHandle& file,
                                            std::uint64_t offset,
                                            std::uint64_t length) {
  // kPosix: shared byte-range lock over the extent, exactly like Read.
  std::optional<txn::LockId> lock;
  if (options_.consistency == FsConsistency::kPosix) {
    auto id = client_->LockBlocking(FileLockKey(cap_, file.inode),
                                    {offset, offset + length},
                                    txn::LockMode::kShared);
    if (!id.ok()) return id.status();
    lock = *id;
  }
  auto unlock = [&](Result<util::SharedSlice> r) -> Result<util::SharedSlice> {
    if (lock) {
      Status unlocked = client_->Unlock(*lock);
      if (r.ok() && !unlocked.ok()) return unlocked;
    }
    return r;
  };

  auto size = Size(file);
  if (!size.ok()) return unlock(size.status());
  if (offset >= *size) return unlock(util::SharedSlice());
  const std::uint64_t want = std::min<std::uint64_t>(length, *size - offset);
  const auto chunks = pfs::MapExtent(
      file.stripe_size, static_cast<std::uint32_t>(file.stripes.size()),
      offset, want);

  // Fast path: the extent lives in one stripe object — hand the server's
  // store-owned slice straight through.  A short slice here is a hole
  // inside the file extent; pad it below like the span path zero-fills.
  if (chunks.size() == 1) {
    const pfs::StripeTarget& target = file.stripes[chunks[0].stripe_index];
    auto got = client_->ReadObjectSlice(target.ost_index, cap_, target.oid,
                                        chunks[0].object_offset, want);
    if (!got.ok()) return unlock(got.status());
    if (got->size() == want) return unlock(std::move(*got));
    Buffer padded(static_cast<std::size_t>(want), std::uint8_t{0});
    std::copy(got->span().begin(), got->span().end(), padded.begin());
    LWFS_COUNT_COPY(util::CopyKind::kDeliver, got->size());
    return unlock(util::SharedSlice::FromBuffer(std::move(padded)));
  }

  // Gather path: per-stripe slices flow through the bounded window and are
  // copied once (kDeliver — final delivery, outside the staging budget)
  // into a single freshly allocated slice.  Holes stay zero.
  Buffer out(static_cast<std::size_t>(want), std::uint8_t{0});
  struct Issued {
    core::PendingSliceIo io;
    std::size_t span_offset = 0;
  };
  std::deque<Issued> inflight;
  Status error = OkStatus();
  std::size_t next = 0;
  auto retire = [&] {
    Issued op = std::move(inflight.front());
    inflight.pop_front();
    auto got = op.io.Await();
    if (!got.ok()) {
      if (error.ok()) error = got.status();
      return;
    }
    std::copy(got->span().begin(), got->span().end(),
              out.begin() + static_cast<std::ptrdiff_t>(op.span_offset));
    LWFS_COUNT_COPY(util::CopyKind::kDeliver, got->size());
  };
  while (error.ok() && next < chunks.size()) {
    if (inflight.size() >= options_.io_window) {
      retire();
      continue;
    }
    const pfs::StripeChunk& chunk = chunks[next++];
    const pfs::StripeTarget& target = file.stripes[chunk.stripe_index];
    auto io = client_->ReadObjectSliceAsync(target.ost_index, cap_, target.oid,
                                            chunk.object_offset, chunk.length);
    if (!io.ok()) {
      error = io.status();
      break;
    }
    inflight.push_back(Issued{
        std::move(*io), static_cast<std::size_t>(chunk.file_offset - offset)});
  }
  while (!inflight.empty()) retire();
  if (!error.ok()) return unlock(error);
  return unlock(util::SharedSlice::FromBuffer(std::move(out)));
}

Status LwfsFs::Truncate(FileHandle& file, std::uint64_t size) {
  std::optional<txn::LockId> lock;
  if (options_.consistency == FsConsistency::kPosix) {
    auto id = client_->LockBlocking(FileLockKey(cap_, file.inode),
                                    txn::kWholeResource,
                                    txn::LockMode::kExclusive);
    if (!id.ok()) return id.status();
    lock = *id;
  }
  Status result = OkStatus();
  const auto count = static_cast<std::uint32_t>(file.stripes.size());
  for (std::uint32_t i = 0; i < count && result.ok(); ++i) {
    result = client_->TruncateObject(
        file.stripes[i].ost_index, cap_, file.stripes[i].oid,
        StripeObjectSize(size, file.stripe_size, count, i));
  }
  if (result.ok()) {
    file.size = size;
    result = WriteInode(file);
  }
  if (lock) {
    Status unlocked = client_->Unlock(*lock);
    if (result.ok()) result = unlocked;
  }
  return result;
}

Status LwfsFs::Flush(FileHandle& file) {
  if (options_.consistency == FsConsistency::kPosix) {
    auto id = client_->LockBlocking(FileLockKey(cap_, file.inode),
                                    txn::kWholeResource,
                                    txn::LockMode::kExclusive);
    if (!id.ok()) return id.status();
    // Merge with any size another writer already published.
    auto current = DecodeInode(file.path, file.inode);
    if (current.ok()) file.size = std::max(file.size, current->size);
    Status wrote = WriteInode(file);
    Status unlocked = client_->Unlock(*id);
    return wrote.ok() ? unlocked : wrote;
  }
  return WriteInode(file);
}

Result<std::uint64_t> LwfsFs::DerivedSize(const FileHandle& file) {
  const auto count = static_cast<std::uint32_t>(file.stripes.size());
  std::uint64_t size = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    auto attr = client_->GetAttr(file.stripes[i].ost_index, cap_,
                                 file.stripes[i].oid);
    if (!attr.ok()) return attr.status();
    if (attr->size == 0) continue;
    const std::uint64_t last = attr->size - 1;  // last byte in stripe object
    const std::uint64_t row = last / file.stripe_size;
    const std::uint64_t in_stripe = last % file.stripe_size;
    const std::uint64_t file_offset =
        (row * count + i) * file.stripe_size + in_stripe;
    size = std::max(size, file_offset + 1);
  }
  return size;
}

Result<LwfsFs::FsckReport> LwfsFs::Fsck(bool remove_orphans) {
  FsckReport report;
  // Reachable set: (server, oid) of every inode and stripe object named
  // under the mount root.
  std::set<std::pair<std::uint32_t, std::uint64_t>> reachable;

  // Iterative namespace walk.
  std::vector<std::string> pending = {""};  // paths relative to root_
  while (!pending.empty()) {
    const std::string dir = std::move(pending.back());
    pending.pop_back();
    auto entries = client_->ListNames(root_ + dir);
    if (!entries.ok()) return entries.status();
    ++report.directories;
    for (const naming::DirEntry& entry : *entries) {
      const std::string path = dir + "/" + entry.name;
      if (entry.is_directory) {
        pending.push_back(path);
        continue;
      }
      if (!entry.ref) continue;
      auto file = DecodeInode(path, *entry.ref);
      if (!file.ok()) {
        report.broken_files.push_back(path);
        continue;
      }
      ++report.files;
      reachable.emplace(entry.ref->server_index, entry.ref->oid.value);
      for (const pfs::StripeTarget& t : file->stripes) {
        reachable.emplace(t.ost_index, t.oid.value);
      }
    }
  }
  report.reachable_objects = reachable.size();

  // Container sweep on every storage server.
  const auto nservers =
      static_cast<std::uint32_t>(client_->storage_server_count());
  for (std::uint32_t s = 0; s < nservers; ++s) {
    auto ids = client_->ListObjects(s, cap_);
    if (!ids.ok()) return ids.status();
    for (storage::ObjectId oid : *ids) {
      if (!reachable.contains({s, oid.value})) {
        report.orphans.push_back(storage::ObjectRef{cap_.cid, s, oid});
      }
    }
  }

  if (remove_orphans) {
    for (const storage::ObjectRef& orphan : report.orphans) {
      LWFS_RETURN_IF_ERROR(
          client_->RemoveObject(orphan.server_index, cap_, orphan.oid));
    }
  }
  return report;
}

Result<std::uint64_t> LwfsFs::Size(const FileHandle& file) {
  if (options_.consistency == FsConsistency::kPosix) {
    // The inode is authoritative, but a handle that has written past it
    // sees its own writes.
    auto inode = DecodeInode(file.path, file.inode);
    if (!inode.ok()) return inode.status();
    return std::max(inode->size, file.size);
  }
  auto derived = DerivedSize(file);
  if (!derived.ok()) return derived.status();
  return std::max(*derived, file.size);
}

}  // namespace lwfs::fs
