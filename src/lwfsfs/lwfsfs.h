// LwfsFs: a parallel file system implemented *above* the LWFS-core.
//
// The paper's §6 names this as the next step: "we plan to implement two
// traditional parallel file systems: one that provides POSIX semantics and
// standard distribution policies, and another (like the PVFS) with relaxed
// synchronization semantics that make the client responsible for data
// consistency."  This module is both, switched by FsConsistency.
//
// Unlike the baseline in src/pfs (which has a centralized metadata server
// by design), LwfsFs has *no* metadata server: a file is an inode object
// plus stripe objects, all created by the client directly on the storage
// servers, and the path is a naming-service entry.  File creation therefore
// scales with the number of storage servers — the architectural win the
// paper measures in Figure 10 carried up to a full file-system interface.
//
//  * kPosix  — writes take exclusive byte-range locks, reads shared locks
//              (via the lock service); sizes are published to the inode on
//              Flush/Close and visible to all openers.
//  * kRelaxed — no locks; the application coordinates (checkpoint-style
//              non-overlapping access); size is derived from stripe sizes.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/client.h"
#include "pfs/layout.h"
#include "security/types.h"
#include "util/status.h"

namespace lwfs::fs {

enum class FsConsistency { kPosix, kRelaxed };

struct FsOptions {
  std::uint32_t stripe_size = 1 << 20;
  /// 0 = stripe over all storage servers.
  std::uint32_t default_stripe_count = 0;
  FsConsistency consistency = FsConsistency::kPosix;
  /// Outstanding per-stripe object calls within one Read/Write.
  std::size_t io_window = 8;
};

/// An open file: the decoded inode plus cached layout.
struct FileHandle {
  std::string path;
  storage::ObjectRef inode;     // the inode object
  std::uint32_t stripe_size = 0;
  std::vector<pfs::StripeTarget> stripes;  // reuse the striping arithmetic
  std::uint64_t size = 0;       // as of open/last flush
};

class LwfsFs;

/// A pending file write or read.  Per-stripe object calls are issued
/// through a bounded in-flight window (FsOptions::io_window) and overlap;
/// Await() drives the remaining issuance and retires every chunk.  Under
/// kPosix the byte-range lock is acquired inside Await() before any chunk
/// goes out and released after the drain, so a caller pipelining several
/// FileIo handles never deadlocks against its own window.  The FileHandle
/// and the data span must stay valid until Await() returns (the destructor
/// drains as a backstop).
class FileIo {
 public:
  FileIo();
  FileIo(FileIo&&) noexcept;
  FileIo& operator=(FileIo&&) noexcept;
  ~FileIo();

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  /// Writes resolve to bytes written; reads to bytes read (short at EOF,
  /// holes zero-filled).
  Result<std::uint64_t> Await();

 private:
  friend class LwfsFs;
  struct State;
  std::unique_ptr<State> state_;
};

/// One mounted LwfsFs instance.  Bind one per client thread (the underlying
/// Client is thread-compatible, not thread-safe for shared handles).
class LwfsFs {
 public:
  /// Mount a file system rooted at naming path `root` over the container
  /// `cap` authorizes.  Creates the root directory if absent.
  static Result<std::unique_ptr<LwfsFs>> Mount(core::Client* client,
                                               security::Capability cap,
                                               std::string root,
                                               FsOptions options = {});

  // ---- Namespace ----------------------------------------------------------
  Status Mkdir(const std::string& path);
  Result<std::vector<std::string>> Readdir(const std::string& path);
  Status Rename(const std::string& from, const std::string& to);
  [[nodiscard]] bool Exists(const std::string& path);

  // ---- File lifecycle -------------------------------------------------------
  /// Create a file striped over `stripe_count` servers (0 = option
  /// default).  All object creates go directly to the storage servers.
  Result<FileHandle> Create(const std::string& path,
                            std::uint32_t stripe_count = 0);
  /// Create with an application-chosen placement: stripe i lives on
  /// storage server `servers[i]` (repetitions allowed).  Data distribution
  /// is application policy, not core policy (§3.1.1) — this is the hook.
  Result<FileHandle> CreateWithPlacement(
      const std::string& path, std::span<const std::uint32_t> servers);
  Result<FileHandle> Open(const std::string& path);
  /// Unlink the name and remove the inode + stripe objects.
  Status Remove(const std::string& path);

  // ---- Data ------------------------------------------------------------------
  /// Thin WriteAsync/ReadAsync + Await wrappers.
  Status Write(FileHandle& file, std::uint64_t offset, ByteSpan data);
  Result<std::uint64_t> Read(FileHandle& file, std::uint64_t offset,
                             MutableByteSpan out);
  /// Asynchronous striped I/O: per-stripe object calls flow through a
  /// window of FsOptions::io_window outstanding requests.  Under kPosix,
  /// issuance is deferred to FileIo::Await(), which takes the byte-range
  /// lock first.
  Result<FileIo> WriteAsync(FileHandle& file, std::uint64_t offset,
                            ByteSpan data);
  /// Zero-copy write: each per-stripe chunk registers an O(1) sub-slice of
  /// `data` for the storage server's pull, and the slice keeps the payload
  /// alive past caller scope.  Non-owned slices fall back to the span path.
  Status WriteSlice(FileHandle& file, std::uint64_t offset,
                    const util::SharedSlice& data);
  Result<FileIo> WriteSliceAsync(FileHandle& file, std::uint64_t offset,
                                 const util::SharedSlice& data);
  Result<FileIo> ReadAsync(FileHandle& file, std::uint64_t offset,
                           MutableByteSpan out);
  /// Zero-copy read: an extent inside one stripe returns the storage
  /// server's store-owned slice unchanged — no client-side landing buffer
  /// at all.  Extents spanning stripes gather per-stripe slices (fetched
  /// through the same bounded window) into one freshly allocated slice;
  /// holes read as zero.  Short at EOF.
  Result<util::SharedSlice> ReadSlice(FileHandle& file, std::uint64_t offset,
                                      std::uint64_t length);
  Status Truncate(FileHandle& file, std::uint64_t size);
  /// Publish the current size to the inode object (POSIX close/fsync
  /// semantics); refreshes `file.size`.
  Status Flush(FileHandle& file);

  /// Current file size: inode-published (POSIX) or derived from stripe
  /// object sizes (relaxed).
  Result<std::uint64_t> Size(const FileHandle& file);

  [[nodiscard]] const FsOptions& options() const { return options_; }
  [[nodiscard]] const std::string& root() const { return root_; }

  // ---- Consistency checking (fsck) ------------------------------------------
  struct FsckReport {
    std::uint64_t files = 0;              // reachable, intact files
    std::uint64_t directories = 0;        // directories walked
    std::uint64_t reachable_objects = 0;  // inodes + stripe objects
    /// Objects in the container no reachable file references — debris from
    /// crashes between object creation and name creation (exactly what the
    /// paper's transactional checkpoint avoids; non-transactional writers
    /// can still leak).
    std::vector<storage::ObjectRef> orphans;
    /// Paths whose inode is missing or corrupt.
    std::vector<std::string> broken_files;
  };

  /// Walk the namespace under the mount root, cross-check every file's
  /// inode and stripe objects, and sweep the container for orphans.  With
  /// `remove_orphans`, debris is deleted.  Only meaningful when the
  /// container is dedicated to this file system.
  Result<FsckReport> Fsck(bool remove_orphans = false);

 private:
  friend class FileIo;

  LwfsFs(core::Client* client, security::Capability cap, std::string root,
         FsOptions options)
      : client_(client),
        cap_(std::move(cap)),
        root_(std::move(root)),
        options_(options) {}

  [[nodiscard]] std::string Absolute(const std::string& path) const;
  Status WriteInode(const FileHandle& file);
  Result<FileHandle> DecodeInode(const std::string& path,
                                 const storage::ObjectRef& ref);
  /// Derived size: max over stripes of the byte the stripe's extent maps
  /// back to in file space.
  Result<std::uint64_t> DerivedSize(const FileHandle& file);
  /// Resolve the read extent against the current size and plan chunks
  /// (runs under the shared lock in kPosix mode).
  Status PlanRead(FileIo::State& s);
  /// Issue the next planned chunk of `s` asynchronously.
  Status IssueFileChunk(FileIo::State& s);

  core::Client* client_;
  security::Capability cap_;
  std::string root_;
  FsOptions options_;
};

}  // namespace lwfs::fs
