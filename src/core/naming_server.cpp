#include "core/naming_server.h"

#include "core/wire.h"

namespace lwfs::core {

NamingServer::NamingServer(std::shared_ptr<portals::Nic> nic,
                           naming::NamingService* service,
                           rpc::ServerOptions options)
    : service_(service),
      server_(std::move(nic), options),
      ops_(&server_, "naming") {
  ops_.On<wire::MkdirReq, rpc::Void>(
      wire::kNameMkdirOp,
      [this](rpc::ServerContext&, wire::MkdirReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(service_->Mkdir(req.path, req.recursive));
        return rpc::Void{};
      });

  ops_.On<wire::LinkReq, rpc::Void>(
      wire::kNameLinkOp,
      [this](rpc::ServerContext&, wire::LinkReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(service_->Link(req.path, req.ref));
        return rpc::Void{};
      });

  ops_.On<wire::StageLinkReq, rpc::Void>(
      wire::kNameStageLinkOp,
      [this](rpc::ServerContext&,
             wire::StageLinkReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(service_->StageLink(req.txid, req.path, req.ref));
        return rpc::Void{};
      });

  ops_.On<wire::PathReq, wire::ObjectRefRep>(
      wire::kNameLookupOp,
      [this](rpc::ServerContext&,
             wire::PathReq& req) -> Result<wire::ObjectRefRep> {
        auto ref = service_->Lookup(req.path);
        if (!ref.ok()) return ref.status();
        return wire::ObjectRefRep{*ref};
      });

  ops_.On<wire::PathReq, rpc::Void>(
      wire::kNameUnlinkOp,
      [this](rpc::ServerContext&, wire::PathReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(service_->Unlink(req.path));
        return rpc::Void{};
      });

  ops_.On<wire::PathReq, rpc::Void>(
      wire::kNameRmdirOp,
      [this](rpc::ServerContext&, wire::PathReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(service_->Rmdir(req.path));
        return rpc::Void{};
      });

  ops_.On<wire::RenameReq, rpc::Void>(
      wire::kNameRenameOp,
      [this](rpc::ServerContext&, wire::RenameReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(service_->Rename(req.from, req.to));
        return rpc::Void{};
      });

  ops_.On<wire::PathReq, wire::ListNamesRep>(
      wire::kNameListOp,
      [this](rpc::ServerContext&,
             wire::PathReq& req) -> Result<wire::ListNamesRep> {
        auto entries = service_->List(req.path);
        if (!entries.ok()) return entries.status();
        return wire::ListNamesRep{std::move(*entries)};
      });

  // Two-phase-commit participant endpoints.
  ops_.On<wire::TxnReq, wire::TxnVoteRep>(
      wire::kTxnPrepareOp,
      [this](rpc::ServerContext&,
             wire::TxnReq& req) -> Result<wire::TxnVoteRep> {
        auto vote = service_->participant()->Prepare(req.txid);
        if (!vote.ok()) return vote.status();
        return wire::TxnVoteRep{*vote};
      });
  ops_.On<wire::TxnReq, rpc::Void>(
      wire::kTxnCommitOp,
      [this](rpc::ServerContext&, wire::TxnReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(service_->participant()->Commit(req.txid));
        return rpc::Void{};
      });
  ops_.On<wire::TxnReq, rpc::Void>(
      wire::kTxnAbortOp,
      [this](rpc::ServerContext&, wire::TxnReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(service_->participant()->Abort(req.txid));
        return rpc::Void{};
      });
}

}  // namespace lwfs::core
