#include "core/naming_server.h"

#include "core/wire.h"

namespace lwfs::core {

NamingServer::NamingServer(std::shared_ptr<portals::Nic> nic,
                           naming::NamingService* service,
                           rpc::ServerOptions options,
                           naming::ReplicaMap* replicas)
    : service_(service),
      replicas_(replicas),
      server_(std::move(nic), options),
      ops_(&server_, "naming") {
  ops_.On<wire::MkdirReq, rpc::Void>(
      wire::kNameMkdirOp,
      [this](rpc::ServerContext&, wire::MkdirReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(service_->Mkdir(req.path, req.recursive));
        return rpc::Void{};
      });

  ops_.On<wire::LinkReq, rpc::Void>(
      wire::kNameLinkOp,
      [this](rpc::ServerContext&, wire::LinkReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(service_->Link(req.path, req.ref));
        return rpc::Void{};
      });

  ops_.On<wire::StageLinkReq, rpc::Void>(
      wire::kNameStageLinkOp,
      [this](rpc::ServerContext&,
             wire::StageLinkReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(service_->StageLink(req.txid, req.path, req.ref));
        return rpc::Void{};
      });

  ops_.On<wire::PathReq, wire::ObjectRefRep>(
      wire::kNameLookupOp,
      [this](rpc::ServerContext&,
             wire::PathReq& req) -> Result<wire::ObjectRefRep> {
        auto ref = service_->Lookup(req.path);
        if (!ref.ok()) return ref.status();
        return wire::ObjectRefRep{*ref};
      });

  ops_.On<wire::PathReq, rpc::Void>(
      wire::kNameUnlinkOp,
      [this](rpc::ServerContext&, wire::PathReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(service_->Unlink(req.path));
        return rpc::Void{};
      });

  ops_.On<wire::PathReq, rpc::Void>(
      wire::kNameRmdirOp,
      [this](rpc::ServerContext&, wire::PathReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(service_->Rmdir(req.path));
        return rpc::Void{};
      });

  ops_.On<wire::RenameReq, rpc::Void>(
      wire::kNameRenameOp,
      [this](rpc::ServerContext&, wire::RenameReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(service_->Rename(req.from, req.to));
        return rpc::Void{};
      });

  ops_.On<wire::PathReq, wire::ListNamesRep>(
      wire::kNameListOp,
      [this](rpc::ServerContext&,
             wire::PathReq& req) -> Result<wire::ListNamesRep> {
        auto entries = service_->List(req.path);
        if (!entries.ok()) return entries.status();
        return wire::ListNamesRep{std::move(*entries)};
      });

  // Replica registry: placement, lookup, degraded-write reports, and the
  // replica-count audit.  Registered only when a deployment attaches a map.
  if (replicas_ != nullptr) {
    ops_.On<wire::ReplicaPlaceReq, wire::ReplicaChainRep>(
        wire::kReplicaPlaceOp,
        [this](rpc::ServerContext&,
               wire::ReplicaPlaceReq& req) -> Result<wire::ReplicaChainRep> {
          auto placement = replicas_->Place(storage::ContainerId{req.cid},
                                            req.preferred, req.factor);
          if (!placement.ok()) return placement.status();
          return wire::ReplicaChainRep{placement->oid.value,
                                       placement->cid.value,
                                       std::move(placement->chain)};
        });

    ops_.On<wire::ReplicaLookupReq, wire::ReplicaChainRep>(
        wire::kReplicaLookupOp,
        [this](rpc::ServerContext&,
               wire::ReplicaLookupReq& req) -> Result<wire::ReplicaChainRep> {
          auto placement = replicas_->Lookup(storage::ObjectId{req.oid});
          if (!placement.ok()) return placement.status();
          return wire::ReplicaChainRep{placement->oid.value,
                                       placement->cid.value,
                                       std::move(placement->chain)};
        });

    ops_.On<wire::ReplicaReportReq, rpc::Void>(
        wire::kReplicaReportOp,
        [this](rpc::ServerContext&,
               wire::ReplicaReportReq& req) -> Result<rpc::Void> {
          LWFS_RETURN_IF_ERROR(replicas_->ReportStale(
              storage::ObjectId{req.oid}, req.version, req.stale));
          return rpc::Void{};
        });

    ops_.On<rpc::Void, wire::ReplicaAuditRep>(
        wire::kReplicaAuditOp,
        [this](rpc::ServerContext&, rpc::Void&) -> Result<wire::ReplicaAuditRep> {
          const naming::ReplicaAuditCounts counts = replicas_->Audit();
          return wire::ReplicaAuditRep{counts.objects, counts.fully_replicated,
                                       counts.under_replicated,
                                       counts.stale_members};
        });
  }

  // Two-phase-commit participant endpoints.
  ops_.On<wire::TxnReq, wire::TxnVoteRep>(
      wire::kTxnPrepareOp,
      [this](rpc::ServerContext&,
             wire::TxnReq& req) -> Result<wire::TxnVoteRep> {
        auto vote = service_->participant()->Prepare(req.txid);
        if (!vote.ok()) return vote.status();
        return wire::TxnVoteRep{*vote};
      });
  ops_.On<wire::TxnReq, rpc::Void>(
      wire::kTxnCommitOp,
      [this](rpc::ServerContext&, wire::TxnReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(service_->participant()->Commit(req.txid));
        return rpc::Void{};
      });
  ops_.On<wire::TxnReq, rpc::Void>(
      wire::kTxnAbortOp,
      [this](rpc::ServerContext&, wire::TxnReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(service_->participant()->Abort(req.txid));
        return rpc::Void{};
      });
}

}  // namespace lwfs::core
