#include "core/naming_server.h"

namespace lwfs::core {

NamingServer::NamingServer(std::shared_ptr<portals::Nic> nic,
                           naming::NamingService* service,
                           rpc::ServerOptions options)
    : service_(service), server_(std::move(nic), options) {
  server_.RegisterHandler(
      kOpNameMkdir,
      [this](rpc::ServerContext&, Decoder& req) -> Result<Buffer> {
        auto path = req.GetString();
        auto recursive = req.GetBool();
        if (!path.ok() || !recursive.ok()) {
          return InvalidArgument("malformed mkdir request");
        }
        LWFS_RETURN_IF_ERROR(service_->Mkdir(*path, *recursive));
        return Buffer{};
      });

  server_.RegisterHandler(
      kOpNameLink,
      [this](rpc::ServerContext&, Decoder& req) -> Result<Buffer> {
        auto path = req.GetString();
        auto ref = DecodeObjectRef(req);
        if (!path.ok() || !ref.ok()) {
          return InvalidArgument("malformed link request");
        }
        LWFS_RETURN_IF_ERROR(service_->Link(*path, *ref));
        return Buffer{};
      });

  server_.RegisterHandler(
      kOpNameStageLink,
      [this](rpc::ServerContext&, Decoder& req) -> Result<Buffer> {
        auto txid = req.GetU64();
        auto path = req.GetString();
        auto ref = DecodeObjectRef(req);
        if (!txid.ok() || !path.ok() || !ref.ok()) {
          return InvalidArgument("malformed staged-link request");
        }
        LWFS_RETURN_IF_ERROR(service_->StageLink(*txid, *path, *ref));
        return Buffer{};
      });

  server_.RegisterHandler(
      kOpNameLookup,
      [this](rpc::ServerContext&, Decoder& req) -> Result<Buffer> {
        auto path = req.GetString();
        if (!path.ok()) return path.status();
        auto ref = service_->Lookup(*path);
        if (!ref.ok()) return ref.status();
        Encoder reply;
        EncodeObjectRef(reply, *ref);
        return std::move(reply).Take();
      });

  server_.RegisterHandler(
      kOpNameUnlink,
      [this](rpc::ServerContext&, Decoder& req) -> Result<Buffer> {
        auto path = req.GetString();
        if (!path.ok()) return path.status();
        LWFS_RETURN_IF_ERROR(service_->Unlink(*path));
        return Buffer{};
      });

  server_.RegisterHandler(
      kOpNameRmdir,
      [this](rpc::ServerContext&, Decoder& req) -> Result<Buffer> {
        auto path = req.GetString();
        if (!path.ok()) return path.status();
        LWFS_RETURN_IF_ERROR(service_->Rmdir(*path));
        return Buffer{};
      });

  server_.RegisterHandler(
      kOpNameRename,
      [this](rpc::ServerContext&, Decoder& req) -> Result<Buffer> {
        auto from = req.GetString();
        auto to = req.GetString();
        if (!from.ok() || !to.ok()) {
          return InvalidArgument("malformed rename request");
        }
        LWFS_RETURN_IF_ERROR(service_->Rename(*from, *to));
        return Buffer{};
      });

  server_.RegisterHandler(
      kOpNameList,
      [this](rpc::ServerContext&, Decoder& req) -> Result<Buffer> {
        auto path = req.GetString();
        if (!path.ok()) return path.status();
        auto entries = service_->List(*path);
        if (!entries.ok()) return entries.status();
        Encoder reply;
        reply.PutU32(static_cast<std::uint32_t>(entries->size()));
        for (const naming::DirEntry& e : *entries) {
          reply.PutString(e.name);
          reply.PutBool(e.is_directory);
          reply.PutBool(e.ref.has_value());
          if (e.ref) EncodeObjectRef(reply, *e.ref);
        }
        return std::move(reply).Take();
      });

  // Two-phase-commit participant endpoints.
  server_.RegisterHandler(
      kOpTxnPrepare,
      [this](rpc::ServerContext&, Decoder& req) -> Result<Buffer> {
        auto txid = req.GetU64();
        if (!txid.ok()) return txid.status();
        auto vote = service_->participant()->Prepare(*txid);
        if (!vote.ok()) return vote.status();
        Encoder reply;
        reply.PutBool(*vote);
        return std::move(reply).Take();
      });
  server_.RegisterHandler(
      kOpTxnCommit,
      [this](rpc::ServerContext&, Decoder& req) -> Result<Buffer> {
        auto txid = req.GetU64();
        if (!txid.ok()) return txid.status();
        LWFS_RETURN_IF_ERROR(service_->participant()->Commit(*txid));
        return Buffer{};
      });
  server_.RegisterHandler(
      kOpTxnAbort,
      [this](rpc::ServerContext&, Decoder& req) -> Result<Buffer> {
        auto txid = req.GetU64();
        if (!txid.ok()) return txid.status();
        LWFS_RETURN_IF_ERROR(service_->participant()->Abort(*txid));
        return Buffer{};
      });
}

}  // namespace lwfs::core
