#include "core/naming_server.h"

#include <string>
#include <utility>

#include "core/wire.h"

namespace lwfs::core {

NamingServer::NamingServer(std::shared_ptr<portals::Nic> nic,
                           naming::NamingService* service,
                           rpc::ServerOptions options,
                           naming::ReplicaMap* replicas,
                           NamingShardConfig shard)
    : service_(service),
      replicas_(replicas),
      shard_(std::move(shard)),
      server_(std::move(nic), options),
      ops_(&server_, "naming"),
      active_(!shard_.standby) {
  ops_.On<wire::MkdirReq, rpc::Void>(
      wire::kNameMkdirOp,
      [this](rpc::ServerContext&, wire::MkdirReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(Admit(nullptr));  // dirs live on every shard
        LWFS_RETURN_IF_ERROR(service_->Mkdir(req.path, req.recursive));
        return rpc::Void{};
      });

  ops_.On<wire::LinkReq, rpc::Void>(
      wire::kNameLinkOp,
      [this](rpc::ServerContext&, wire::LinkReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(Admit(&req.path));
        LWFS_RETURN_IF_ERROR(service_->Link(req.path, req.ref));
        return rpc::Void{};
      });

  ops_.On<wire::StageLinkReq, rpc::Void>(
      wire::kNameStageLinkOp,
      [this](rpc::ServerContext&,
             wire::StageLinkReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(Admit(&req.path));
        LWFS_RETURN_IF_ERROR(service_->StageLink(req.txid, req.path, req.ref));
        return rpc::Void{};
      });

  ops_.On<wire::StageUnlinkReq, rpc::Void>(
      wire::kNameStageUnlinkOp,
      [this](rpc::ServerContext&,
             wire::StageUnlinkReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(Admit(&req.path));
        LWFS_RETURN_IF_ERROR(service_->StageUnlink(req.txid, req.path));
        return rpc::Void{};
      });

  ops_.On<wire::PathReq, wire::ObjectRefRep>(
      wire::kNameLookupOp,
      [this](rpc::ServerContext&,
             wire::PathReq& req) -> Result<wire::ObjectRefRep> {
        LWFS_RETURN_IF_ERROR(Admit(&req.path));
        auto ref = service_->Lookup(req.path);
        if (!ref.ok()) return ref.status();
        return wire::ObjectRefRep{*ref};
      });

  ops_.On<wire::PathReq, rpc::Void>(
      wire::kNameUnlinkOp,
      [this](rpc::ServerContext&, wire::PathReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(Admit(&req.path));
        LWFS_RETURN_IF_ERROR(service_->Unlink(req.path));
        return rpc::Void{};
      });

  ops_.On<wire::PathReq, rpc::Void>(
      wire::kNameRmdirOp,
      [this](rpc::ServerContext&, wire::PathReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(Admit(nullptr));  // dirs live on every shard
        LWFS_RETURN_IF_ERROR(service_->Rmdir(req.path));
        return rpc::Void{};
      });

  ops_.On<wire::RenameReq, rpc::Void>(
      wire::kNameRenameOp,
      [this](rpc::ServerContext&, wire::RenameReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(Admit(nullptr));
        if (shard_.shard_map != nullptr &&
            shard_.shard_map->shard_count() > 1) {
          // Partitioned namespace: a directory rename cannot be atomic on
          // one shard (its children hash everywhere), and a cross-shard
          // link rename must go through the 2PC stage-link/stage-unlink
          // path the client drives.
          if (service_->IsDirectory(req.from)) {
            return FailedPrecondition(
                "directory rename is not atomic across a sharded namespace");
          }
          if (shard_.shard_map->ShardForPath(req.from) != shard_.shard_index ||
              shard_.shard_map->ShardForPath(req.to) != shard_.shard_index) {
            return WrongShard("cross-shard rename must use the 2PC path");
          }
        }
        LWFS_RETURN_IF_ERROR(service_->Rename(req.from, req.to));
        return rpc::Void{};
      });

  ops_.On<wire::PathReq, wire::ListNamesRep>(
      wire::kNameListOp,
      [this](rpc::ServerContext&,
             wire::PathReq& req) -> Result<wire::ListNamesRep> {
        LWFS_RETURN_IF_ERROR(Admit(nullptr));  // clients merge across shards
        auto entries = service_->List(req.path);
        if (!entries.ok()) return entries.status();
        return wire::ListNamesRep{std::move(*entries)};
      });

  // Epoch-stamped shard-map snapshot.  Served without the role gate: a
  // passive standby answering a map fetch must not trigger a takeover, and
  // a deposed primary can still point clients at the new map.
  ops_.On<rpc::Void, wire::ShardMapRep>(
      wire::kNameShardMapOp,
      [this](rpc::ServerContext&, rpc::Void&) -> Result<wire::ShardMapRep> {
        wire::ShardMapRep rep;
        if (shard_.shard_map == nullptr) {
          rep.epoch = 1;
          rep.primaries = {nid()};
          rep.standbys = {portals::kInvalidNid};
          return rep;
        }
        const naming::ShardMap::Snapshot snap = shard_.shard_map->snapshot();
        rep.epoch = snap.epoch;
        rep.primaries.reserve(snap.shards.size());
        rep.standbys.reserve(snap.shards.size());
        for (const naming::ShardMap::Shard& s : snap.shards) {
          rep.primaries.push_back(s.primary);
          rep.standbys.push_back(s.standby);
        }
        return rep;
      });

  // Replica registry: placement, lookup, degraded-write reports, and the
  // replica-count audit.  Registered only when a deployment attaches a map.
  if (replicas_ != nullptr) {
    ops_.On<wire::ReplicaPlaceReq, wire::ReplicaChainRep>(
        wire::kReplicaPlaceOp,
        [this](rpc::ServerContext&,
               wire::ReplicaPlaceReq& req) -> Result<wire::ReplicaChainRep> {
          LWFS_RETURN_IF_ERROR(Admit(nullptr));
          auto placement = replicas_->Place(storage::ContainerId{req.cid},
                                            req.preferred, req.factor);
          if (!placement.ok()) return placement.status();
          return wire::ReplicaChainRep{placement->oid.value,
                                       placement->cid.value,
                                       std::move(placement->chain)};
        });

    ops_.On<wire::ReplicaLookupReq, wire::ReplicaChainRep>(
        wire::kReplicaLookupOp,
        [this](rpc::ServerContext&,
               wire::ReplicaLookupReq& req) -> Result<wire::ReplicaChainRep> {
          LWFS_RETURN_IF_ERROR(AdmitOid(req.oid));
          auto placement = replicas_->Lookup(storage::ObjectId{req.oid});
          if (!placement.ok()) return placement.status();
          return wire::ReplicaChainRep{placement->oid.value,
                                       placement->cid.value,
                                       std::move(placement->chain)};
        });

    ops_.On<wire::ReplicaReportReq, rpc::Void>(
        wire::kReplicaReportOp,
        [this](rpc::ServerContext&,
               wire::ReplicaReportReq& req) -> Result<rpc::Void> {
          LWFS_RETURN_IF_ERROR(AdmitOid(req.oid));
          LWFS_RETURN_IF_ERROR(replicas_->ReportStale(
              storage::ObjectId{req.oid}, req.version, req.stale));
          return rpc::Void{};
        });

    ops_.On<rpc::Void, wire::ReplicaAuditRep>(
        wire::kReplicaAuditOp,
        [this](rpc::ServerContext&, rpc::Void&) -> Result<wire::ReplicaAuditRep> {
          LWFS_RETURN_IF_ERROR(Admit(nullptr, /*charge=*/false));
          const naming::ReplicaAuditCounts counts = replicas_->Audit();
          return wire::ReplicaAuditRep{counts.objects, counts.fully_replicated,
                                       counts.under_replicated,
                                       counts.stale_members};
        });
  }

  // Two-phase-commit participant endpoints.  Role-gated (a commit sent to
  // a standby after takeover must land on the replayed state) but free of
  // the modeled op cost — votes are not metadata ops.
  ops_.On<wire::TxnReq, wire::TxnVoteRep>(
      wire::kTxnPrepareOp,
      [this](rpc::ServerContext&,
             wire::TxnReq& req) -> Result<wire::TxnVoteRep> {
        LWFS_RETURN_IF_ERROR(Admit(nullptr, /*charge=*/false));
        auto vote = service_->participant()->Prepare(req.txid);
        if (!vote.ok()) return vote.status();
        return wire::TxnVoteRep{*vote};
      });
  ops_.On<wire::TxnReq, rpc::Void>(
      wire::kTxnCommitOp,
      [this](rpc::ServerContext&, wire::TxnReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(Admit(nullptr, /*charge=*/false));
        LWFS_RETURN_IF_ERROR(service_->participant()->Commit(req.txid));
        return rpc::Void{};
      });
  ops_.On<wire::TxnReq, rpc::Void>(
      wire::kTxnAbortOp,
      [this](rpc::ServerContext&, wire::TxnReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(Admit(nullptr, /*charge=*/false));
        LWFS_RETURN_IF_ERROR(service_->participant()->Abort(req.txid));
        return rpc::Void{};
      });
}

Status NamingServer::Admit(const std::string* leaf_path, bool charge) {
  if (shard_.shard_map != nullptr) {
    {
      std::lock_guard<std::mutex> lock(takeover_mutex_);
      LWFS_RETURN_IF_ERROR(EnsureActiveLocked());
    }
    if (leaf_path != nullptr &&
        shard_.shard_map->ShardForPath(*leaf_path) != shard_.shard_index) {
      return WrongShard("path belongs to another metadata shard");
    }
  }
  if (charge && shard_.op_delay) shard_.op_delay();
  return OkStatus();
}

Status NamingServer::AdmitOid(std::uint64_t oid) {
  if (shard_.shard_map != nullptr) {
    {
      std::lock_guard<std::mutex> lock(takeover_mutex_);
      LWFS_RETURN_IF_ERROR(EnsureActiveLocked());
    }
    if (shard_.shard_map->ShardForOid(storage::ObjectId{oid}) !=
        shard_.shard_index) {
      return WrongShard("oid belongs to another metadata shard");
    }
  }
  if (shard_.op_delay) shard_.op_delay();
  return OkStatus();
}

Status NamingServer::EnsureActiveLocked() {
  naming::ShardMap& map = *shard_.shard_map;
  if (active_) {
    // Fencing: a deposed primary stops mutating the moment the map moves
    // on, so a takeover can never race it into split-brain.
    if (!map.IsActivePrimary(shard_.shard_index, nid())) {
      active_ = false;
      return WrongShard("shard primary deposed");
    }
    return OkStatus();
  }
  if (map.IsActivePrimary(shard_.shard_index, nid())) {
    active_ = true;  // promoted out of band
    return OkStatus();
  }
  if (!map.IsStandby(shard_.shard_index, nid())) {
    return WrongShard("not a member of this shard");
  }
  // Warm-standby takeover: the client only lands here after the primary
  // stopped answering (breaker/timeout).  Replay every committed mutation,
  // step in as primary (epoch bump invalidates cached client maps), then
  // pull real holdings so repair state reflects the storage tier's truth.
  std::uint64_t replayed = 0;
  if (shard_.oplog != nullptr) {
    for (const naming::OpRecord& rec : shard_.oplog->ReadFrom(0)) {
      Status applied;
      switch (rec.kind) {
        case naming::OpRecord::Kind::kReplicaPlace:
        case naming::OpRecord::Kind::kReplicaReportStale:
        case naming::OpRecord::Kind::kReplicaMarkRepaired:
        case naming::OpRecord::Kind::kReplicaHoldings:
          applied = replicas_ != nullptr
                        ? replicas_->Replay(rec)
                        : Internal("registry record without a registry");
          break;
        default:
          applied = service_->Replay(rec);
          break;
      }
      if (applied.ok()) {
        ++replayed;
      } else {
        ++takeover_replay_errors_;
      }
    }
    // From here on this server is the shard's writer: continue the log so
    // the audit trail (and any future standby) stays complete.
    service_->SetOpLog(shard_.oplog);
    if (replicas_ != nullptr) replicas_->SetOpLog(shard_.oplog);
  }
  LWFS_RETURN_IF_ERROR(map.Promote(shard_.shard_index, nid()));
  if (shard_.reregister_holdings && replicas_ != nullptr) {
    shard_.reregister_holdings(replicas_);
  }
  ++takeovers_;
  takeover_replayed_ += replayed;
  active_ = true;
  return OkStatus();
}

std::uint64_t NamingServer::takeovers() const {
  std::lock_guard<std::mutex> lock(takeover_mutex_);
  return takeovers_;
}

std::uint64_t NamingServer::takeover_replayed() const {
  std::lock_guard<std::mutex> lock(takeover_mutex_);
  return takeover_replayed_;
}

std::uint64_t NamingServer::takeover_replay_errors() const {
  std::lock_guard<std::mutex> lock(takeover_mutex_);
  return takeover_replay_errors_;
}

}  // namespace lwfs::core
