#include "core/authn_server.h"

namespace lwfs::core {

AuthnServer::AuthnServer(std::shared_ptr<portals::Nic> nic,
                         security::AuthnService* service,
                         rpc::ServerOptions options)
    : service_(service), server_(std::move(nic), options) {
  server_.RegisterHandler(
      kOpLogin, [this](rpc::ServerContext&, Decoder& req) -> Result<Buffer> {
        auto principal = req.GetString();
        auto secret = req.GetString();
        if (!principal.ok() || !secret.ok()) {
          return InvalidArgument("malformed login request");
        }
        auto cred = service_->Login(*principal, *secret);
        if (!cred.ok()) return cred.status();
        Encoder reply;
        cred->Encode(reply);
        return std::move(reply).Take();
      });

  server_.RegisterHandler(
      kOpRevokeCred,
      [this](rpc::ServerContext&, Decoder& req) -> Result<Buffer> {
        auto cred_id = req.GetU64();
        if (!cred_id.ok()) return cred_id.status();
        LWFS_RETURN_IF_ERROR(service_->Revoke(*cred_id));
        return Buffer{};
      });
}

}  // namespace lwfs::core
