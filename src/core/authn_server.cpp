#include "core/authn_server.h"

#include "core/wire.h"

namespace lwfs::core {

AuthnServer::AuthnServer(std::shared_ptr<portals::Nic> nic,
                         security::AuthnService* service,
                         rpc::ServerOptions options)
    : service_(service),
      server_(std::move(nic), options),
      ops_(&server_, "authn") {
  ops_.On<wire::LoginReq, wire::CredentialRep>(
      wire::kLoginOp,
      [this](rpc::ServerContext&,
             wire::LoginReq& req) -> Result<wire::CredentialRep> {
        auto cred = service_->Login(req.principal, req.secret);
        if (!cred.ok()) return cred.status();
        return wire::CredentialRep{*cred};
      });

  ops_.On<wire::RevokeCredReq, rpc::Void>(
      wire::kRevokeCredOp,
      [this](rpc::ServerContext&,
             wire::RevokeCredReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(service_->Revoke(req.cred_id));
        return rpc::Void{};
      });
}

}  // namespace lwfs::core
