// RPC binding of the lock service (§3.4).
//
// Lock acquisition over RPC is try-based: a busy lock returns
// kResourceExhausted and the *client* polls with backoff, so no server
// worker thread is ever parked holding a request slot.
#pragma once

#include <memory>

#include "core/protocol.h"
#include "rpc/rpc.h"
#include "txn/lock_table.h"

namespace lwfs::core {

class LockServer {
 public:
  LockServer(std::shared_ptr<portals::Nic> nic, txn::LockTable* table,
             rpc::ServerOptions options = {});

  Status Start() { return server_.Start(); }
  void Stop() { server_.Stop(); }

  [[nodiscard]] portals::Nid nid() const { return server_.nid(); }
  [[nodiscard]] txn::LockTable* table() { return table_; }
  [[nodiscard]] rpc::ServerStats rpc_stats() const { return server_.stats(); }

 private:
  txn::LockTable* table_;
  rpc::RpcServer server_;
};

}  // namespace lwfs::core
