// RPC binding of the lock service (§3.4).
//
// Lock acquisition over RPC is try-based: a busy lock returns
// kResourceExhausted and the *client* polls with backoff, so no server
// worker thread is ever parked holding a request slot.
#pragma once

#include <memory>
#include <vector>

#include "core/protocol.h"
#include "rpc/rpc.h"
#include "rpc/service.h"
#include "txn/lock_table.h"

namespace lwfs::core {

class LockServer {
 public:
  LockServer(std::shared_ptr<portals::Nic> nic, txn::LockTable* table,
             rpc::ServerOptions options = {});

  Status Start() {
    LWFS_RETURN_IF_ERROR(ops_.init_status());
    return server_.Start();
  }
  void Stop() { server_.Stop(); }

  [[nodiscard]] portals::Nid nid() const { return server_.nid(); }
  [[nodiscard]] txn::LockTable* table() { return table_; }
  [[nodiscard]] rpc::ServerStats rpc_stats() const { return server_.stats(); }
  [[nodiscard]] std::vector<rpc::OpStats> op_stats() const {
    return ops_.Stats();
  }
  [[nodiscard]] std::vector<rpc::Opcode> registered_opcodes() const {
    return server_.RegisteredOpcodes();
  }

 private:
  txn::LockTable* table_;
  rpc::RpcServer server_;
  rpc::Service ops_;
};

}  // namespace lwfs::core
