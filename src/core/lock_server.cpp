#include "core/lock_server.h"

#include "core/wire.h"

namespace lwfs::core {

LockServer::LockServer(std::shared_ptr<portals::Nic> nic,
                       txn::LockTable* table, rpc::ServerOptions options)
    : table_(table), server_(std::move(nic), options), ops_(&server_, "lock") {
  ops_.On<wire::LockTryReq, wire::LockIdRep>(
      wire::kLockTryOp,
      [this](rpc::ServerContext& ctx,
             wire::LockTryReq& req) -> Result<wire::LockIdRep> {
        auto id = table_->TryAcquire(
            txn::LockKey{req.container, req.resource},
            txn::LockRange{req.start, req.end},
            req.exclusive ? txn::LockMode::kExclusive : txn::LockMode::kShared,
            /*owner=*/ctx.client());
        if (!id.ok()) return id.status();
        return wire::LockIdRep{*id};
      });

  ops_.On<wire::LockReleaseReq, rpc::Void>(
      wire::kLockReleaseOp,
      [this](rpc::ServerContext&,
             wire::LockReleaseReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(table_->Release(req.id));
        return rpc::Void{};
      });
}

}  // namespace lwfs::core
