#include "core/lock_server.h"

namespace lwfs::core {

LockServer::LockServer(std::shared_ptr<portals::Nic> nic,
                       txn::LockTable* table, rpc::ServerOptions options)
    : table_(table), server_(std::move(nic), options) {
  server_.RegisterHandler(
      kOpLockTry, [this](rpc::ServerContext& ctx, Decoder& req) -> Result<Buffer> {
        auto container = req.GetU64();
        auto resource = req.GetU64();
        auto start = req.GetU64();
        auto end = req.GetU64();
        auto exclusive = req.GetBool();
        if (!container.ok() || !resource.ok() || !start.ok() || !end.ok() ||
            !exclusive.ok()) {
          return InvalidArgument("malformed lock request");
        }
        auto id = table_->TryAcquire(
            txn::LockKey{*container, *resource}, txn::LockRange{*start, *end},
            *exclusive ? txn::LockMode::kExclusive : txn::LockMode::kShared,
            /*owner=*/ctx.client());
        if (!id.ok()) return id.status();
        Encoder reply;
        reply.PutU64(*id);
        return std::move(reply).Take();
      });

  server_.RegisterHandler(
      kOpLockRelease,
      [this](rpc::ServerContext&, Decoder& req) -> Result<Buffer> {
        auto id = req.GetU64();
        if (!id.ok()) return id.status();
        LWFS_RETURN_IF_ERROR(table_->Release(*id));
        return Buffer{};
      });
}

}  // namespace lwfs::core
