// lwfs::core::Client — the public LWFS-core client API.
//
// Mirrors the programming model of Figure 8: authenticate once, create a
// container, acquire capabilities, then talk *directly* to storage servers
// (exposing their parallelism — design guideline 3 of §3), with optional
// naming, locking, and distributed transactions layered on top.
//
// Everything is addressed explicitly: object operations name the storage
// server they go to, because data distribution is application policy, not
// core policy (§3.1.1).
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/filters.h"
#include "core/protocol.h"
#include "naming/naming.h"
#include "naming/replica_map.h"
#include "rpc/rpc.h"
#include "security/types.h"
#include "storage/ids.h"
#include "storage/object_store.h"
#include "txn/journal.h"
#include "txn/lock_retry.h"
#include "txn/lock_table.h"
#include "txn/two_phase.h"
#include "util/shared_buffer.h"
#include "util/status.h"

namespace lwfs::core {

/// Where the services live.  Built by ServiceRuntime (in-process testbed) or
/// by hand for a custom deployment.
struct Deployment {
  portals::Nid authn = portals::kInvalidNid;
  portals::Nid authz = portals::kInvalidNid;
  portals::Nid naming = portals::kInvalidNid;
  portals::Nid locks = portals::kInvalidNid;
  std::vector<portals::Nid> storage;
  /// Sharded metadata plane: primary nid per naming shard (empty = the
  /// single `naming` server above owns the whole namespace).  `naming`
  /// stays equal to shard 0's primary for backward compatibility.
  std::vector<portals::Nid> naming_shards;
  /// Warm standby per shard (kInvalidNid = no standby for that shard).
  std::vector<portals::Nid> naming_standbys;
};

class Client;

/// Completion handle for an asynchronous object read or write (issued via
/// Client::WriteObjectAsync / ReadObjectAsync).  The data span handed in at
/// issue time stays registered with the fabric until the completion event,
/// so it must remain valid until Await()/TryAwait() reports completion.
class PendingIo {
 public:
  PendingIo() = default;

  [[nodiscard]] bool valid() const { return handle_.valid(); }

  /// Wait for the completion event.  Writes resolve to the number of bytes
  /// written; reads to the number of bytes actually read (short at EOF).
  Result<std::uint64_t> Await();

  /// Non-blocking variant; true once the call has completed.
  bool TryAwait(Result<std::uint64_t>* out);

  /// The underlying call handle — logical clients arm completion wakes on
  /// it (driver::Context::WakeOnComplete) instead of blocking in Await.
  [[nodiscard]] rpc::CallHandle& handle() { return handle_; }

 private:
  friend class Client;
  PendingIo(rpc::CallHandle handle, bool decode_reply, std::uint64_t nominal)
      : handle_(std::move(handle)),
        decode_reply_(decode_reply),
        nominal_(nominal) {}
  static Result<std::uint64_t> Resolve(Result<Buffer> reply, bool decode_reply,
                                       std::uint64_t nominal);

  rpc::CallHandle handle_;
  bool decode_reply_ = false;  // reply body carries a u64 byte count (reads)
  std::uint64_t nominal_ = 0;  // write payload size
};

/// Completion handle for a zero-copy object read (issued via
/// Client::ReadObjectSliceAsync).  Resolves to a ref-counted slice aliasing
/// the reply frame's received bytes — the client registers no landing
/// buffer, so there is no span-lifetime discipline to keep and an abandoned
/// read costs a refcount drop instead of a pinned buffer.
class PendingSliceIo {
 public:
  PendingSliceIo() = default;

  [[nodiscard]] bool valid() const { return handle_.valid(); }

  /// The object bytes (short at EOF, empty past it).  The slice stays
  /// valid for as long as the caller holds it, independent of the handle.
  Result<util::SharedSlice> Await();

  /// Non-blocking variant; true once the call has completed.
  bool TryAwait(Result<util::SharedSlice>* out);

  [[nodiscard]] rpc::CallHandle& handle() { return handle_; }

 private:
  friend class Client;
  explicit PendingSliceIo(rpc::CallHandle handle)
      : handle_(std::move(handle)) {}
  Result<util::SharedSlice> Resolve(Result<Buffer> reply);

  rpc::CallHandle handle_;
};

/// Completion handle for an asynchronous object create.
class PendingCreate {
 public:
  PendingCreate() = default;
  [[nodiscard]] bool valid() const { return handle_.valid(); }
  Result<storage::ObjectId> Await();
  /// Non-blocking variant; true once the call has completed.
  bool TryAwait(Result<storage::ObjectId>* out);
  [[nodiscard]] rpc::CallHandle& handle() { return handle_; }

 private:
  friend class Client;
  explicit PendingCreate(rpc::CallHandle handle) : handle_(std::move(handle)) {}
  rpc::CallHandle handle_;
};

/// A replicated object's placement as handed out by the naming server's
/// replica registry: deployment storage indices, chain head first.
struct ReplicaChain {
  storage::ObjectId oid = storage::kInvalidObject;
  storage::ContainerId cid = storage::kInvalidContainer;
  std::vector<std::uint32_t> servers;
};

/// Client-side replication counters (knobs and semantics in DESIGN.md §15).
struct ReplicationStats {
  std::uint64_t replicated_writes = 0;  // chain writes issued
  std::uint64_t write_failovers = 0;    // head reissues after transport failure
  std::uint64_t degraded_writes = 0;    // commits that missed >= 1 member
  std::uint64_t stale_reports = 0;      // ReplicaReport ops sent to naming
  std::uint64_t hedged_reads = 0;       // second read requests fired
  std::uint64_t hedge_wins = 0;         // hedge finished before the primary
  std::uint64_t read_failovers = 0;     // reads reissued on another member
  /// Payload bytes that arrived on losing hedge attempts and were released
  /// on the spot (a refcount drop).  Under the old per-attempt pinned
  /// buffer scheme each of these was a full-size allocation held until the
  /// losing call completed.
  std::uint64_t hedge_loser_bytes = 0;
};

/// Completion handle for a chain-replicated write.  One RPC carries the whole
/// slice to the chain head, which forwards it hop by hop; the commit ack comes
/// back from the head once the tail has applied.  If the head itself is
/// unreachable, TryAwait/Await transparently reissue the write to the next
/// chain member (head failover) — `generation()` bumps on every reissue so
/// event-driven callers know to re-arm completion wakes on the new handle().
class PendingReplicatedWrite {
 public:
  PendingReplicatedWrite() = default;

  [[nodiscard]] bool valid() const { return handle_.valid(); }

  /// Bytes written on success.  A commit that missed downstream members is
  /// still a success (degraded write): the miss is reported to the replica
  /// registry for background repair, not surfaced as an error.
  Result<std::uint64_t> Await();
  /// Non-blocking variant; true once resolved.  May synchronously reissue
  /// the write to the next chain member on head failure (and return false).
  bool TryAwait(Result<std::uint64_t>* out);

  [[nodiscard]] rpc::CallHandle& handle() { return handle_; }
  /// Bumped every time head failover reissues the hop; callers that armed a
  /// wake on handle() re-arm when this changes.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }
  /// Committed object version (valid after a successful Await).
  [[nodiscard]] std::uint64_t version() const { return version_; }
  /// Chain members that acked the write (valid after a successful Await).
  [[nodiscard]] const std::vector<std::uint32_t>& applied() const {
    return applied_;
  }

 private:
  friend class Client;
  PendingReplicatedWrite(Client* client, security::Capability cap,
                         ReplicaChain chain, std::uint64_t offset,
                         util::SharedSlice data);
  Status Issue();
  /// Shared completion step: true when resolved, false when a failover
  /// reissue is now in flight.
  bool Advance(Result<Buffer> reply, Result<std::uint64_t>* out);
  Result<std::uint64_t> Finish(Result<Buffer> reply);

  Client* client_ = nullptr;
  security::Capability cap_;
  ReplicaChain chain_;                   // full placement, for stale accounting
  std::vector<std::uint32_t> members_;   // remaining candidates, current head first
  std::uint64_t offset_ = 0;
  util::SharedSlice data_;
  rpc::CallHandle handle_;
  std::uint64_t generation_ = 0;
  bool done_ = false;
  Result<std::uint64_t> final_ = 0;
  std::uint64_t version_ = 0;
  std::vector<std::uint32_t> applied_;
};

/// Issues object I/O through a bounded in-flight window and gathers the
/// statuses — the client-side "outstanding requests" knob of Figure 6's
/// flow-control argument.  Write()/Read() return immediately while the
/// window has room and otherwise retire the oldest operation first.  The
/// first error seen anywhere in the batch is sticky: subsequent issues
/// return it without sending, so issue loops bail out naturally, and
/// Drain() reports it after retiring everything in flight.
///
/// Spans handed to Write()/Read() (and any `bytes_read` out-pointer) must
/// stay valid until the operation retires.  Not thread-safe: use one Batch
/// per issuing thread.
class Batch {
 public:
  static constexpr std::size_t kDefaultWindow = 8;

  explicit Batch(Client* client, std::size_t window = kDefaultWindow)
      : client_(client), window_(window == 0 ? 1 : window) {}
  ~Batch() { (void)Drain(); }

  Batch(const Batch&) = delete;
  Batch& operator=(const Batch&) = delete;

  Status Write(std::uint32_t server, const security::Capability& cap,
               storage::ObjectId oid, std::uint64_t offset, ByteSpan data);
  /// Zero-copy variant: the slice keeps the payload alive until the op
  /// retires, so the caller needs no span-lifetime discipline.
  Status WriteSlice(std::uint32_t server, const security::Capability& cap,
                    storage::ObjectId oid, std::uint64_t offset,
                    const util::SharedSlice& data);
  Status Read(std::uint32_t server, const security::Capability& cap,
              storage::ObjectId oid, std::uint64_t offset, MutableByteSpan out,
              std::uint64_t* bytes_read = nullptr);
  /// Zero-copy read: `*out` receives a store-backed slice when the op
  /// retires (short at EOF).  `out` must stay valid until then; no landing
  /// buffer is registered.
  Status ReadSlice(std::uint32_t server, const security::Capability& cap,
                   storage::ObjectId oid, std::uint64_t offset,
                   std::uint64_t length, util::SharedSlice* out);

  /// Retire everything in flight; returns the first error seen across the
  /// whole batch.
  Status Drain();

  [[nodiscard]] std::size_t inflight() const { return inflight_.size(); }
  [[nodiscard]] std::size_t window() const { return window_; }
  [[nodiscard]] const Status& first_error() const { return first_error_; }

 private:
  Status RetireOldest();

  struct Op {
    PendingIo io;
    std::uint64_t* bytes_read = nullptr;
    PendingSliceIo slice_io;               // slice reads only
    util::SharedSlice* slice_out = nullptr;
  };
  Client* client_;
  std::size_t window_;
  std::deque<Op> inflight_;
  Status first_error_ = OkStatus();
};

/// txn::Participant stub that forwards prepare/commit/abort over RPC.
class RemoteParticipant final : public txn::Participant {
 public:
  RemoteParticipant(rpc::RpcClient* rpc, portals::Nid nid, std::string name)
      : rpc_(rpc), nid_(nid), name_(std::move(name)) {}

  Result<bool> Prepare(txn::TxnId txid) override;
  Status Commit(txn::TxnId txid) override;
  Status Abort(txn::TxnId txid) override;
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  rpc::RpcClient* rpc_;
  portals::Nid nid_;
  std::string name_;
};

/// storage::ObjectStore adapter over one remote storage server + capability.
/// Lets client-side components built against ObjectStore (notably
/// txn::Journal) operate on remote objects unchanged.
class RemoteObjectStore final : public storage::ObjectStore {
 public:
  RemoteObjectStore(Client* client, std::uint32_t server_index,
                    security::Capability cap)
      : client_(client), server_(server_index), cap_(std::move(cap)) {}

  Result<storage::ObjectId> Create(storage::ContainerId cid) override;
  Status CreateWithId(storage::ContainerId, storage::ObjectId oid) override;
  Status Remove(storage::ObjectId oid) override;
  Status Write(storage::ObjectId oid, std::uint64_t offset,
               ByteSpan data) override;
  Result<Buffer> Read(storage::ObjectId oid, std::uint64_t offset,
                      std::uint64_t length) override;
  Result<util::SharedSlice> ReadSlice(storage::ObjectId oid,
                                      std::uint64_t offset,
                                      std::uint64_t length) override;
  Status Truncate(storage::ObjectId oid, std::uint64_t size) override;
  Result<storage::ObjAttr> GetAttr(storage::ObjectId oid) override;
  Result<std::vector<storage::ObjectId>> List(storage::ContainerId) override;
  Status SetVersion(storage::ObjectId, std::uint64_t) override {
    // Version catch-up is a repair-plane op (control portal), not part of
    // the capability-gated client protocol.
    return FailedPrecondition("SetVersion is not part of the wire protocol");
  }
  std::uint64_t ObjectCount() override { return 0; }  // not tracked remotely

 private:
  Client* client_;
  std::uint32_t server_;
  security::Capability cap_;
};

/// A distributed transaction in flight.  Created by Client::BeginTxn; the
/// journal lives as an object on a storage server (§3.4 durability).
class Transaction {
 public:
  [[nodiscard]] txn::TxnId id() const { return id_; }
  Status Commit() { return coordinator_->Commit(id_); }
  Status Abort() { return coordinator_->Abort(id_); }
  [[nodiscard]] txn::Journal* journal() { return journal_.get(); }
  [[nodiscard]] txn::Coordinator* coordinator() { return coordinator_.get(); }

 private:
  friend class Client;
  txn::TxnId id_ = 0;
  std::unique_ptr<RemoteObjectStore> journal_store_;
  std::unique_ptr<txn::Journal> journal_;
  std::vector<std::unique_ptr<RemoteParticipant>> stubs_;
  std::unique_ptr<txn::Coordinator> coordinator_;
};

/// Which services participate in a transaction.
struct TxnParticipants {
  std::vector<std::uint32_t> storage_servers;
  bool naming = false;  // legacy: enlist naming shard 0
  /// Naming shard indices to enlist (cross-shard rename enlists the source
  /// and destination shards).  Ignores duplicates with `naming`.
  std::vector<std::uint32_t> naming_shards;
};

class Client {
 public:
  Client(std::shared_ptr<portals::Nic> nic, Deployment deployment,
         rpc::ClientOptions rpc_options = {});

  // ---- Authentication ----------------------------------------------------
  Result<security::Credential> Login(const std::string& principal,
                                     const std::string& secret);
  Status RevokeCred(std::uint64_t cred_id);

  // ---- Raw async stubs (event-driven state machines) ---------------------
  // Issue the call and return the handle; when it completes, decode the
  // reply with the matching Resolve*.  Blocking counterparts are thin
  // issue+Await+Resolve wrappers over these.
  Result<rpc::CallHandle> LoginAsync(const std::string& principal,
                                     const std::string& secret);
  static Result<security::Credential> ResolveLogin(Result<Buffer> reply);
  Result<rpc::CallHandle> GetCapAsync(const security::Credential& cred,
                                      storage::ContainerId cid,
                                      std::uint32_t ops);
  static Result<security::Capability> ResolveGetCap(Result<Buffer> reply);
  Result<rpc::CallHandle> GetAttrAsync(std::uint32_t server,
                                       const security::Capability& cap,
                                       storage::ObjectId oid);
  static Result<storage::ObjAttr> ResolveGetAttr(Result<Buffer> reply);
  Result<rpc::CallHandle> TryLockAsync(const txn::LockKey& key,
                                       const txn::LockRange& range,
                                       txn::LockMode mode);
  static Result<txn::LockId> ResolveTryLock(Result<Buffer> reply);
  Result<rpc::CallHandle> UnlockAsync(txn::LockId id);
  static Status ResolveUnlock(Result<Buffer> reply);

  // ---- Authorization -----------------------------------------------------
  Result<storage::ContainerId> CreateContainer(
      const security::Credential& cred);
  Result<security::Capability> GetCap(const security::Credential& cred,
                                      storage::ContainerId cid,
                                      std::uint32_t ops);
  Result<security::Capability> RefreshCap(const security::Credential& cred,
                                          const security::Capability& cap);
  Status SetGrant(const security::Credential& cred, storage::ContainerId cid,
                  security::Uid grantee, std::uint32_t ops);
  Status RevokeCap(const security::Credential& cred, std::uint64_t cap_id);

  // ---- Object storage (direct to storage servers) -------------------------
  // The *Async variants issue the small request and return a completion
  // handle immediately; the registered data span must stay valid until the
  // handle resolves.  The synchronous calls are thin issue+Await wrappers.
  Result<storage::ObjectId> CreateObject(std::uint32_t server,
                                         const security::Capability& cap,
                                         txn::TxnId txid = 0);
  Result<PendingCreate> CreateObjectAsync(std::uint32_t server,
                                          const security::Capability& cap,
                                          txn::TxnId txid = 0);
  Status WriteObject(std::uint32_t server, const security::Capability& cap,
                     storage::ObjectId oid, std::uint64_t offset,
                     ByteSpan data);
  Result<PendingIo> WriteObjectAsync(std::uint32_t server,
                                     const security::Capability& cap,
                                     storage::ObjectId oid,
                                     std::uint64_t offset, ByteSpan data);
  /// Zero-copy write: registers an owned ref-counted slice for the server's
  /// pull, so the payload is never staged on either side (the store-medium
  /// copy at the server is the only copy) and stays alive until the call
  /// retires even if the caller drops its reference.
  Result<PendingIo> WriteObjectSliceAsync(std::uint32_t server,
                                          const security::Capability& cap,
                                          storage::ObjectId oid,
                                          std::uint64_t offset,
                                          const util::SharedSlice& data);
  Status WriteObjectSlice(std::uint32_t server, const security::Capability& cap,
                          storage::ObjectId oid, std::uint64_t offset,
                          const util::SharedSlice& data);
  Result<PendingIo> ReadObjectAsync(std::uint32_t server,
                                    const security::Capability& cap,
                                    storage::ObjectId oid,
                                    std::uint64_t offset, MutableByteSpan out);
  /// Read into caller memory; returns bytes actually read (short at EOF).
  Result<std::uint64_t> ReadObject(std::uint32_t server,
                                   const security::Capability& cap,
                                   storage::ObjectId oid, std::uint64_t offset,
                                   MutableByteSpan out);
  Result<Buffer> ReadObjectAlloc(std::uint32_t server,
                                 const security::Capability& cap,
                                 storage::ObjectId oid, std::uint64_t offset,
                                 std::uint64_t length);
  /// Zero-copy read: the reply frame carries the payload as store-owned
  /// slices, so the bytes land exactly once (the store's medium copy) and
  /// arrive as a ref-counted alias — no registered region, no push, no
  /// client-side landing buffer.
  Result<PendingSliceIo> ReadObjectSliceAsync(std::uint32_t server,
                                              const security::Capability& cap,
                                              storage::ObjectId oid,
                                              std::uint64_t offset,
                                              std::uint64_t length);
  Result<util::SharedSlice> ReadObjectSlice(std::uint32_t server,
                                            const security::Capability& cap,
                                            storage::ObjectId oid,
                                            std::uint64_t offset,
                                            std::uint64_t length);
  Status RemoveObject(std::uint32_t server, const security::Capability& cap,
                      storage::ObjectId oid, txn::TxnId txid = 0);
  Result<storage::ObjAttr> GetAttr(std::uint32_t server,
                                   const security::Capability& cap,
                                   storage::ObjectId oid);
  Result<std::vector<storage::ObjectId>> ListObjects(
      std::uint32_t server, const security::Capability& cap);
  Status TruncateObject(std::uint32_t server, const security::Capability& cap,
                        storage::ObjectId oid, std::uint64_t size);

  /// Active-storage filter (§6 "remote filtering"): run `spec` server-side
  /// over object bytes [offset, offset+length) (a float64 array) and
  /// receive only the result.  Returns {result bytes, input bytes reduced}.
  struct FilterOutcome {
    std::uint64_t result_bytes = 0;
    std::uint64_t input_bytes = 0;
  };
  Result<FilterOutcome> FilterObject(std::uint32_t server,
                                     const security::Capability& cap,
                                     storage::ObjectId oid,
                                     std::uint64_t offset, std::uint64_t length,
                                     const FilterSpec& spec,
                                     MutableByteSpan result);
  /// Convenience: allocates a result buffer sized for the worst case.
  Result<Buffer> FilterObjectAlloc(std::uint32_t server,
                                   const security::Capability& cap,
                                   storage::ObjectId oid, std::uint64_t offset,
                                   std::uint64_t length,
                                   const FilterSpec& spec);

  // ---- Replication (DESIGN.md §15) -----------------------------------------
  /// Ask the naming server's replica registry for an N-way placement.  The
  /// returned chain is rack-aware and deterministic for a given registry
  /// state, and the minted object id has the replicated bit (bit 62) set.
  Result<ReplicaChain> PlaceReplicated(storage::ContainerId cid,
                                       std::uint32_t preferred,
                                       std::uint32_t factor);
  Result<rpc::CallHandle> PlaceReplicatedAsync(storage::ContainerId cid,
                                               std::uint32_t preferred,
                                               std::uint32_t factor);
  static Result<ReplicaChain> ResolvePlaceReplicated(Result<Buffer> reply);
  Result<ReplicaChain> LookupReplicas(storage::ObjectId oid);
  /// Tell the registry that `stale` members missed the commit at `version`
  /// (degraded write); the background replicator repairs them later.
  Status ReportStaleReplicas(storage::ObjectId oid, std::uint64_t version,
                             const std::vector<std::uint32_t>& stale);
  /// Registry-wide replica-count audit (the acceptance check for repair).
  Result<naming::ReplicaAuditCounts> AuditReplicas();

  /// Create an object under a caller-chosen (replicated) id on one member.
  /// Idempotent: re-creating the same id in the same container succeeds.
  Status CreateObjectAt(std::uint32_t server, const security::Capability& cap,
                        storage::ObjectId oid, txn::TxnId txid = 0);
  Result<rpc::CallHandle> CreateObjectAtAsync(std::uint32_t server,
                                              const security::Capability& cap,
                                              storage::ObjectId oid,
                                              txn::TxnId txid = 0);
  /// Place + fan out CreateObjectAt to every chain member.  Members that are
  /// unreachable at create time are reported stale rather than failing the
  /// create, as long as at least one member accepts the object.
  Result<ReplicaChain> CreateReplicatedObject(const security::Capability& cap,
                                              std::uint32_t preferred,
                                              std::uint32_t factor,
                                              txn::TxnId txid = 0);

  /// Chain-replicated zero-copy write: one slice-carrying RPC to the chain
  /// head, which forwards the same slice downstream (client -> head -> tail)
  /// and acks after the tail commits.  See PendingReplicatedWrite for the
  /// failover and degraded-write semantics.
  Result<PendingReplicatedWrite> WriteReplicatedSliceAsync(
      const security::Capability& cap, const ReplicaChain& chain,
      std::uint64_t offset, const util::SharedSlice& data);
  Status WriteReplicatedSlice(const security::Capability& cap,
                              const ReplicaChain& chain, std::uint64_t offset,
                              const util::SharedSlice& data);
  Status WriteReplicated(const security::Capability& cap,
                         const ReplicaChain& chain, std::uint64_t offset,
                         ByteSpan data);

  /// Read-from-any with hedging: issues to the chain head, then fires a
  /// second request to the next member if the head's circuit breaker is open
  /// (immediately) or its latency exceeds hedge_after_us (on the clock).
  /// First successful reply wins; transport failures fail over through the
  /// rest of the chain.  With hedging off (hedge_after_us == 0) this is a
  /// plain read with sequential failover.
  Result<std::uint64_t> ReadReplicated(const security::Capability& cap,
                                       const ReplicaChain& chain,
                                       std::uint64_t offset,
                                       MutableByteSpan out);
  /// Slice form of the hedged read — the primitive ReadReplicated wraps.
  /// Attempts carry no landing buffer: each reply arrives as a ref-counted
  /// slice in its own call state, so a losing hedge releases its payload
  /// with a refcount drop (tallied in hedge_loser_bytes) instead of
  /// holding a full-size pinned buffer until the abandoned call completes.
  Result<util::SharedSlice> ReadReplicatedSlice(const security::Capability& cap,
                                                const ReplicaChain& chain,
                                                std::uint64_t offset,
                                                std::uint64_t length);

  /// Hedged-read latency knob, microseconds; 0 disables hedging.
  void SetHedgeAfterUs(std::uint64_t us) { hedge_after_us_ = us; }
  [[nodiscard]] std::uint64_t hedge_after_us() const { return hedge_after_us_; }
  [[nodiscard]] ReplicationStats replication_stats() const;

  // ---- Naming --------------------------------------------------------------
  // All naming ops route by shard when the deployment is sharded: leaf ops
  // go to ShardForPath(path)'s primary, directory ops fan out to every
  // shard (directories are replicated everywhere so any shard can resolve
  // its own leaves).  A kWrongShard rejection refreshes the client's
  // epoch-stamped map copy and retries; a transport failure retries the
  // shard's warm standby, whose first admitted op triggers takeover.
  Status Mkdir(std::string_view path, bool recursive = false);
  Status LinkName(std::string_view path, const storage::ObjectRef& ref);
  Status StageLinkName(txn::TxnId txid, std::string_view path,
                       const storage::ObjectRef& ref);
  /// Stage an unlink inside a transaction — the source half of an atomic
  /// cross-shard rename (RenameNameTxn stages link + unlink under 2PC).
  Status StageUnlinkName(txn::TxnId txid, std::string_view path);
  Result<storage::ObjectRef> LookupName(std::string_view path);
  Status UnlinkName(std::string_view path);
  Status RmdirName(std::string_view path);
  /// Same-shard rename (atomic at one server).  Cross-shard leaf renames
  /// return kFailedPrecondition — use RenameNameTxn.
  Status RenameName(std::string_view from, std::string_view to);
  /// Atomic rename across shards: LookupName(from), then one distributed
  /// transaction staging the link on the destination shard and the unlink
  /// on the source shard.  Same-shard renames fall through to RenameName.
  Status RenameNameTxn(std::string_view from, std::string_view to,
                       std::uint32_t journal_server,
                       const security::Capability& journal_cap);
  Result<std::vector<naming::DirEntry>> ListNames(std::string_view path);

  /// Re-fetch the epoch-stamped shard map from any live naming server.
  /// Called automatically on kWrongShard; public for event-driven callers
  /// (the checkpoint pipeline) that resolve naming replies themselves.
  Status RefreshShardRoute();
  [[nodiscard]] std::uint32_t naming_shard_count() const;
  [[nodiscard]] std::uint64_t shard_route_epoch() const;
  /// kWrongShard rejections that forced a map refresh + retry.
  [[nodiscard]] std::uint64_t wrong_shard_retries() const {
    return wrong_shard_retries_.load(std::memory_order_relaxed);
  }
  /// Naming ops retried on a shard's warm standby after the primary died.
  [[nodiscard]] std::uint64_t naming_failovers() const {
    return naming_failovers_.load(std::memory_order_relaxed);
  }

  // ---- Locks ----------------------------------------------------------------
  Result<txn::LockId> TryLock(const txn::LockKey& key,
                              const txn::LockRange& range, txn::LockMode mode);
  /// Poll TryLock with backoff until granted or `max_wait` elapses.
  Result<txn::LockId> LockBlocking(const txn::LockKey& key,
                                   const txn::LockRange& range,
                                   txn::LockMode mode,
                                   std::chrono::milliseconds max_wait =
                                       std::chrono::milliseconds(10000));
  Status Unlock(txn::LockId id);

  // ---- Transactions ---------------------------------------------------------
  /// Begin a distributed transaction whose journal is an object created in
  /// `journal_cap`'s container on `journal_server`.
  Result<std::unique_ptr<Transaction>> BeginTxn(
      std::uint32_t journal_server, const security::Capability& journal_cap,
      const TxnParticipants& participants);

  // ---- Introspection ---------------------------------------------------------
  [[nodiscard]] portals::Nid nid() const { return rpc_.nid(); }
  [[nodiscard]] const Deployment& deployment() const { return deployment_; }
  [[nodiscard]] rpc::ClientStats rpc_stats() const { return rpc_.stats(); }
  /// Per-opcode issue/error tallies of this client's RPC engine.
  [[nodiscard]] std::map<rpc::Opcode, rpc::ClientOpTally> rpc_op_tallies()
      const {
    return rpc_.OpTallies();
  }
  /// True while `server_nid`'s circuit breaker holds calls back.
  [[nodiscard]] bool BreakerOpen(portals::Nid server_nid) {
    return rpc_.BreakerOpen(server_nid);
  }
  [[nodiscard]] std::size_t storage_server_count() const {
    return deployment_.storage.size();
  }

 private:
  friend class PendingReplicatedWrite;

  Result<portals::Nid> StorageNid(std::uint32_t server) const;

  /// Client copy of the shard map (primary + standby nid per shard),
  /// initialized from the deployment and refreshed via kOpNameShardMap.
  struct ShardRoute {
    std::uint64_t epoch = 0;
    std::vector<portals::Nid> primaries;
    std::vector<portals::Nid> standbys;
  };
  [[nodiscard]] std::uint32_t ShardForPathRoute(std::string_view path) const;
  [[nodiscard]] std::uint32_t ShardForOidRoute(storage::ObjectId oid) const;
  [[nodiscard]] portals::Nid ShardPrimary(std::uint32_t shard) const;
  [[nodiscard]] portals::Nid ShardStandby(std::uint32_t shard) const;
  /// One naming-plane call with the full routing protocol: kWrongShard →
  /// refresh map + retry (bounded); transport failure → retry the shard's
  /// standby (first admitted op triggers its takeover).
  template <typename Rep, typename Req>
  Result<Rep> NamingCall(std::uint32_t shard, rpc::Opcode op, const Req& req);

  std::shared_ptr<portals::Nic> nic_;
  Deployment deployment_;
  rpc::RpcClient rpc_;

  mutable std::mutex route_mutex_;
  ShardRoute route_;  // guarded by route_mutex_
  std::atomic<std::uint64_t> wrong_shard_retries_{0};
  std::atomic<std::uint64_t> naming_failovers_{0};

  std::uint64_t hedge_after_us_ = 0;  // 0 = hedging off
  std::atomic<std::uint64_t> replicated_writes_{0};
  std::atomic<std::uint64_t> write_failovers_{0};
  std::atomic<std::uint64_t> degraded_writes_{0};
  std::atomic<std::uint64_t> stale_reports_{0};
  std::atomic<std::uint64_t> hedged_reads_{0};
  std::atomic<std::uint64_t> hedge_wins_{0};
  std::atomic<std::uint64_t> read_failovers_{0};
  /// Shared (not a plain member) so a losing attempt's completion callback
  /// can tally its released payload even if this client is torn down while
  /// the abandoned call is still in flight.
  std::shared_ptr<std::atomic<std::uint64_t>> hedge_loser_bytes_ =
      std::make_shared<std::atomic<std::uint64_t>>(0);
};

}  // namespace lwfs::core
