// Auto-refreshing capability holder.
//
// §5 contrasts LWFS with NASD on expiry: "NASD does not automatically
// refresh expired capabilities ... for operations like a checkpoint, with
// large gaps between file accesses, the cost of re-acquiring expired
// capabilities is still a problem."  CapHolder keeps a capability usable
// across arbitrary gaps: `Get()` returns the current capability, renewing
// it through the authorization service shortly before it expires.  A
// refresh re-runs policy, so revoked rights do not silently survive.
#pragma once

#include <functional>
#include <mutex>

#include "core/client.h"
#include "security/authn.h"
#include "security/types.h"

namespace lwfs::core {

class CapHolder {
 public:
  /// `refresh_margin_us`: renew when less than this much lifetime remains.
  CapHolder(Client* client, security::Credential cred,
            security::Capability cap, security::NowFn now,
            std::int64_t refresh_margin_us = 5LL * 1000 * 1000)
      : client_(client),
        cred_(std::move(cred)),
        cap_(std::move(cap)),
        now_(std::move(now)),
        margin_us_(refresh_margin_us) {}

  /// Current capability, refreshed if close to expiry.  Fails if the
  /// refresh is denied (policy changed) — callers see the denial instead
  /// of a stale capability.
  Result<security::Capability> Get() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (cap_.expires_us - now_() > margin_us_) return cap_;
    auto fresh = client_->RefreshCap(cred_, cap_);
    if (!fresh.ok()) return fresh.status();
    cap_ = *fresh;
    ++refreshes_;
    return cap_;
  }

  [[nodiscard]] std::uint64_t refreshes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return refreshes_;
  }

 private:
  Client* client_;
  security::Credential cred_;
  security::Capability cap_;
  security::NowFn now_;
  std::int64_t margin_us_;
  mutable std::mutex mutex_;
  std::uint64_t refreshes_ = 0;
};

}  // namespace lwfs::core
