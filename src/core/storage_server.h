// LWFS storage server.
//
// Binds an ObjectStore (the OBD) to the network and enforces — but never
// decides — access policy (Figure 7): every data operation carries a
// capability, checked against the local verified-capability cache and, on a
// miss, against the authorization service (Figure 4-b).  Bulk data moves
// under server control: writes pull from the client, reads push to it
// (Figure 6).
//
// The server is also a two-phase-commit participant: object creations
// inside a transaction are applied eagerly (fresh objects are invisible
// until named) with a compensating remove staged for abort.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/filters.h"
#include "core/io_scheduler.h"
#include "core/protocol.h"
#include "core/wire.h"
#include "rpc/rpc.h"
#include "rpc/service.h"
#include "security/authn.h"
#include "security/cap_cache.h"
#include "security/types.h"
#include "storage/object_store.h"
#include "txn/two_phase.h"

namespace lwfs::core {

/// How the storage server establishes that a capability is genuine.
enum class VerifyMode {
  /// The LWFS scheme (§3.1.2): ask the authorization service once, cache
  /// the verdict; the authz service records a back pointer and can revoke.
  kAuthzWithCache,
  /// LWFS scheme with the cache disabled: every request verifies remotely
  /// (the E6 ablation baseline).
  kAuthzEveryRequest,
  /// The NASD/T10 scheme the paper argues *against*: the storage server
  /// holds the authorization service's signing key and verifies locally.
  /// Fast and offline — but the authz service must now trust the storage
  /// server not to mint capabilities, and revocation by cache
  /// invalidation is impossible (tests demonstrate both consequences).
  kSharedKey,
};

struct StorageServerOptions {
  rpc::ServerOptions rpc;
  /// Options for the server's own outbound RPC client (capability verify
  /// calls to the authorization service): timeouts, retransmit budget,
  /// circuit breaker.
  rpc::ClientOptions client_options;
  /// Data-plane RPC workers.  >0 overrides rpc.worker_threads for the data
  /// portal.  0 (the default) derives the count: an rpc.worker_threads a
  /// caller raised above the rpc default of 1 is respected; otherwise the
  /// data portal gets 4 workers — with one worker the server cannot overlap
  /// the network pull of request N+1 with medium service of request N, and
  /// the scheduler never sees more than one queued extent, so the derived
  /// default is >1.
  int worker_threads = 0;
  /// Server pulls/pushes bulk data in chunks of this size, which bounds its
  /// per-request buffer footprint no matter how large the client's I/O is
  /// (the essence of server-directed flow control).
  std::size_t bulk_chunk_bytes = 1 << 20;
  VerifyMode verify_mode = VerifyMode::kAuthzWithCache;
  /// kSharedKey only: the authorization service's signing key.
  security::SipKey shared_key;
  /// Modeled storage-medium bandwidth in MB/s; 0 disables the model and
  /// the data path runs at memcpy speed.  The discrete-event simulator
  /// charges every byte a storage service time (the ~95 MB/s OSTs of §4);
  /// this applies the same charge to the live server — serialized per
  /// server, like a single disk arm — so overlap experiments (the fig9
  /// window sweep) measure pipelining against a realistic service
  /// component rather than the host's memory bus.
  double modeled_disk_mb_s = 0;
  /// Modeled per-access (seek/op) cost in microseconds, charged once per
  /// request extent when the scheduler is off and once per *merged run*
  /// when it is on — the physical payoff of coalescing.  0 disables it.
  double modeled_op_latency_us = 0;
  /// Modeled cost of an object create in microseconds, charged through the
  /// same serialized medium arm as data transfers.  Without it creates are
  /// free on virtual time and a Fig 10-style create-throughput measurement
  /// is meaningless.  EXPERIMENTS.md calibrates the paper's storage server
  /// at ~0.25 ms (≈4k creates/s per server).  0 disables it.
  double modeled_create_latency_us = 0;
  /// Route READ/WRITE extents through the IoScheduler (merge + elevator +
  /// per-run medium charge).  Off reproduces the old per-request FIFO
  /// data path, which the server_sched bench uses as its baseline.
  bool scheduler = true;
  /// Pull write payloads as ref-counted slices (PullBulkSlice/WriteSlice):
  /// when the client registered an owned slice the server never stages the
  /// bytes — the store's medium copy is the only copy on the write path.
  /// Off restores the legacy staged-chunk pull (the zerocopy bench's
  /// baseline).  Flow control is unchanged either way: chunks still
  /// reserve staging-pool space.
  bool zero_copy = true;
  /// Bound on total staging memory for in-flight bulk chunks; workers
  /// block for pool space before pulling from clients, so a burst of
  /// concurrent writes cannot overrun the I/O node (§3.2 flow control).
  /// Clamped up to 2 * bulk_chunk_bytes so a request can pipeline two
  /// chunks when the pool is otherwise idle.  Any number of concurrent
  /// requests make progress at any capacity: a worker that must wait for
  /// pool space first retires (and so releases) everything its request
  /// holds, so waiters never hold staging.
  std::size_t staging_bytes = 16 << 20;
  /// Time source for the medium model, schedulers, and both RPC planes
  /// (nullptr = real time).  Also fans into rpc/client_options when those
  /// carry no clock of their own.
  util::Clock* clock = nullptr;
  /// Replica-portal workers for chain-forwarded write hops (the hops a
  /// chain head or middle sends downstream).  Forwarding hops block their
  /// worker for a full downstream round trip, so middles need headroom.
  int replica_worker_threads = 4;
  /// Restart re-registration hook: called from Restart() — before any
  /// cache is cleared and before the server takes traffic again — with
  /// (oid, version) for every *replicated* object the persistent store
  /// still holds.  The deployment wires this to ReplicaMap::ReportHoldings
  /// so a repair scan racing the restart never sees a phantom-empty
  /// server.  Null = no registry attached.
  std::function<void(
      std::uint32_t server,
      const std::vector<std::pair<storage::ObjectId, std::uint64_t>>& held)>
      restart_report;
};

class StorageServer {
 public:
  /// `server_id` is this server's index in the deployment (used as the
  /// back-pointer identity at the authorization service).
  StorageServer(std::shared_ptr<portals::Nic> nic, std::uint32_t server_id,
                storage::ObjectStore* store, portals::Nid authz_nid,
                security::NowFn now, StorageServerOptions options = {});

  Status Start();
  void Stop();

  /// Simulated crash recovery: discard everything volatile — the verified-
  /// capability cache, staged (prepared-but-undecided) transaction state,
  /// and the RPC dedup/reply caches — keeping only the persistent
  /// ObjectStore, exactly what a process restart would keep.  In-doubt
  /// transactions resolve when the coordinator's recovery pass re-delivers
  /// decisions from its journal (presumed abort for undecided ones).  The
  /// fabric node stays registered; callers model the outage window with
  /// Fabric::SetNodeDown around this call.
  void Restart();

  [[nodiscard]] portals::Nid nid() const { return data_server_.nid(); }
  [[nodiscard]] std::uint32_t server_id() const { return server_id_; }
  [[nodiscard]] security::CapCache& cap_cache() { return cap_cache_; }
  [[nodiscard]] txn::StagedParticipant& participant() { return participant_; }
  [[nodiscard]] storage::ObjectStore* store() { return store_; }

  /// Remote verifications performed (cache misses that went to authz).
  [[nodiscard]] std::uint64_t remote_verifies() const {
    return remote_verifies_.load(std::memory_order_relaxed);
  }

  /// Scheduler counters (all zero when options.scheduler is off).
  [[nodiscard]] IoSchedulerStats sched_stats() const {
    return scheduler_ ? scheduler_->stats() : IoSchedulerStats{};
  }

  /// Zero the scheduler counters (including queue_depth_hwm, which is
  /// otherwise monotonic) so callers can scope stats to one workload phase.
  void ResetSchedStats() {
    if (scheduler_) scheduler_->ResetStats();
  }

  /// Times a data worker stalled waiting for staging memory.
  [[nodiscard]] std::uint64_t staging_waits() const {
    return staging_.waits();
  }

  /// Robustness counters of the data/control RPC endpoints and of the
  /// outbound authorization client.
  [[nodiscard]] rpc::ServerStats data_rpc_stats() const {
    return data_server_.stats();
  }
  [[nodiscard]] rpc::ServerStats control_rpc_stats() const {
    return control_server_.stats();
  }
  [[nodiscard]] rpc::ServerStats replica_rpc_stats() const {
    return replica_server_.stats();
  }
  [[nodiscard]] rpc::ClientStats authz_client_stats() const {
    return authz_client_.stats();
  }

  /// Per-op middleware metrics for all planes (data, control, replica).
  [[nodiscard]] std::vector<rpc::OpStats> op_stats() const {
    std::vector<rpc::OpStats> out = data_ops_.Stats();
    rpc::MergeOpStats(out, control_ops_.Stats());
    rpc::MergeOpStats(out, replica_ops_.Stats());
    return out;
  }
  [[nodiscard]] std::vector<rpc::Opcode> registered_data_opcodes() const {
    return data_server_.RegisteredOpcodes();
  }
  [[nodiscard]] std::vector<rpc::Opcode> registered_control_opcodes() const {
    return control_server_.RegisteredOpcodes();
  }

  /// Participant name as used in transaction BEGIN records.
  [[nodiscard]] std::string participant_name() const {
    return "storage:" + std::to_string(server_id_);
  }

 private:
  void RegisterDataHandlers();
  void RegisterControlHandlers();
  void RegisterReplicaHandlers();

  /// Chain-replicated write hop (shared by the data portal, where the
  /// chain head receives it from the client, and the replica portal, where
  /// middles/tails receive forwarded hops): pull the chunk once as a
  /// slice, CRC-check it, forward the same slice downstream concurrently
  /// with the local apply, and reply only after both — so the reply the
  /// client sees is the tail's commit ack.
  Result<wire::ReplicaWriteRep> HandleReplicaWrite(rpc::ServerContext& ctx,
                                                   wire::ReplicaWriteReq& req);
  /// Idempotent caller-chosen-id create (replica fan-out path): a repeat
  /// create of the same oid in the same container succeeds.
  Result<rpc::Void> HandleObjCreateAt(wire::ObjCreateAtReq& req);

  /// Apply one already-pulled chunk to the store through the scheduler
  /// when it is on, or directly (with the medium charge) when off.
  Status ApplyChunk(storage::ObjectId oid, std::uint64_t offset,
                    util::SharedSlice chunk);

  /// Authorize `cap` for `needed_ops`: structural checks, cache lookup,
  /// remote verify on miss, then op/container check.
  Status Authorize(const security::Capability& cap, std::uint32_t needed_ops,
                   storage::ContainerId target_cid);

  /// Check that `oid` exists and belongs to `cap`'s container; returns the
  /// attribute.
  Result<storage::ObjAttr> CheckObject(const security::Capability& cap,
                                       storage::ObjectId oid);

  /// Charge `bytes` (plus one op cost when `charge_op`) against the
  /// modeled medium (no-op when the model is off).  Serialized by
  /// `medium_mu_`: one disk arm per server.  Scheduler-off path only; with
  /// the scheduler on, the scheduler thread owns the medium and charges
  /// once per merged run.
  void ChargeMediumTime(std::uint64_t bytes, bool charge_op);
  /// Extend the single arm's busy horizon by `us` and sleep out the slot
  /// (outside the lock).  Creates charge modeled_create_latency_us here.
  void ChargeModeledUs(double us);

  /// The scheduler-on write/read data paths: stage chunks through the
  /// pool, submit extents, retire a bounded in-request pipeline.
  Result<std::uint64_t> ScheduledWrite(rpc::ServerContext& ctx,
                                       storage::ObjectId oid,
                                       std::uint64_t offset,
                                       std::uint64_t total);
  Result<std::uint64_t> ScheduledRead(rpc::ServerContext& ctx,
                                      storage::ObjectId oid,
                                      std::uint64_t offset,
                                      std::uint64_t want);

  /// Scheduler-on slice read: submits ONE extent for the whole request;
  /// the scheduler services the merged run containing it with a single
  /// store ReadSlice and hands back this request's sub-slice.  The store's
  /// medium copy is the only copy — the slice then rides the reply frame.
  Result<util::SharedSlice> ScheduledReadSlice(storage::ObjectId oid,
                                               std::uint64_t offset,
                                               std::uint64_t want);
  /// Legacy-staged slice synthesis (options.zero_copy off): chunked medium
  /// reads assembled into one buffer through a counted staging copy — the
  /// A/B baseline that shows what the slice path saves.
  Result<util::SharedSlice> StagedReadSlice(storage::ObjectId oid,
                                            std::uint64_t offset,
                                            std::uint64_t want);

  const std::uint32_t server_id_;
  util::Clock* const clock_;
  storage::ObjectStore* store_;
  const portals::Nid authz_nid_;
  security::NowFn now_;
  StorageServerOptions options_;
  security::CapCache cap_cache_;
  txn::StagedParticipant participant_;
  rpc::RpcServer data_server_;
  rpc::RpcServer control_server_;
  /// Chain-forwarding portal: downstream write hops land here instead of
  /// the data portal so two servers forwarding to each other can never
  /// exhaust each other's data workers (see rpc::kReplicaPortal).
  rpc::RpcServer replica_server_;
  rpc::RpcClient authz_client_;
  rpc::Service data_ops_;
  rpc::Service control_ops_;
  rpc::Service replica_ops_;
  std::atomic<std::uint64_t> remote_verifies_{0};
  std::mutex medium_mu_;
  /// Modeled disk arm: the horizon up to which the medium is committed.
  /// Guarded by medium_mu_; the sleep itself happens outside the lock.
  util::Clock::TimePoint medium_busy_until_{};
  StagingPool staging_;
  std::unique_ptr<IoScheduler> scheduler_;
};

}  // namespace lwfs::core
