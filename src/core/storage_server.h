// LWFS storage server.
//
// Binds an ObjectStore (the OBD) to the network and enforces — but never
// decides — access policy (Figure 7): every data operation carries a
// capability, checked against the local verified-capability cache and, on a
// miss, against the authorization service (Figure 4-b).  Bulk data moves
// under server control: writes pull from the client, reads push to it
// (Figure 6).
//
// The server is also a two-phase-commit participant: object creations
// inside a transaction are applied eagerly (fresh objects are invisible
// until named) with a compensating remove staged for abort.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>

#include "core/filters.h"
#include "core/protocol.h"
#include "rpc/rpc.h"
#include "security/authn.h"
#include "security/cap_cache.h"
#include "security/types.h"
#include "storage/object_store.h"
#include "txn/two_phase.h"

namespace lwfs::core {

/// How the storage server establishes that a capability is genuine.
enum class VerifyMode {
  /// The LWFS scheme (§3.1.2): ask the authorization service once, cache
  /// the verdict; the authz service records a back pointer and can revoke.
  kAuthzWithCache,
  /// LWFS scheme with the cache disabled: every request verifies remotely
  /// (the E6 ablation baseline).
  kAuthzEveryRequest,
  /// The NASD/T10 scheme the paper argues *against*: the storage server
  /// holds the authorization service's signing key and verifies locally.
  /// Fast and offline — but the authz service must now trust the storage
  /// server not to mint capabilities, and revocation by cache
  /// invalidation is impossible (tests demonstrate both consequences).
  kSharedKey,
};

struct StorageServerOptions {
  rpc::ServerOptions rpc;
  /// Server pulls/pushes bulk data in chunks of this size, which bounds its
  /// per-request buffer footprint no matter how large the client's I/O is
  /// (the essence of server-directed flow control).
  std::size_t bulk_chunk_bytes = 1 << 20;
  VerifyMode verify_mode = VerifyMode::kAuthzWithCache;
  /// kSharedKey only: the authorization service's signing key.
  security::SipKey shared_key;
  /// Modeled storage-medium bandwidth in MB/s; 0 disables the model and
  /// the data path runs at memcpy speed.  The discrete-event simulator
  /// charges every byte a storage service time (the ~95 MB/s OSTs of §4);
  /// this applies the same charge to the live server — serialized per
  /// server, like a single disk arm — so overlap experiments (the fig9
  /// window sweep) measure pipelining against a realistic service
  /// component rather than the host's memory bus.
  double modeled_disk_mb_s = 0;
};

class StorageServer {
 public:
  /// `server_id` is this server's index in the deployment (used as the
  /// back-pointer identity at the authorization service).
  StorageServer(std::shared_ptr<portals::Nic> nic, std::uint32_t server_id,
                storage::ObjectStore* store, portals::Nid authz_nid,
                security::NowFn now, StorageServerOptions options = {});

  Status Start();
  void Stop();

  [[nodiscard]] portals::Nid nid() const { return data_server_.nid(); }
  [[nodiscard]] std::uint32_t server_id() const { return server_id_; }
  [[nodiscard]] security::CapCache& cap_cache() { return cap_cache_; }
  [[nodiscard]] txn::StagedParticipant& participant() { return participant_; }
  [[nodiscard]] storage::ObjectStore* store() { return store_; }

  /// Remote verifications performed (cache misses that went to authz).
  [[nodiscard]] std::uint64_t remote_verifies() const {
    return remote_verifies_.load(std::memory_order_relaxed);
  }

  /// Participant name as used in transaction BEGIN records.
  [[nodiscard]] std::string participant_name() const {
    return "storage:" + std::to_string(server_id_);
  }

 private:
  void RegisterDataHandlers();
  void RegisterControlHandlers();

  /// Authorize `cap` for `needed_ops`: structural checks, cache lookup,
  /// remote verify on miss, then op/container check.
  Status Authorize(const security::Capability& cap, std::uint32_t needed_ops,
                   storage::ContainerId target_cid);

  /// Check that `oid` exists and belongs to `cap`'s container; returns the
  /// attribute.
  Result<storage::ObjAttr> CheckObject(const security::Capability& cap,
                                       storage::ObjectId oid);

  /// Charge `bytes` against the modeled medium bandwidth (no-op when the
  /// model is off).  Serialized by `medium_mu_`: one disk arm per server.
  void ChargeMediumTime(std::uint64_t bytes);

  const std::uint32_t server_id_;
  storage::ObjectStore* store_;
  const portals::Nid authz_nid_;
  security::NowFn now_;
  StorageServerOptions options_;
  security::CapCache cap_cache_;
  txn::StagedParticipant participant_;
  rpc::RpcServer data_server_;
  rpc::RpcServer control_server_;
  rpc::RpcClient authz_client_;
  std::atomic<std::uint64_t> remote_verifies_{0};
  std::mutex medium_mu_;
};

}  // namespace lwfs::core
