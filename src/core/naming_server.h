// RPC binding of the naming service.
//
// Naming is a client-extension service (Figure 3): applications that want a
// namespace talk to it, applications that do not (or bring their own) never
// pay for it.  It is also a two-phase-commit participant so that name
// creation can be made atomic with the object writes it describes
// (Figure 8, CREATENAME inside the transaction).
#pragma once

#include <memory>
#include <vector>

#include "core/protocol.h"
#include "naming/naming.h"
#include "naming/replica_map.h"
#include "rpc/rpc.h"
#include "rpc/service.h"

namespace lwfs::core {

class NamingServer {
 public:
  /// `replicas` (optional) attaches the replica-placement registry; when
  /// set, the replica place/lookup/report/audit ops are served too.  The
  /// registry is placement *metadata*, not namespace state: Restart()
  /// leaves it intact the same way authz keeps its grant tables.
  NamingServer(std::shared_ptr<portals::Nic> nic,
               naming::NamingService* service, rpc::ServerOptions options = {},
               naming::ReplicaMap* replicas = nullptr);

  Status Start() {
    LWFS_RETURN_IF_ERROR(ops_.init_status());
    return server_.Start();
  }
  void Stop() { server_.Stop(); }

  /// Simulated crash recovery: rebuild the namespace from its own snapshot
  /// (committed links only — staged links are volatile and vanish), drop
  /// prepared-but-undecided transaction state, and clear the RPC dedup
  /// cache.  Pair with Fabric::SetNodeDown to model the outage window.
  Status Restart() {
    Buffer snapshot = service_->Serialize();
    LWFS_RETURN_IF_ERROR(service_->Restore(ByteSpan(snapshot)));
    service_->ResetStagedState();
    server_.ResetReplyCache();
    return OkStatus();
  }

  [[nodiscard]] portals::Nid nid() const { return server_.nid(); }
  [[nodiscard]] naming::NamingService* service() { return service_; }
  [[nodiscard]] rpc::ServerStats rpc_stats() const { return server_.stats(); }
  [[nodiscard]] std::vector<rpc::OpStats> op_stats() const {
    return ops_.Stats();
  }
  [[nodiscard]] std::vector<rpc::Opcode> registered_opcodes() const {
    return server_.RegisteredOpcodes();
  }

  [[nodiscard]] static std::string participant_name() { return "naming"; }

  [[nodiscard]] naming::ReplicaMap* replicas() { return replicas_; }

 private:
  naming::NamingService* service_;
  naming::ReplicaMap* replicas_;
  rpc::RpcServer server_;
  rpc::Service ops_;
};

}  // namespace lwfs::core
