// RPC binding of the naming service.
//
// Naming is a client-extension service (Figure 3): applications that want a
// namespace talk to it, applications that do not (or bring their own) never
// pay for it.  It is also a two-phase-commit participant so that name
// creation can be made atomic with the object writes it describes
// (Figure 8, CREATENAME inside the transaction).
//
// Sharded deployments attach a NamingShardConfig: the server then validates
// leaf-path and replicated-oid routes against the shared ShardMap (rejecting
// mis-routed requests with kWrongShard so clients refresh their map copy),
// fences itself once deposed, and — in the standby role — takes over the
// shard on first contact after the primary dies: replay the committed-op
// log, promote itself in the map (epoch bump), and re-register storage
// holdings.  Nothing a client saw acknowledged is lost, because primaries
// append to the log before acking (see naming/op_log.h).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/protocol.h"
#include "naming/naming.h"
#include "naming/op_log.h"
#include "naming/replica_map.h"
#include "naming/shard_map.h"
#include "rpc/rpc.h"
#include "rpc/service.h"

namespace lwfs::core {

/// Shard identity and failover wiring for one naming server.  Default
/// (no shard map) reproduces the single-server behavior exactly.
struct NamingShardConfig {
  std::uint32_t shard_index = 0;
  /// The deployment's authoritative shard map; null = unsharded.
  std::shared_ptr<naming::ShardMap> shard_map;
  /// Warm-standby role: serve nothing while the primary is alive; the
  /// first request after the primary is unreachable triggers takeover.
  bool standby = false;
  /// The shard's committed-mutation log (replayed at takeover, then
  /// attached to the service/registry so the chain of custody continues).
  naming::OpLog* oplog = nullptr;
  /// Post-takeover holdings pull: invoked with the now-active registry so
  /// storage servers' actual holdings re-register (a repair scan racing
  /// the takeover must never see a phantom-empty server).
  std::function<void(naming::ReplicaMap*)> reregister_holdings;
  /// Modeled per-metadata-op service cost (benches; the shard-scaling
  /// sweep charges each shard's ops against its own busy-clock).
  std::function<void()> op_delay;
};

class NamingServer {
 public:
  /// `replicas` (optional) attaches the replica-placement registry; when
  /// set, the replica place/lookup/report/audit ops are served too.  The
  /// registry is placement *metadata*, not namespace state: Restart()
  /// leaves it intact the same way authz keeps its grant tables.
  NamingServer(std::shared_ptr<portals::Nic> nic,
               naming::NamingService* service, rpc::ServerOptions options = {},
               naming::ReplicaMap* replicas = nullptr,
               NamingShardConfig shard = {});

  Status Start() {
    LWFS_RETURN_IF_ERROR(ops_.init_status());
    return server_.Start();
  }
  void Stop() { server_.Stop(); }

  /// Simulated crash recovery: rebuild the namespace from its own snapshot
  /// (committed links only — staged links are volatile and vanish), drop
  /// prepared-but-undecided transaction state, and clear the RPC dedup
  /// cache.  Pair with Fabric::SetNodeDown to model the outage window.
  Status Restart() {
    Buffer snapshot = service_->Serialize();
    LWFS_RETURN_IF_ERROR(service_->Restore(ByteSpan(snapshot)));
    service_->ResetStagedState();
    server_.ResetReplyCache();
    return OkStatus();
  }

  [[nodiscard]] portals::Nid nid() const { return server_.nid(); }
  [[nodiscard]] naming::NamingService* service() { return service_; }
  [[nodiscard]] rpc::ServerStats rpc_stats() const { return server_.stats(); }
  [[nodiscard]] std::vector<rpc::OpStats> op_stats() const {
    return ops_.Stats();
  }
  [[nodiscard]] std::vector<rpc::Opcode> registered_opcodes() const {
    return server_.RegisteredOpcodes();
  }

  [[nodiscard]] static std::string participant_name() { return "naming"; }

  [[nodiscard]] naming::ReplicaMap* replicas() { return replicas_; }

  /// Takeover telemetry (standby role).
  [[nodiscard]] std::uint64_t takeovers() const;
  [[nodiscard]] std::uint64_t takeover_replayed() const;
  [[nodiscard]] std::uint64_t takeover_replay_errors() const;

 private:
  /// Route/role gate run by every handler.  Unsharded: no-op.  Sharded:
  /// activates a standby on first contact (log replay + promote), fences a
  /// deposed primary, and rejects leaf paths this shard does not own —
  /// all with kWrongShard so clients refresh their epoch-stamped map.
  /// `charge` applies the modeled per-op cost (metadata ops only).
  Status Admit(const std::string* leaf_path, bool charge = true);

  /// Admit a registry op for a replicated oid (shard ownership decodes
  /// from the oid itself).
  Status AdmitOid(std::uint64_t oid);

  Status EnsureActiveLocked();

  naming::NamingService* service_;
  naming::ReplicaMap* replicas_;
  NamingShardConfig shard_;
  rpc::RpcServer server_;
  rpc::Service ops_;

  mutable std::mutex takeover_mutex_;
  bool active_ = true;  // standbys start passive; set under takeover_mutex_
  std::uint64_t takeovers_ = 0;
  std::uint64_t takeover_replayed_ = 0;
  std::uint64_t takeover_replay_errors_ = 0;
};

}  // namespace lwfs::core
