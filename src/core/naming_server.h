// RPC binding of the naming service.
//
// Naming is a client-extension service (Figure 3): applications that want a
// namespace talk to it, applications that do not (or bring their own) never
// pay for it.  It is also a two-phase-commit participant so that name
// creation can be made atomic with the object writes it describes
// (Figure 8, CREATENAME inside the transaction).
#pragma once

#include <memory>

#include "core/protocol.h"
#include "naming/naming.h"
#include "rpc/rpc.h"

namespace lwfs::core {

class NamingServer {
 public:
  NamingServer(std::shared_ptr<portals::Nic> nic,
               naming::NamingService* service, rpc::ServerOptions options = {});

  Status Start() { return server_.Start(); }
  void Stop() { server_.Stop(); }

  [[nodiscard]] portals::Nid nid() const { return server_.nid(); }
  [[nodiscard]] naming::NamingService* service() { return service_; }

  [[nodiscard]] static std::string participant_name() { return "naming"; }

 private:
  naming::NamingService* service_;
  rpc::RpcServer server_;
};

}  // namespace lwfs::core
