#include "core/authz_server.h"

#include "util/logging.h"

namespace lwfs::core {

namespace {
Result<security::Credential> ReadCred(Decoder& req) {
  return security::Credential::Decode(req);
}
}  // namespace

AuthzServer::AuthzServer(std::shared_ptr<portals::Nic> nic,
                         security::AuthzService* service,
                         rpc::ServerOptions options)
    : service_(service),
      server_(nic, options),
      control_client_(std::move(nic)) {
  service_->SetRevocationSink(this);

  server_.RegisterHandler(
      kOpCreateContainer,
      [this](rpc::ServerContext&, Decoder& req) -> Result<Buffer> {
        auto cred = ReadCred(req);
        if (!cred.ok()) return cred.status();
        auto cid = service_->CreateContainer(*cred);
        if (!cid.ok()) return cid.status();
        Encoder reply;
        reply.PutU64(cid->value);
        return std::move(reply).Take();
      });

  server_.RegisterHandler(
      kOpGetCap, [this](rpc::ServerContext&, Decoder& req) -> Result<Buffer> {
        auto cred = ReadCred(req);
        auto cid = req.GetU64();
        auto ops = req.GetU32();
        if (!cred.ok() || !cid.ok() || !ops.ok()) {
          return InvalidArgument("malformed getcap request");
        }
        auto cap =
            service_->GetCap(*cred, storage::ContainerId{*cid}, *ops);
        if (!cap.ok()) return cap.status();
        Encoder reply;
        cap->Encode(reply);
        return std::move(reply).Take();
      });

  server_.RegisterHandler(
      kOpVerifyCap,
      [this](rpc::ServerContext&, Decoder& req) -> Result<Buffer> {
        auto server_id = req.GetU32();
        auto cap = security::Capability::Decode(req);
        if (!server_id.ok() || !cap.ok()) {
          return InvalidArgument("malformed verify request");
        }
        LWFS_RETURN_IF_ERROR(service_->VerifyForServer(*server_id, *cap));
        return Buffer{};
      });

  server_.RegisterHandler(
      kOpSetGrant,
      [this](rpc::ServerContext&, Decoder& req) -> Result<Buffer> {
        auto cred = ReadCred(req);
        auto cid = req.GetU64();
        auto grantee = req.GetU64();
        auto ops = req.GetU32();
        if (!cred.ok() || !cid.ok() || !grantee.ok() || !ops.ok()) {
          return InvalidArgument("malformed setgrant request");
        }
        LWFS_RETURN_IF_ERROR(service_->SetGrant(
            *cred, storage::ContainerId{*cid}, *grantee, *ops));
        return Buffer{};
      });

  server_.RegisterHandler(
      kOpRevokeCapability,
      [this](rpc::ServerContext&, Decoder& req) -> Result<Buffer> {
        auto cred = ReadCred(req);
        auto cap_id = req.GetU64();
        if (!cred.ok() || !cap_id.ok()) {
          return InvalidArgument("malformed revoke request");
        }
        LWFS_RETURN_IF_ERROR(service_->RevokeCap(*cred, *cap_id));
        return Buffer{};
      });

  server_.RegisterHandler(
      kOpRefreshCap,
      [this](rpc::ServerContext&, Decoder& req) -> Result<Buffer> {
        auto cred = ReadCred(req);
        auto cap = security::Capability::Decode(req);
        if (!cred.ok() || !cap.ok()) {
          return InvalidArgument("malformed refresh request");
        }
        auto fresh = service_->RefreshCap(*cred, *cap);
        if (!fresh.ok()) return fresh.status();
        Encoder reply;
        fresh->Encode(reply);
        return std::move(reply).Take();
      });
}

void AuthzServer::SetStorageNids(std::vector<portals::Nid> nids) {
  std::lock_guard<std::mutex> lock(nids_mutex_);
  storage_nids_ = std::move(nids);
}

void AuthzServer::InvalidateCaps(security::ServerId server,
                                 const std::vector<std::uint64_t>& cap_ids) {
  portals::Nid target;
  {
    std::lock_guard<std::mutex> lock(nids_mutex_);
    if (server >= storage_nids_.size()) {
      LWFS_WARN << "invalidation for unknown storage server " << server;
      return;
    }
    target = storage_nids_[server];
  }
  Encoder req;
  req.PutU32(static_cast<std::uint32_t>(cap_ids.size()));
  for (std::uint64_t id : cap_ids) req.PutU64(id);
  rpc::CallOptions options;
  options.request_portal = rpc::kControlPortal;
  auto reply = control_client_.Call(target, kOpInvalidateCaps,
                                    ByteSpan(req.buffer()), options);
  if (!reply.ok()) {
    LWFS_ERROR << "cap invalidation to server " << server
               << " failed: " << reply.status().ToString();
  }
}

}  // namespace lwfs::core
