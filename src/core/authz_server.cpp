#include "core/authz_server.h"

#include <utility>

#include "core/wire.h"
#include "util/logging.h"

namespace lwfs::core {

AuthzServer::AuthzServer(std::shared_ptr<portals::Nic> nic,
                         security::AuthzService* service,
                         rpc::ServerOptions options)
    : service_(service),
      server_(nic, options),
      control_client_(std::move(nic)),
      ops_(&server_, "authz") {
  service_->SetRevocationSink(this);

  ops_.On<wire::CreateContainerReq, wire::CreateContainerRep>(
      wire::kCreateContainerOp,
      [this](rpc::ServerContext&, wire::CreateContainerReq& req)
          -> Result<wire::CreateContainerRep> {
        auto cid = service_->CreateContainer(req.cred);
        if (!cid.ok()) return cid.status();
        return wire::CreateContainerRep{cid->value};
      });

  ops_.On<wire::GetCapReq, wire::CapabilityRep>(
      wire::kGetCapOp,
      [this](rpc::ServerContext&,
             wire::GetCapReq& req) -> Result<wire::CapabilityRep> {
        auto cap = service_->GetCap(req.cred, storage::ContainerId{req.cid},
                                    req.ops);
        if (!cap.ok()) return cap.status();
        return wire::CapabilityRep{*cap};
      });

  ops_.On<wire::VerifyCapReq, rpc::Void>(
      wire::kVerifyCapOp,
      [this](rpc::ServerContext&,
             wire::VerifyCapReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(
            service_->VerifyForServer(req.server_id, req.cap));
        return rpc::Void{};
      });

  ops_.On<wire::SetGrantReq, rpc::Void>(
      wire::kSetGrantOp,
      [this](rpc::ServerContext&, wire::SetGrantReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(service_->SetGrant(
            req.cred, storage::ContainerId{req.cid}, req.grantee, req.ops));
        return rpc::Void{};
      });

  ops_.On<wire::RevokeCapReq, rpc::Void>(
      wire::kRevokeCapabilityOp,
      [this](rpc::ServerContext&,
             wire::RevokeCapReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(service_->RevokeCap(req.cred, req.cap_id));
        return rpc::Void{};
      });

  ops_.On<wire::RefreshCapReq, wire::CapabilityRep>(
      wire::kRefreshCapOp,
      [this](rpc::ServerContext&,
             wire::RefreshCapReq& req) -> Result<wire::CapabilityRep> {
        auto fresh = service_->RefreshCap(req.cred, req.cap);
        if (!fresh.ok()) return fresh.status();
        return wire::CapabilityRep{*fresh};
      });
}

void AuthzServer::SetStorageNids(std::vector<portals::Nid> nids) {
  std::lock_guard<std::mutex> lock(nids_mutex_);
  storage_nids_ = std::move(nids);
}

void AuthzServer::InvalidateCaps(security::ServerId server,
                                 const std::vector<std::uint64_t>& cap_ids) {
  portals::Nid target;
  {
    std::lock_guard<std::mutex> lock(nids_mutex_);
    if (server >= storage_nids_.size()) {
      LWFS_WARN << "invalidation for unknown storage server " << server;
      return;
    }
    target = storage_nids_[server];
  }
  rpc::CallOptions options;
  options.request_portal = rpc::kControlPortal;
  auto reply = rpc::CallTyped<rpc::Void>(control_client_, target,
                                         kOpInvalidateCaps,
                                         wire::InvalidateCapsReq{cap_ids},
                                         options);
  if (!reply.ok()) {
    LWFS_ERROR << "cap invalidation to server " << server
               << " failed: " << reply.status().ToString();
  }
}

}  // namespace lwfs::core
