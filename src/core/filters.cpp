#include "core/filters.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

namespace lwfs::core {

void FilterSpec::Encode(Encoder& enc) const {
  enc.PutU32(static_cast<std::uint32_t>(kind));
  enc.PutU64(stride);
  enc.PutDouble(threshold);
  enc.PutDouble(lo);
  enc.PutDouble(hi);
  enc.PutU32(bins);
}

Result<FilterSpec> FilterSpec::Decode(Decoder& dec) {
  FilterSpec spec;
  auto kind = dec.GetU32();
  auto stride = dec.GetU64();
  auto threshold = dec.GetDouble();
  auto lo = dec.GetDouble();
  auto hi = dec.GetDouble();
  auto bins = dec.GetU32();
  if (!kind.ok() || !stride.ok() || !threshold.ok() || !lo.ok() || !hi.ok() ||
      !bins.ok()) {
    return InvalidArgument("malformed filter spec");
  }
  if (*kind < 1 || *kind > 4) return InvalidArgument("unknown filter kind");
  spec.kind = static_cast<FilterKind>(*kind);
  spec.stride = *stride;
  spec.threshold = *threshold;
  spec.lo = *lo;
  spec.hi = *hi;
  spec.bins = *bins;
  return spec;
}

namespace {

double LoadF64(const std::uint8_t* p) {
  double v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void AppendF64(Buffer& out, double v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(v));
}

void AppendU64(Buffer& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

}  // namespace

Result<Buffer> ApplyFilter(const FilterSpec& spec, ByteSpan data) {
  if (data.size() % sizeof(double) != 0) {
    return InvalidArgument("filter input is not a float64 array");
  }
  const std::uint64_t n = data.size() / sizeof(double);
  Buffer out;

  switch (spec.kind) {
    case FilterKind::kMinMaxSumCount: {
      double mn = std::numeric_limits<double>::infinity();
      double mx = -std::numeric_limits<double>::infinity();
      double sum = 0;
      for (std::uint64_t i = 0; i < n; ++i) {
        const double v = LoadF64(data.data() + i * 8);
        mn = std::min(mn, v);
        mx = std::max(mx, v);
        sum += v;
      }
      if (n == 0) mn = mx = 0;
      AppendF64(out, mn);
      AppendF64(out, mx);
      AppendF64(out, sum);
      AppendF64(out, static_cast<double>(n));
      return out;
    }

    case FilterKind::kSubsample: {
      if (spec.stride == 0) return InvalidArgument("zero subsample stride");
      out.reserve(static_cast<std::size_t>((n / spec.stride + 1) * 8));
      for (std::uint64_t i = 0; i < n; i += spec.stride) {
        AppendF64(out, LoadF64(data.data() + i * 8));
      }
      return out;
    }

    case FilterKind::kSelectGreater: {
      for (std::uint64_t i = 0; i < n; ++i) {
        if (LoadF64(data.data() + i * 8) > spec.threshold) AppendU64(out, i);
      }
      return out;
    }

    case FilterKind::kHistogram: {
      if (spec.bins == 0 || !(spec.hi > spec.lo)) {
        return InvalidArgument("bad histogram parameters");
      }
      std::vector<double> counts(spec.bins, 0.0);
      const double width = (spec.hi - spec.lo) / spec.bins;
      for (std::uint64_t i = 0; i < n; ++i) {
        const double v = LoadF64(data.data() + i * 8);
        if (v < spec.lo || v >= spec.hi) continue;
        auto bin = static_cast<std::size_t>((v - spec.lo) / width);
        if (bin >= spec.bins) bin = spec.bins - 1;  // fp edge
        counts[bin] += 1.0;
      }
      for (double c : counts) AppendF64(out, c);
      return out;
    }
  }
  return InvalidArgument("unknown filter kind");
}

}  // namespace lwfs::core
