// Typed wire messages for every LWFS-core op.
//
// Each request/reply is a plain struct with its own codec (Encode/Decode),
// satisfying rpc::WireMessage; the op-spec framework (rpc/service.h) and the
// typed client stubs (rpc::CallTyped) are the only users of these codecs, so
// framing for an op lives in exactly one place.  Field order is the wire
// format — append-only, never reorder.
//
// The OpDef constants beside the messages declare each op's opcode, metric
// name, required security::OpMask bits, and bulk direction; servers register
// handlers against these and the middleware enforces the rest.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/filters.h"
#include "core/protocol.h"
#include "naming/naming.h"
#include "rpc/service.h"
#include "security/types.h"
#include "storage/ids.h"
#include "storage/object_store.h"
#include "util/bytes.h"
#include "util/status.h"

namespace lwfs::core::wire {

using rpc::Void;

// ---------------------------------------------------------------------------
// Authentication service
// ---------------------------------------------------------------------------

struct LoginReq {
  std::string principal;
  std::string secret;

  void Encode(Encoder& enc) const {
    enc.PutString(principal);
    enc.PutString(secret);
  }
  static Result<LoginReq> Decode(Decoder& dec) {
    auto principal = dec.GetString();
    auto secret = dec.GetString();
    if (!principal.ok() || !secret.ok()) {
      return InvalidArgument("malformed login fields");
    }
    return LoginReq{std::move(*principal), std::move(*secret)};
  }
};

struct CredentialRep {
  security::Credential cred;

  void Encode(Encoder& enc) const { cred.Encode(enc); }
  static Result<CredentialRep> Decode(Decoder& dec) {
    auto cred = security::Credential::Decode(dec);
    if (!cred.ok()) return cred.status();
    return CredentialRep{*cred};
  }
};

struct RevokeCredReq {
  std::uint64_t cred_id = 0;

  void Encode(Encoder& enc) const { enc.PutU64(cred_id); }
  static Result<RevokeCredReq> Decode(Decoder& dec) {
    auto cred_id = dec.GetU64();
    if (!cred_id.ok()) return cred_id.status();
    return RevokeCredReq{*cred_id};
  }
};

inline constexpr rpc::OpDef kLoginOp{kOpLogin, "login"};
inline constexpr rpc::OpDef kRevokeCredOp{kOpRevokeCred, "revoke_cred"};

// ---------------------------------------------------------------------------
// Authorization service
// ---------------------------------------------------------------------------

struct CreateContainerReq {
  security::Credential cred;

  void Encode(Encoder& enc) const { cred.Encode(enc); }
  static Result<CreateContainerReq> Decode(Decoder& dec) {
    auto cred = security::Credential::Decode(dec);
    if (!cred.ok()) return cred.status();
    return CreateContainerReq{*cred};
  }
};

struct CreateContainerRep {
  std::uint64_t cid = 0;

  void Encode(Encoder& enc) const { enc.PutU64(cid); }
  static Result<CreateContainerRep> Decode(Decoder& dec) {
    auto cid = dec.GetU64();
    if (!cid.ok()) return cid.status();
    return CreateContainerRep{*cid};
  }
};

struct GetCapReq {
  security::Credential cred;
  std::uint64_t cid = 0;
  std::uint32_t ops = 0;

  void Encode(Encoder& enc) const {
    cred.Encode(enc);
    enc.PutU64(cid);
    enc.PutU32(ops);
  }
  static Result<GetCapReq> Decode(Decoder& dec) {
    auto cred = security::Credential::Decode(dec);
    auto cid = dec.GetU64();
    auto ops = dec.GetU32();
    if (!cred.ok() || !cid.ok() || !ops.ok()) {
      return InvalidArgument("malformed getcap fields");
    }
    return GetCapReq{*cred, *cid, *ops};
  }
};

struct CapabilityRep {
  security::Capability cap;

  void Encode(Encoder& enc) const { cap.Encode(enc); }
  static Result<CapabilityRep> Decode(Decoder& dec) {
    auto cap = security::Capability::Decode(dec);
    if (!cap.ok()) return cap.status();
    return CapabilityRep{*cap};
  }
};

struct VerifyCapReq {
  std::uint32_t server_id = 0;
  security::Capability cap;

  void Encode(Encoder& enc) const {
    enc.PutU32(server_id);
    cap.Encode(enc);
  }
  static Result<VerifyCapReq> Decode(Decoder& dec) {
    auto server_id = dec.GetU32();
    auto cap = security::Capability::Decode(dec);
    if (!server_id.ok() || !cap.ok()) {
      return InvalidArgument("malformed verify fields");
    }
    return VerifyCapReq{*server_id, *cap};
  }
};

struct SetGrantReq {
  security::Credential cred;
  std::uint64_t cid = 0;
  std::uint64_t grantee = 0;
  std::uint32_t ops = 0;

  void Encode(Encoder& enc) const {
    cred.Encode(enc);
    enc.PutU64(cid);
    enc.PutU64(grantee);
    enc.PutU32(ops);
  }
  static Result<SetGrantReq> Decode(Decoder& dec) {
    auto cred = security::Credential::Decode(dec);
    auto cid = dec.GetU64();
    auto grantee = dec.GetU64();
    auto ops = dec.GetU32();
    if (!cred.ok() || !cid.ok() || !grantee.ok() || !ops.ok()) {
      return InvalidArgument("malformed setgrant fields");
    }
    return SetGrantReq{*cred, *cid, *grantee, *ops};
  }
};

struct RevokeCapReq {
  security::Credential cred;
  std::uint64_t cap_id = 0;

  void Encode(Encoder& enc) const {
    cred.Encode(enc);
    enc.PutU64(cap_id);
  }
  static Result<RevokeCapReq> Decode(Decoder& dec) {
    auto cred = security::Credential::Decode(dec);
    auto cap_id = dec.GetU64();
    if (!cred.ok() || !cap_id.ok()) {
      return InvalidArgument("malformed revoke fields");
    }
    return RevokeCapReq{*cred, *cap_id};
  }
};

struct RefreshCapReq {
  security::Credential cred;
  security::Capability cap;

  void Encode(Encoder& enc) const {
    cred.Encode(enc);
    cap.Encode(enc);
  }
  static Result<RefreshCapReq> Decode(Decoder& dec) {
    auto cred = security::Credential::Decode(dec);
    auto cap = security::Capability::Decode(dec);
    if (!cred.ok() || !cap.ok()) {
      return InvalidArgument("malformed refresh fields");
    }
    return RefreshCapReq{*cred, *cap};
  }
};

inline constexpr rpc::OpDef kCreateContainerOp{kOpCreateContainer,
                                               "create_container"};
inline constexpr rpc::OpDef kGetCapOp{kOpGetCap, "get_cap"};
inline constexpr rpc::OpDef kVerifyCapOp{kOpVerifyCap, "verify_cap"};
inline constexpr rpc::OpDef kSetGrantOp{kOpSetGrant, "set_grant"};
inline constexpr rpc::OpDef kRevokeCapabilityOp{kOpRevokeCapability,
                                                "revoke_capability"};
inline constexpr rpc::OpDef kRefreshCapOp{kOpRefreshCap, "refresh_cap"};

// ---------------------------------------------------------------------------
// Storage service (data plane)
// ---------------------------------------------------------------------------

struct ObjCreateReq {
  security::Capability cap;
  std::uint64_t txid = 0;

  void Encode(Encoder& enc) const {
    cap.Encode(enc);
    enc.PutU64(txid);
  }
  static Result<ObjCreateReq> Decode(Decoder& dec) {
    auto cap = security::Capability::Decode(dec);
    auto txid = dec.GetU64();
    if (!cap.ok() || !txid.ok()) {
      return InvalidArgument("malformed create fields");
    }
    return ObjCreateReq{*cap, *txid};
  }
};

struct ObjCreateRep {
  std::uint64_t oid = 0;

  void Encode(Encoder& enc) const { enc.PutU64(oid); }
  static Result<ObjCreateRep> Decode(Decoder& dec) {
    auto oid = dec.GetU64();
    if (!oid.ok()) return oid.status();
    return ObjCreateRep{*oid};
  }
};

struct ObjWriteReq {
  security::Capability cap;
  std::uint64_t oid = 0;
  std::uint64_t offset = 0;

  void Encode(Encoder& enc) const {
    cap.Encode(enc);
    enc.PutU64(oid);
    enc.PutU64(offset);
  }
  static Result<ObjWriteReq> Decode(Decoder& dec) {
    auto cap = security::Capability::Decode(dec);
    auto oid = dec.GetU64();
    auto offset = dec.GetU64();
    if (!cap.ok() || !oid.ok() || !offset.ok()) {
      return InvalidArgument("malformed write fields");
    }
    return ObjWriteReq{*cap, *oid, *offset};
  }
};

/// Bytes actually moved through the bulk path (writes and reads).
struct IoMovedRep {
  std::uint64_t moved = 0;

  void Encode(Encoder& enc) const { enc.PutU64(moved); }
  static Result<IoMovedRep> Decode(Decoder& dec) {
    auto moved = dec.GetU64();
    if (!moved.ok()) return moved.status();
    return IoMovedRep{*moved};
  }
};

struct ObjReadReq {
  security::Capability cap;
  std::uint64_t oid = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;

  void Encode(Encoder& enc) const {
    cap.Encode(enc);
    enc.PutU64(oid);
    enc.PutU64(offset);
    enc.PutU64(length);
  }
  static Result<ObjReadReq> Decode(Decoder& dec) {
    auto cap = security::Capability::Decode(dec);
    auto oid = dec.GetU64();
    auto offset = dec.GetU64();
    auto length = dec.GetU64();
    if (!cap.ok() || !oid.ok() || !offset.ok() || !length.ok()) {
      return InvalidArgument("malformed read fields");
    }
    return ObjReadReq{*cap, *oid, *offset, *length};
  }
};

struct ObjRemoveReq {
  security::Capability cap;
  std::uint64_t oid = 0;
  std::uint64_t txid = 0;

  void Encode(Encoder& enc) const {
    cap.Encode(enc);
    enc.PutU64(oid);
    enc.PutU64(txid);
  }
  static Result<ObjRemoveReq> Decode(Decoder& dec) {
    auto cap = security::Capability::Decode(dec);
    auto oid = dec.GetU64();
    auto txid = dec.GetU64();
    if (!cap.ok() || !oid.ok() || !txid.ok()) {
      return InvalidArgument("malformed remove fields");
    }
    return ObjRemoveReq{*cap, *oid, *txid};
  }
};

struct ObjGetAttrReq {
  security::Capability cap;
  std::uint64_t oid = 0;

  void Encode(Encoder& enc) const {
    cap.Encode(enc);
    enc.PutU64(oid);
  }
  static Result<ObjGetAttrReq> Decode(Decoder& dec) {
    auto cap = security::Capability::Decode(dec);
    auto oid = dec.GetU64();
    if (!cap.ok() || !oid.ok()) {
      return InvalidArgument("malformed getattr fields");
    }
    return ObjGetAttrReq{*cap, *oid};
  }
};

struct ObjAttrRep {
  storage::ObjAttr attr;

  void Encode(Encoder& enc) const { EncodeObjAttr(enc, attr); }
  static Result<ObjAttrRep> Decode(Decoder& dec) {
    auto attr = DecodeObjAttr(dec);
    if (!attr.ok()) return attr.status();
    return ObjAttrRep{*attr};
  }
};

struct ObjListReq {
  security::Capability cap;

  void Encode(Encoder& enc) const { cap.Encode(enc); }
  static Result<ObjListReq> Decode(Decoder& dec) {
    auto cap = security::Capability::Decode(dec);
    if (!cap.ok()) return cap.status();
    return ObjListReq{*cap};
  }
};

struct ObjListRep {
  std::vector<std::uint64_t> oids;

  void Encode(Encoder& enc) const {
    enc.PutU32(static_cast<std::uint32_t>(oids.size()));
    for (std::uint64_t oid : oids) enc.PutU64(oid);
  }
  static Result<ObjListRep> Decode(Decoder& dec) {
    auto count = dec.GetU32();
    if (!count.ok()) return count.status();
    if (*count > dec.remaining() / 8) {
      return InvalidArgument("object count exceeds payload");
    }
    ObjListRep rep;
    rep.oids.reserve(*count);
    for (std::uint32_t i = 0; i < *count; ++i) {
      auto oid = dec.GetU64();
      if (!oid.ok()) return oid.status();
      rep.oids.push_back(*oid);
    }
    return rep;
  }
};

struct ObjFilterReq {
  security::Capability cap;
  std::uint64_t oid = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  FilterSpec spec;

  void Encode(Encoder& enc) const {
    cap.Encode(enc);
    enc.PutU64(oid);
    enc.PutU64(offset);
    enc.PutU64(length);
    spec.Encode(enc);
  }
  static Result<ObjFilterReq> Decode(Decoder& dec) {
    auto cap = security::Capability::Decode(dec);
    auto oid = dec.GetU64();
    auto offset = dec.GetU64();
    auto length = dec.GetU64();
    auto spec = FilterSpec::Decode(dec);
    if (!cap.ok() || !oid.ok() || !offset.ok() || !length.ok() || !spec.ok()) {
      return InvalidArgument("malformed filter fields");
    }
    return ObjFilterReq{*cap, *oid, *offset, *length, *spec};
  }
};

struct ObjFilterRep {
  std::uint64_t result_bytes = 0;
  std::uint64_t input_bytes = 0;

  void Encode(Encoder& enc) const {
    enc.PutU64(result_bytes);
    enc.PutU64(input_bytes);
  }
  static Result<ObjFilterRep> Decode(Decoder& dec) {
    auto result_bytes = dec.GetU64();
    auto input_bytes = dec.GetU64();
    if (!result_bytes.ok() || !input_bytes.ok()) {
      return InvalidArgument("malformed filter outcome");
    }
    return ObjFilterRep{*result_bytes, *input_bytes};
  }
};

struct ObjTruncateReq {
  security::Capability cap;
  std::uint64_t oid = 0;
  std::uint64_t size = 0;

  void Encode(Encoder& enc) const {
    cap.Encode(enc);
    enc.PutU64(oid);
    enc.PutU64(size);
  }
  static Result<ObjTruncateReq> Decode(Decoder& dec) {
    auto cap = security::Capability::Decode(dec);
    auto oid = dec.GetU64();
    auto size = dec.GetU64();
    if (!cap.ok() || !oid.ok() || !size.ok()) {
      return InvalidArgument("malformed truncate fields");
    }
    return ObjTruncateReq{*cap, *oid, *size};
  }
};

inline constexpr rpc::OpDef kObjCreateOp{kOpObjCreate, "obj_create",
                                         security::kOpCreate};
inline constexpr rpc::OpDef kObjWriteOp{kOpObjWrite, "obj_write",
                                        security::kOpWrite,
                                        rpc::BulkDir::kPull};
inline constexpr rpc::OpDef kObjReadOp{kOpObjRead, "obj_read",
                                       security::kOpRead, rpc::BulkDir::kPush};
inline constexpr rpc::OpDef kObjRemoveOp{kOpObjRemove, "obj_remove",
                                         security::kOpRemove};
inline constexpr rpc::OpDef kObjGetAttrOp{kOpObjGetAttr, "obj_getattr",
                                          security::kOpRead};
inline constexpr rpc::OpDef kObjListOp{kOpObjList, "obj_list",
                                       security::kOpRead};
inline constexpr rpc::OpDef kObjFilterOp{kOpObjFilter, "obj_filter",
                                         security::kOpRead,
                                         rpc::BulkDir::kPush};
inline constexpr rpc::OpDef kObjTruncateOp{kOpObjTruncate, "obj_truncate",
                                           security::kOpWrite};
/// Slice read shares ObjReadReq/IoMovedRep with the legacy read; the
/// payload travels as store-owned slices in the reply frame itself
/// (BulkDir::kReply), so the client registers no bulk-in region.
inline constexpr rpc::OpDef kObjReadSliceOp{kOpObjReadSlice, "obj_read_slice",
                                            security::kOpRead,
                                            rpc::BulkDir::kReply};

// ---------------------------------------------------------------------------
// Replication (storage data plane)
// ---------------------------------------------------------------------------

/// Create an object under a registry-assigned id (replica fan-out, repair,
/// and remote journal replay).  Idempotent: re-creating an existing object
/// in the same container succeeds without touching it.
struct ObjCreateAtReq {
  security::Capability cap;
  std::uint64_t oid = 0;
  std::uint64_t txid = 0;

  void Encode(Encoder& enc) const {
    cap.Encode(enc);
    enc.PutU64(oid);
    enc.PutU64(txid);
  }
  static Result<ObjCreateAtReq> Decode(Decoder& dec) {
    auto cap = security::Capability::Decode(dec);
    auto oid = dec.GetU64();
    auto txid = dec.GetU64();
    if (!cap.ok() || !oid.ok() || !txid.ok()) {
      return InvalidArgument("malformed create-at fields");
    }
    return ObjCreateAtReq{*cap, *oid, *txid};
  }
};

/// One downstream member of a replica chain: the deployment index (for
/// registry reports) plus the nid to forward to (servers don't hold a
/// deployment map, so the client resolves nids up front).
struct ReplicaHop {
  std::uint32_t index = 0;
  std::uint64_t nid = 0;
  auto operator<=>(const ReplicaHop&) const = default;
};

/// One chain-replicated write hop.  The receiving server pulls the chunk,
/// applies it locally, forwards the same bytes to chain.front(), and replies
/// only once every downstream hop acked — the reply the client sees is the
/// tail's commit ack.  `chain` holds the hops *after* the receiver.
struct ReplicaWriteReq {
  security::Capability cap;
  std::uint64_t oid = 0;
  std::uint64_t offset = 0;
  std::vector<ReplicaHop> chain;

  void Encode(Encoder& enc) const {
    cap.Encode(enc);
    enc.PutU64(oid);
    enc.PutU64(offset);
    enc.PutU32(static_cast<std::uint32_t>(chain.size()));
    for (const ReplicaHop& hop : chain) {
      enc.PutU32(hop.index);
      enc.PutU64(hop.nid);
    }
  }
  static Result<ReplicaWriteReq> Decode(Decoder& dec) {
    auto cap = security::Capability::Decode(dec);
    auto oid = dec.GetU64();
    auto offset = dec.GetU64();
    auto count = dec.GetU32();
    if (!cap.ok() || !oid.ok() || !offset.ok() || !count.ok()) {
      return InvalidArgument("malformed replica-write fields");
    }
    if (*count > dec.remaining() / 12) {
      return InvalidArgument("replica chain exceeds payload");
    }
    ReplicaWriteReq req{*cap, *oid, *offset, {}};
    req.chain.reserve(*count);
    for (std::uint32_t i = 0; i < *count; ++i) {
      auto index = dec.GetU32();
      auto nid = dec.GetU64();
      if (!index.ok() || !nid.ok()) {
        return InvalidArgument("malformed replica hop");
      }
      req.chain.push_back(ReplicaHop{*index, *nid});
    }
    return req;
  }
};

/// Which chain members applied the write (receiver + everything downstream
/// that acked), and the receiver's post-write object version.  Members of
/// the chain missing from `applied` must be reported stale so repair can
/// catch them up.
struct ReplicaWriteRep {
  std::vector<std::uint32_t> applied;
  std::uint64_t version = 0;

  void Encode(Encoder& enc) const {
    enc.PutU32(static_cast<std::uint32_t>(applied.size()));
    for (std::uint32_t index : applied) enc.PutU32(index);
    enc.PutU64(version);
  }
  static Result<ReplicaWriteRep> Decode(Decoder& dec) {
    auto count = dec.GetU32();
    if (!count.ok()) return count.status();
    if (*count > dec.remaining() / 4) {
      return InvalidArgument("applied count exceeds payload");
    }
    ReplicaWriteRep rep;
    rep.applied.reserve(*count);
    for (std::uint32_t i = 0; i < *count; ++i) {
      auto index = dec.GetU32();
      if (!index.ok()) return index.status();
      rep.applied.push_back(*index);
    }
    auto version = dec.GetU64();
    if (!version.ok()) return version.status();
    rep.version = *version;
    return rep;
  }
};

inline constexpr rpc::OpDef kObjCreateAtOp{kOpObjCreateAt, "obj_create_at",
                                           security::kOpCreate};
inline constexpr rpc::OpDef kReplicaWriteOp{kOpReplicaWrite, "replica_write",
                                            security::kOpWrite,
                                            rpc::BulkDir::kPull};

// ---------------------------------------------------------------------------
// Two-phase-commit participant ops (storage and naming services)
// ---------------------------------------------------------------------------

struct TxnReq {
  std::uint64_t txid = 0;

  void Encode(Encoder& enc) const { enc.PutU64(txid); }
  static Result<TxnReq> Decode(Decoder& dec) {
    auto txid = dec.GetU64();
    if (!txid.ok()) return txid.status();
    return TxnReq{*txid};
  }
};

struct TxnVoteRep {
  bool vote = false;

  void Encode(Encoder& enc) const { enc.PutBool(vote); }
  static Result<TxnVoteRep> Decode(Decoder& dec) {
    auto vote = dec.GetBool();
    if (!vote.ok()) return vote.status();
    return TxnVoteRep{*vote};
  }
};

inline constexpr rpc::OpDef kTxnPrepareOp{kOpTxnPrepare, "txn_prepare"};
inline constexpr rpc::OpDef kTxnCommitOp{kOpTxnCommit, "txn_commit"};
inline constexpr rpc::OpDef kTxnAbortOp{kOpTxnAbort, "txn_abort"};

// ---------------------------------------------------------------------------
// Storage service (control plane)
// ---------------------------------------------------------------------------

struct InvalidateCapsReq {
  std::vector<std::uint64_t> cap_ids;

  void Encode(Encoder& enc) const {
    enc.PutU32(static_cast<std::uint32_t>(cap_ids.size()));
    for (std::uint64_t id : cap_ids) enc.PutU64(id);
  }
  static Result<InvalidateCapsReq> Decode(Decoder& dec) {
    auto count = dec.GetU32();
    if (!count.ok()) return count.status();
    if (*count > dec.remaining() / 8) {
      return InvalidArgument("cap count exceeds payload");
    }
    InvalidateCapsReq req;
    req.cap_ids.reserve(*count);
    for (std::uint32_t i = 0; i < *count; ++i) {
      auto id = dec.GetU64();
      if (!id.ok()) return id.status();
      req.cap_ids.push_back(*id);
    }
    return req;
  }
};

inline constexpr rpc::OpDef kInvalidateCapsOp{kOpInvalidateCaps,
                                              "invalidate_caps"};

// ---------------------------------------------------------------------------
// Repair plane (control portal)
// ---------------------------------------------------------------------------
//
// Like kOpInvalidateCaps these are service-to-service ops on the control
// portal: the chunk replicator is a trusted internal service, so no
// capability travels with them.

/// Which of these objects do you hold, and at what version?
struct RepairProbeReq {
  std::vector<std::uint64_t> oids;

  void Encode(Encoder& enc) const {
    enc.PutU32(static_cast<std::uint32_t>(oids.size()));
    for (std::uint64_t oid : oids) enc.PutU64(oid);
  }
  static Result<RepairProbeReq> Decode(Decoder& dec) {
    auto count = dec.GetU32();
    if (!count.ok()) return count.status();
    if (*count > dec.remaining() / 8) {
      return InvalidArgument("probe count exceeds payload");
    }
    RepairProbeReq req;
    req.oids.reserve(*count);
    for (std::uint32_t i = 0; i < *count; ++i) {
      auto oid = dec.GetU64();
      if (!oid.ok()) return oid.status();
      req.oids.push_back(*oid);
    }
    return req;
  }
};

struct ReplicaProbe {
  std::uint64_t oid = 0;
  bool held = false;
  std::uint64_t version = 0;
  std::uint64_t size = 0;
  auto operator<=>(const ReplicaProbe&) const = default;
};

struct RepairProbeRep {
  std::vector<ReplicaProbe> probes;

  void Encode(Encoder& enc) const {
    enc.PutU32(static_cast<std::uint32_t>(probes.size()));
    for (const ReplicaProbe& p : probes) {
      enc.PutU64(p.oid);
      enc.PutBool(p.held);
      enc.PutU64(p.version);
      enc.PutU64(p.size);
    }
  }
  static Result<RepairProbeRep> Decode(Decoder& dec) {
    auto count = dec.GetU32();
    if (!count.ok()) return count.status();
    if (*count > dec.remaining() / 25) {
      return InvalidArgument("probe count exceeds payload");
    }
    RepairProbeRep rep;
    rep.probes.reserve(*count);
    for (std::uint32_t i = 0; i < *count; ++i) {
      auto oid = dec.GetU64();
      auto held = dec.GetBool();
      auto version = dec.GetU64();
      auto size = dec.GetU64();
      if (!oid.ok() || !held.ok() || !version.ok() || !size.ok()) {
        return InvalidArgument("malformed replica probe");
      }
      rep.probes.push_back(ReplicaProbe{*oid, *held, *version, *size});
    }
    return rep;
  }
};

/// Read survivor bytes for repair (bulk push to the replicator).
struct RepairReadReq {
  std::uint64_t oid = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;

  void Encode(Encoder& enc) const {
    enc.PutU64(oid);
    enc.PutU64(offset);
    enc.PutU64(length);
  }
  static Result<RepairReadReq> Decode(Decoder& dec) {
    auto oid = dec.GetU64();
    auto offset = dec.GetU64();
    auto length = dec.GetU64();
    if (!oid.ok() || !offset.ok() || !length.ok()) {
      return InvalidArgument("malformed repair-read fields");
    }
    return RepairReadReq{*oid, *offset, *length};
  }
};

struct RepairReadRep {
  std::uint64_t moved = 0;
  std::uint64_t version = 0;
  std::uint64_t size = 0;

  void Encode(Encoder& enc) const {
    enc.PutU64(moved);
    enc.PutU64(version);
    enc.PutU64(size);
  }
  static Result<RepairReadRep> Decode(Decoder& dec) {
    auto moved = dec.GetU64();
    auto version = dec.GetU64();
    auto size = dec.GetU64();
    if (!moved.ok() || !version.ok() || !size.ok()) {
      return InvalidArgument("malformed repair-read outcome");
    }
    return RepairReadRep{*moved, *version, *size};
  }
};

/// Write repaired bytes onto a stale member (bulk pull from the
/// replicator); creates the object in `cid` if the member lost it.
/// `target_version` > 0 (the final chunk of a repair) sets the member's
/// object version to the source's — versions count applied writes, and a
/// repair applies fewer, larger writes than the client did, so without the
/// catch-up a freshly repaired member would probe as stale forever.
struct RepairWriteReq {
  std::uint64_t oid = 0;
  std::uint64_t cid = 0;
  std::uint64_t offset = 0;
  std::uint64_t target_version = 0;

  void Encode(Encoder& enc) const {
    enc.PutU64(oid);
    enc.PutU64(cid);
    enc.PutU64(offset);
    enc.PutU64(target_version);
  }
  static Result<RepairWriteReq> Decode(Decoder& dec) {
    auto oid = dec.GetU64();
    auto cid = dec.GetU64();
    auto offset = dec.GetU64();
    auto target_version = dec.GetU64();
    if (!oid.ok() || !cid.ok() || !offset.ok() || !target_version.ok()) {
      return InvalidArgument("malformed repair-write fields");
    }
    return RepairWriteReq{*oid, *cid, *offset, *target_version};
  }
};

struct RepairWriteRep {
  std::uint64_t version = 0;

  void Encode(Encoder& enc) const { enc.PutU64(version); }
  static Result<RepairWriteRep> Decode(Decoder& dec) {
    auto version = dec.GetU64();
    if (!version.ok()) return version.status();
    return RepairWriteRep{*version};
  }
};

inline constexpr rpc::OpDef kRepairProbeOp{kOpRepairProbe, "repair_probe"};
inline constexpr rpc::OpDef kRepairReadOp{kOpRepairRead, "repair_read", 0,
                                          rpc::BulkDir::kPush};
inline constexpr rpc::OpDef kRepairWriteOp{kOpRepairWrite, "repair_write", 0,
                                           rpc::BulkDir::kPull};

// ---------------------------------------------------------------------------
// Naming service
// ---------------------------------------------------------------------------

struct MkdirReq {
  std::string path;
  bool recursive = false;

  void Encode(Encoder& enc) const {
    enc.PutString(path);
    enc.PutBool(recursive);
  }
  static Result<MkdirReq> Decode(Decoder& dec) {
    auto path = dec.GetString();
    auto recursive = dec.GetBool();
    if (!path.ok() || !recursive.ok()) {
      return InvalidArgument("malformed mkdir fields");
    }
    return MkdirReq{std::move(*path), *recursive};
  }
};

struct LinkReq {
  std::string path;
  storage::ObjectRef ref;

  void Encode(Encoder& enc) const {
    enc.PutString(path);
    EncodeObjectRef(enc, ref);
  }
  static Result<LinkReq> Decode(Decoder& dec) {
    auto path = dec.GetString();
    auto ref = DecodeObjectRef(dec);
    if (!path.ok() || !ref.ok()) {
      return InvalidArgument("malformed link fields");
    }
    return LinkReq{std::move(*path), *ref};
  }
};

struct StageLinkReq {
  std::uint64_t txid = 0;
  std::string path;
  storage::ObjectRef ref;

  void Encode(Encoder& enc) const {
    enc.PutU64(txid);
    enc.PutString(path);
    EncodeObjectRef(enc, ref);
  }
  static Result<StageLinkReq> Decode(Decoder& dec) {
    auto txid = dec.GetU64();
    auto path = dec.GetString();
    auto ref = DecodeObjectRef(dec);
    if (!txid.ok() || !path.ok() || !ref.ok()) {
      return InvalidArgument("malformed staged-link fields");
    }
    return StageLinkReq{*txid, std::move(*path), *ref};
  }
};

struct StageUnlinkReq {
  std::uint64_t txid = 0;
  std::string path;

  void Encode(Encoder& enc) const {
    enc.PutU64(txid);
    enc.PutString(path);
  }
  static Result<StageUnlinkReq> Decode(Decoder& dec) {
    auto txid = dec.GetU64();
    auto path = dec.GetString();
    if (!txid.ok() || !path.ok()) {
      return InvalidArgument("malformed staged-unlink fields");
    }
    return StageUnlinkReq{*txid, std::move(*path)};
  }
};

/// Lookup, unlink, rmdir, and list requests are all just a path.
struct PathReq {
  std::string path;

  void Encode(Encoder& enc) const { enc.PutString(path); }
  static Result<PathReq> Decode(Decoder& dec) {
    auto path = dec.GetString();
    if (!path.ok()) return path.status();
    return PathReq{std::move(*path)};
  }
};

struct ObjectRefRep {
  storage::ObjectRef ref;

  void Encode(Encoder& enc) const { EncodeObjectRef(enc, ref); }
  static Result<ObjectRefRep> Decode(Decoder& dec) {
    auto ref = DecodeObjectRef(dec);
    if (!ref.ok()) return ref.status();
    return ObjectRefRep{*ref};
  }
};

struct RenameReq {
  std::string from;
  std::string to;

  void Encode(Encoder& enc) const {
    enc.PutString(from);
    enc.PutString(to);
  }
  static Result<RenameReq> Decode(Decoder& dec) {
    auto from = dec.GetString();
    auto to = dec.GetString();
    if (!from.ok() || !to.ok()) {
      return InvalidArgument("malformed rename fields");
    }
    return RenameReq{std::move(*from), std::move(*to)};
  }
};

struct ListNamesRep {
  std::vector<naming::DirEntry> entries;

  void Encode(Encoder& enc) const {
    enc.PutU32(static_cast<std::uint32_t>(entries.size()));
    for (const naming::DirEntry& e : entries) {
      enc.PutString(e.name);
      enc.PutBool(e.is_directory);
      enc.PutBool(e.ref.has_value());
      if (e.ref) EncodeObjectRef(enc, *e.ref);
    }
  }
  static Result<ListNamesRep> Decode(Decoder& dec) {
    auto count = dec.GetU32();
    if (!count.ok()) return count.status();
    if (*count > dec.remaining()) {
      return InvalidArgument("entry count exceeds payload");
    }
    ListNamesRep rep;
    rep.entries.reserve(*count);
    for (std::uint32_t i = 0; i < *count; ++i) {
      naming::DirEntry entry;
      auto name = dec.GetString();
      auto is_dir = dec.GetBool();
      auto has_ref = dec.GetBool();
      if (!name.ok() || !is_dir.ok() || !has_ref.ok()) {
        return InvalidArgument("malformed directory entry");
      }
      entry.name = std::move(*name);
      entry.is_directory = *is_dir;
      if (*has_ref) {
        auto ref = DecodeObjectRef(dec);
        if (!ref.ok()) return ref.status();
        entry.ref = *ref;
      }
      rep.entries.push_back(std::move(entry));
    }
    return rep;
  }
};

/// Epoch-stamped shard-map snapshot: which nid is the active primary (and
/// which the standby) for each metadata shard.  Any live shard serves it;
/// clients refresh after a kWrongShard rejection and compare epochs.
struct ShardMapRep {
  std::uint64_t epoch = 0;
  std::vector<std::uint32_t> primaries;  // nid per shard
  std::vector<std::uint32_t> standbys;   // kInvalidNid when absent

  void Encode(Encoder& enc) const {
    enc.PutU64(epoch);
    enc.PutU32(static_cast<std::uint32_t>(primaries.size()));
    for (std::size_t i = 0; i < primaries.size(); ++i) {
      enc.PutU32(primaries[i]);
      enc.PutU32(i < standbys.size() ? standbys[i] : 0);
    }
  }
  static Result<ShardMapRep> Decode(Decoder& dec) {
    auto epoch = dec.GetU64();
    auto count = dec.GetU32();
    if (!epoch.ok() || !count.ok()) {
      return InvalidArgument("malformed shard-map fields");
    }
    if (*count > dec.remaining() / 8) {
      return InvalidArgument("shard count exceeds payload");
    }
    ShardMapRep rep;
    rep.epoch = *epoch;
    rep.primaries.reserve(*count);
    rep.standbys.reserve(*count);
    for (std::uint32_t i = 0; i < *count; ++i) {
      auto primary = dec.GetU32();
      auto standby = dec.GetU32();
      if (!primary.ok() || !standby.ok()) {
        return InvalidArgument("malformed shard entry");
      }
      rep.primaries.push_back(*primary);
      rep.standbys.push_back(*standby);
    }
    return rep;
  }
};

inline constexpr rpc::OpDef kNameMkdirOp{kOpNameMkdir, "name_mkdir"};
inline constexpr rpc::OpDef kNameLinkOp{kOpNameLink, "name_link"};
inline constexpr rpc::OpDef kNameStageLinkOp{kOpNameStageLink,
                                             "name_stage_link"};
inline constexpr rpc::OpDef kNameLookupOp{kOpNameLookup, "name_lookup"};
inline constexpr rpc::OpDef kNameUnlinkOp{kOpNameUnlink, "name_unlink"};
inline constexpr rpc::OpDef kNameRmdirOp{kOpNameRmdir, "name_rmdir"};
inline constexpr rpc::OpDef kNameRenameOp{kOpNameRename, "name_rename"};
inline constexpr rpc::OpDef kNameListOp{kOpNameList, "name_list"};
inline constexpr rpc::OpDef kNameStageUnlinkOp{kOpNameStageUnlink,
                                               "name_stage_unlink"};
inline constexpr rpc::OpDef kNameShardMapOp{kOpNameShardMap,
                                            "name_shard_map"};

// ---------------------------------------------------------------------------
// Replica registry (naming service)
// ---------------------------------------------------------------------------

/// Allocate a replicated object id and a placement chain for it.
/// `preferred` seeds the chain head (clients spread load the same way they
/// pick `server = rank % nservers` today); `factor` = 0 uses the
/// deployment's default replication factor.
struct ReplicaPlaceReq {
  std::uint64_t cid = 0;
  std::uint32_t preferred = 0;
  std::uint32_t factor = 0;

  void Encode(Encoder& enc) const {
    enc.PutU64(cid);
    enc.PutU32(preferred);
    enc.PutU32(factor);
  }
  static Result<ReplicaPlaceReq> Decode(Decoder& dec) {
    auto cid = dec.GetU64();
    auto preferred = dec.GetU32();
    auto factor = dec.GetU32();
    if (!cid.ok() || !preferred.ok() || !factor.ok()) {
      return InvalidArgument("malformed place fields");
    }
    return ReplicaPlaceReq{*cid, *preferred, *factor};
  }
};

/// A replica chain: ordered storage-server indices, head first.  Reply to
/// both place and lookup.
struct ReplicaChainRep {
  std::uint64_t oid = 0;
  std::uint64_t cid = 0;
  std::vector<std::uint32_t> servers;

  void Encode(Encoder& enc) const {
    enc.PutU64(oid);
    enc.PutU64(cid);
    enc.PutU32(static_cast<std::uint32_t>(servers.size()));
    for (std::uint32_t s : servers) enc.PutU32(s);
  }
  static Result<ReplicaChainRep> Decode(Decoder& dec) {
    auto oid = dec.GetU64();
    auto cid = dec.GetU64();
    auto count = dec.GetU32();
    if (!oid.ok() || !cid.ok() || !count.ok()) {
      return InvalidArgument("malformed chain fields");
    }
    if (*count > dec.remaining() / 4) {
      return InvalidArgument("chain length exceeds payload");
    }
    ReplicaChainRep rep{*oid, *cid, {}};
    rep.servers.reserve(*count);
    for (std::uint32_t i = 0; i < *count; ++i) {
      auto s = dec.GetU32();
      if (!s.ok()) return s.status();
      rep.servers.push_back(*s);
    }
    return rep;
  }
};

struct ReplicaLookupReq {
  std::uint64_t oid = 0;

  void Encode(Encoder& enc) const { enc.PutU64(oid); }
  static Result<ReplicaLookupReq> Decode(Decoder& dec) {
    auto oid = dec.GetU64();
    if (!oid.ok()) return oid.status();
    return ReplicaLookupReq{*oid};
  }
};

/// Degraded-write report: `stale` members missed a write that committed at
/// `version` on the surviving members.  The registry records them for the
/// background replicator.
struct ReplicaReportReq {
  std::uint64_t oid = 0;
  std::uint64_t version = 0;
  std::vector<std::uint32_t> stale;

  void Encode(Encoder& enc) const {
    enc.PutU64(oid);
    enc.PutU64(version);
    enc.PutU32(static_cast<std::uint32_t>(stale.size()));
    for (std::uint32_t s : stale) enc.PutU32(s);
  }
  static Result<ReplicaReportReq> Decode(Decoder& dec) {
    auto oid = dec.GetU64();
    auto version = dec.GetU64();
    auto count = dec.GetU32();
    if (!oid.ok() || !version.ok() || !count.ok()) {
      return InvalidArgument("malformed report fields");
    }
    if (*count > dec.remaining() / 4) {
      return InvalidArgument("stale count exceeds payload");
    }
    ReplicaReportReq req{*oid, *version, {}};
    req.stale.reserve(*count);
    for (std::uint32_t i = 0; i < *count; ++i) {
      auto s = dec.GetU32();
      if (!s.ok()) return s.status();
      req.stale.push_back(*s);
    }
    return req;
  }
};

/// Replica-count audit over every registry entry.
struct ReplicaAuditRep {
  std::uint64_t objects = 0;
  std::uint64_t fully_replicated = 0;
  std::uint64_t under_replicated = 0;
  std::uint64_t stale_members = 0;

  void Encode(Encoder& enc) const {
    enc.PutU64(objects);
    enc.PutU64(fully_replicated);
    enc.PutU64(under_replicated);
    enc.PutU64(stale_members);
  }
  static Result<ReplicaAuditRep> Decode(Decoder& dec) {
    auto objects = dec.GetU64();
    auto full = dec.GetU64();
    auto under = dec.GetU64();
    auto stale = dec.GetU64();
    if (!objects.ok() || !full.ok() || !under.ok() || !stale.ok()) {
      return InvalidArgument("malformed audit counters");
    }
    return ReplicaAuditRep{*objects, *full, *under, *stale};
  }
};

inline constexpr rpc::OpDef kReplicaPlaceOp{kOpReplicaPlace, "replica_place"};
inline constexpr rpc::OpDef kReplicaLookupOp{kOpReplicaLookup,
                                             "replica_lookup"};
inline constexpr rpc::OpDef kReplicaReportOp{kOpReplicaReport,
                                             "replica_report"};
inline constexpr rpc::OpDef kReplicaAuditOp{kOpReplicaAudit, "replica_audit"};

// ---------------------------------------------------------------------------
// Lock service
// ---------------------------------------------------------------------------

struct LockTryReq {
  std::uint64_t container = 0;
  std::uint64_t resource = 0;
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  bool exclusive = false;

  void Encode(Encoder& enc) const {
    enc.PutU64(container);
    enc.PutU64(resource);
    enc.PutU64(start);
    enc.PutU64(end);
    enc.PutBool(exclusive);
  }
  static Result<LockTryReq> Decode(Decoder& dec) {
    auto container = dec.GetU64();
    auto resource = dec.GetU64();
    auto start = dec.GetU64();
    auto end = dec.GetU64();
    auto exclusive = dec.GetBool();
    if (!container.ok() || !resource.ok() || !start.ok() || !end.ok() ||
        !exclusive.ok()) {
      return InvalidArgument("malformed lock fields");
    }
    return LockTryReq{*container, *resource, *start, *end, *exclusive};
  }
};

struct LockIdRep {
  std::uint64_t id = 0;

  void Encode(Encoder& enc) const { enc.PutU64(id); }
  static Result<LockIdRep> Decode(Decoder& dec) {
    auto id = dec.GetU64();
    if (!id.ok()) return id.status();
    return LockIdRep{*id};
  }
};

struct LockReleaseReq {
  std::uint64_t id = 0;

  void Encode(Encoder& enc) const { enc.PutU64(id); }
  static Result<LockReleaseReq> Decode(Decoder& dec) {
    auto id = dec.GetU64();
    if (!id.ok()) return id.status();
    return LockReleaseReq{*id};
  }
};

inline constexpr rpc::OpDef kLockTryOp{kOpLockTry, "lock_try"};
inline constexpr rpc::OpDef kLockReleaseOp{kOpLockRelease, "lock_release"};

// ---------------------------------------------------------------------------
// Codec registry for table-driven tests
// ---------------------------------------------------------------------------

/// One CodecCase per core request/reply message, built from representative
/// sample values; tests iterate these to prove round-trips and truncation
/// rejection for every codec, so a new message only needs a new entry here.
std::vector<rpc::CodecCase> CoreWireCases();

}  // namespace lwfs::core::wire
