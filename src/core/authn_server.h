// RPC binding of the authentication service (Figure 3).
#pragma once

#include <memory>

#include "core/protocol.h"
#include "rpc/rpc.h"
#include "security/authn.h"

namespace lwfs::core {

class AuthnServer {
 public:
  AuthnServer(std::shared_ptr<portals::Nic> nic,
              security::AuthnService* service,
              rpc::ServerOptions options = {});

  Status Start() { return server_.Start(); }
  void Stop() { server_.Stop(); }

  [[nodiscard]] portals::Nid nid() const { return server_.nid(); }
  [[nodiscard]] security::AuthnService* service() { return service_; }
  [[nodiscard]] rpc::ServerStats rpc_stats() const { return server_.stats(); }

 private:
  security::AuthnService* service_;
  rpc::RpcServer server_;
};

}  // namespace lwfs::core
