// RPC binding of the authentication service (Figure 3).
#pragma once

#include <memory>
#include <vector>

#include "core/protocol.h"
#include "rpc/rpc.h"
#include "rpc/service.h"
#include "security/authn.h"

namespace lwfs::core {

class AuthnServer {
 public:
  AuthnServer(std::shared_ptr<portals::Nic> nic,
              security::AuthnService* service,
              rpc::ServerOptions options = {});

  Status Start() {
    LWFS_RETURN_IF_ERROR(ops_.init_status());
    return server_.Start();
  }
  void Stop() { server_.Stop(); }

  [[nodiscard]] portals::Nid nid() const { return server_.nid(); }
  [[nodiscard]] security::AuthnService* service() { return service_; }
  [[nodiscard]] rpc::ServerStats rpc_stats() const { return server_.stats(); }
  [[nodiscard]] std::vector<rpc::OpStats> op_stats() const {
    return ops_.Stats();
  }
  [[nodiscard]] std::vector<rpc::Opcode> registered_opcodes() const {
    return server_.RegisteredOpcodes();
  }

 private:
  security::AuthnService* service_;
  rpc::RpcServer server_;
  rpc::Service ops_;
};

}  // namespace lwfs::core
