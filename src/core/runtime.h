// ServiceRuntime: an in-process LWFS deployment.
//
// Stands up the full Figure 3 picture — authentication server,
// authorization server, m storage servers, plus the optional naming and
// lock services — each on its own NIC over one portals fabric, and hands
// out clients.  Examples, tests, and the real-stack benches all build on
// this.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/authn_server.h"
#include "core/authz_server.h"
#include "core/chunk_replicator.h"
#include "core/client.h"
#include "core/lock_server.h"
#include "core/naming_server.h"
#include "core/storage_server.h"
#include "naming/naming.h"
#include "portals/portals.h"
#include "security/authn.h"
#include "security/authz.h"
#include "storage/object_store.h"
#include "txn/lock_table.h"

namespace lwfs::core {

struct RuntimeOptions {
  /// Number of storage servers (the paper's "m").
  int storage_servers = 4;

  /// kNull keeps per-object attributes but discards data bytes — the
  /// backend for million-object scale harnesses (bench/petascale).
  enum class Backend { kMemory, kBlock, kFile, kNull };
  Backend backend = Backend::kMemory;
  /// kFile: per-server directories `<file_store_root>/s<i>` are created.
  std::string file_store_root;
  /// kBlock: device geometry per server.
  std::uint64_t device_blocks = 1 << 16;
  std::uint32_t block_size = 4096;

  StorageServerOptions storage;
  rpc::ServerOptions control_services;  // authn/authz/naming/locks

  /// RPC client options (timeouts, retransmit budget, circuit breaker) for
  /// every client this runtime hands out via MakeClient() and for the
  /// storage servers' outbound authorization clients.  Chaos tests shrink
  /// the timeout so injected losses resolve quickly.
  rpc::ClientOptions client_options;

  security::AuthnOptions authn;
  security::AuthzOptions authz;

  /// If set, the namespace is restored from this file at Start (when it
  /// exists) and can be saved back with SaveNamingSnapshot().  Pairs with
  /// Backend::kFile for deployments that survive process restarts.
  std::string naming_snapshot_file;

  /// Replication layer knobs (DESIGN.md §15).  The replica registry and
  /// chunk replicator are always built; a deployment that never places a
  /// replicated object pays nothing for them.
  struct ReplicationOptions {
    /// Default chain length for replica placements that pass factor = 0.
    std::uint32_t replication_factor = 1;
    /// Servers per rack for placement spread; <= 1 disables rack awareness.
    std::uint32_t rack_size = 2;
    /// Hedged-read latency threshold for clients from MakeClient();
    /// 0 disables hedging.
    std::uint64_t hedge_after_us = 0;
    /// Repair bandwidth ceiling (MB/s) for the chunk replicator; <= 0
    /// disables pacing.
    double repair_mb_s = 64.0;
    /// Bytes per repair read/write pair.
    std::size_t repair_chunk_bytes = 1 << 20;
  };
  ReplicationOptions replication;

  /// Sharded metadata plane (DESIGN.md §16): number of naming shards.  The
  /// namespace partitions by leaf-path hash over a deterministic
  /// consistent-hash ring; each shard hosts its own replica-registry slice
  /// (striped oid space).  1 = the classic single naming server, with
  /// identical behavior and oid sequences.
  std::uint32_t naming_shards = 1;
  /// Give every shard a warm standby that tails the shard's committed-op
  /// log and takes over (log replay + map promote) when the primary dies.
  bool naming_standby = false;
  /// Modeled per-metadata-op service cost, charged by the owning shard
  /// (bench/fig10 --shards drives each shard's busy-clock through this so
  /// the shard-scaling sweep is host-independent).
  std::function<void(std::uint32_t shard)> naming_op_delay;

  /// Time source for the whole deployment (nullptr = real time).  Fans into
  /// the fabric (injected delivery delays), every RPC server and client,
  /// the storage servers' schedulers/medium model, and — unless a caller
  /// installed its own NowFn — the authn/authz timestamp sources.  Point it
  /// at a util::VirtualClock and the entire stack runs on virtual time.
  util::Clock* clock = nullptr;
};

class ServiceRuntime {
 public:
  /// Build and start everything.  The runtime owns all services.
  static Result<std::unique_ptr<ServiceRuntime>> Start(RuntimeOptions options);

  ~ServiceRuntime();
  ServiceRuntime(const ServiceRuntime&) = delete;
  ServiceRuntime& operator=(const ServiceRuntime&) = delete;

  /// Register a principal with the (mock) external authenticator.
  void AddUser(const std::string& name, const std::string& secret,
               security::Uid uid);

  /// A fresh client endpoint (own NIC) pointed at this deployment.
  std::unique_ptr<Client> MakeClient();

  /// Persist the namespace to options.naming_snapshot_file.
  Status SaveNamingSnapshot();

  [[nodiscard]] const Deployment& deployment() const { return deployment_; }
  [[nodiscard]] portals::Fabric& fabric() { return fabric_; }
  /// The deployment's time source (RealClockInstance() when none was set).
  [[nodiscard]] util::Clock* clock() const { return clock_; }
  [[nodiscard]] security::AuthnService& authn() { return *authn_service_; }
  [[nodiscard]] security::AuthzService& authz() { return *authz_service_; }
  [[nodiscard]] naming::NamingService& naming() { return *naming_services_[0]; }
  [[nodiscard]] txn::LockTable& locks() { return lock_table_; }
  [[nodiscard]] int storage_count() const {
    return static_cast<int>(storage_servers_.size());
  }
  [[nodiscard]] StorageServer& storage_server(int i) {
    return *storage_servers_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] NamingServer& naming_server() { return *naming_servers_[0]; }
  [[nodiscard]] NamingServer& naming_server(std::uint32_t shard) {
    return *naming_servers_[shard];
  }
  /// Shard `shard`'s warm standby; nullptr when naming_standby is off.
  [[nodiscard]] NamingServer* naming_standby_server(std::uint32_t shard) {
    return shard < standby_servers_.size() ? standby_servers_[shard].get()
                                           : nullptr;
  }
  [[nodiscard]] std::uint32_t naming_shard_count() const {
    return static_cast<std::uint32_t>(naming_servers_.size());
  }
  /// The deployment's authoritative shard map (epoch bumps on takeover).
  [[nodiscard]] const std::shared_ptr<naming::ShardMap>& shard_map() const {
    return shard_map_;
  }
  /// The replica registry hosted by the naming server (shard 0).
  [[nodiscard]] naming::ReplicaMap& replica_map() { return *replica_maps_[0]; }
  [[nodiscard]] naming::ReplicaMap& replica_map(std::uint32_t shard) {
    return *replica_maps_[shard];
  }
  /// Standby takeover counters summed over every naming endpoint.
  struct TakeoverStats {
    std::uint64_t takeovers = 0;
    std::uint64_t replayed = 0;
    std::uint64_t replay_errors = 0;
  };
  [[nodiscard]] TakeoverStats TotalTakeoverStats() const;
  /// The background chunk replicator; drive it with RunScan().
  [[nodiscard]] ChunkReplicator& replicator() { return *replicator_; }
  [[nodiscard]] AuthnServer& authn_server() { return *authn_server_; }
  [[nodiscard]] AuthzServer& authz_server() { return *authz_server_; }
  [[nodiscard]] LockServer& lock_server() { return *lock_server_; }
  /// I/O-scheduler counters summed over every storage server.
  [[nodiscard]] IoSchedulerStats TotalSchedStats() const;
  /// Robustness counters aggregated across the deployment: RPC dedup/CRC
  /// activity of every server endpoint plus the fabric's fault-injection
  /// totals.  Benches record these next to throughput so a run's fault
  /// exposure is part of its result.
  struct RobustnessStats {
    rpc::ServerStats rpc;               // summed over every RPC endpoint
    portals::FaultCounters faults;      // injected by the fabric
  };
  [[nodiscard]] RobustnessStats TotalRobustnessStats();
  /// Per-op middleware metrics (calls, errors, rejects, denials, latency,
  /// bulk bytes) merged across every service endpoint in the deployment.
  /// Entries are keyed "<service>.<op>"; the fig9 bench records them next
  /// to throughput.
  [[nodiscard]] std::vector<rpc::OpStats> TotalOpStats() const;
  /// Zero every server's scheduler counters (queue_depth_hwm included) so
  /// benches can scope measurement to one phase.
  void ResetSchedStats();
  [[nodiscard]] storage::ObjectStore& store(int i) {
    return *stores_[static_cast<std::size_t>(i)];
  }

 private:
  ServiceRuntime() = default;

  util::Clock* clock_ = util::RealClockInstance();
  portals::Fabric fabric_;
  RuntimeOptions options_;
  Deployment deployment_;

  security::TableAuthenticator users_;
  std::shared_ptr<naming::ShardMap> shard_map_;
  std::vector<std::unique_ptr<naming::OpLog>> naming_oplogs_;
  std::vector<std::unique_ptr<naming::ReplicaMap>> replica_maps_;
  std::unique_ptr<ChunkReplicator> replicator_;
  std::unique_ptr<security::AuthnService> authn_service_;
  std::unique_ptr<security::AuthzService> authz_service_;
  std::vector<std::unique_ptr<naming::NamingService>> naming_services_;
  txn::LockTable lock_table_;

  std::unique_ptr<AuthnServer> authn_server_;
  std::unique_ptr<AuthzServer> authz_server_;
  std::vector<std::unique_ptr<NamingServer>> naming_servers_;
  // Warm standbys (parallel to naming_servers_; empty when standby off).
  // A standby's service/registry start empty and WITHOUT the op log; its
  // takeover replays the log, then attaches it (see NamingServer).
  std::vector<std::unique_ptr<naming::NamingService>> standby_services_;
  std::vector<std::unique_ptr<naming::ReplicaMap>> standby_replica_maps_;
  std::vector<std::unique_ptr<NamingServer>> standby_servers_;
  std::unique_ptr<LockServer> lock_server_;
  std::vector<std::unique_ptr<storage::ObjectStore>> stores_;
  std::vector<std::unique_ptr<StorageServer>> storage_servers_;
};

}  // namespace lwfs::core
