// Background chunk replicator — the repair half of the replication layer
// (DESIGN.md §15).
//
// The replicator runs next to the naming server's replica registry and is
// driven by explicit RunScan() calls (the runtime or a maintenance loop
// decides the cadence, which keeps VirtualClock runs deterministic: a scan
// is an ordinary sequence of RPCs, not a free-running thread).
//
// One scan:
//   1. snapshots the registry, then sends each storage server one batched
//      RepairProbe over the control portal asking about every replicated
//      object it should hold;
//   2. computes each object's repair target version — the highest version
//      any member actually holds, floored by the registry's committed
//      version (so a lagging probe can't lower the bar);
//   3. re-replicates every reachable member that is missing the object or
//      behind the target, chunk by chunk, from a member that holds the
//      target version (RepairRead from the survivor, RepairWrite to the
//      stale member; the final chunk carries the source's version so the
//      rebuilt member's version catches up — see wire::RepairWriteReq);
//   4. clears the registry's stale marks for every member it verified or
//      repaired.
//
// Repair traffic is paced to `repair_mb_s` client-side (modeled clock
// sleeps) and flows through each server's IoScheduler server-side, so a
// repair storm cannot starve foreground I/O.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "naming/replica_map.h"
#include "rpc/rpc.h"
#include "util/bytes.h"
#include "util/status.h"

namespace lwfs::core {

struct ChunkReplicatorOptions {
  /// Repair bandwidth ceiling, MB/s; <= 0 disables pacing.
  double repair_mb_s = 64.0;
  /// Bytes per RepairRead/RepairWrite pair.
  std::size_t repair_chunk_bytes = 1 << 20;
};

/// Outcome of one scan (or the accumulated totals across scans).
struct RepairScanSummary {
  std::uint64_t entries = 0;        // registry entries examined
  std::uint64_t stale_members = 0;  // members found needing repair
  std::uint64_t repaired = 0;       // members brought back to current
  std::uint64_t failed = 0;         // members that could not be repaired
  std::uint64_t bytes_copied = 0;   // survivor bytes moved
};

class ChunkReplicator {
 public:
  /// `registry` must outlive the replicator; `storage_nids[i]` is server
  /// index i's nid (same indexing as the replica chains).
  ChunkReplicator(std::shared_ptr<portals::Nic> nic,
                  naming::ReplicaMap* registry,
                  std::vector<portals::Nid> storage_nids,
                  ChunkReplicatorOptions options = {},
                  rpc::ClientOptions rpc_options = {});
  /// Sharded metadata plane: one replicator sweeps every shard's registry
  /// (each shard owns a disjoint striped oid space, so the scans compose).
  ChunkReplicator(std::shared_ptr<portals::Nic> nic,
                  std::vector<naming::ReplicaMap*> registries,
                  std::vector<portals::Nid> storage_nids,
                  ChunkReplicatorOptions options = {},
                  rpc::ClientOptions rpc_options = {});

  /// Run one full scan-and-repair pass (all registries).  Not reentrant:
  /// one scan at a time.
  Result<RepairScanSummary> RunScan();

  [[nodiscard]] std::uint64_t scans() const { return scans_; }
  [[nodiscard]] const RepairScanSummary& totals() const { return totals_; }
  [[nodiscard]] const ChunkReplicatorOptions& options() const {
    return options_;
  }

 private:
  void ScanRegistry(naming::ReplicaMap* registry, RepairScanSummary* sum);
  Status RepairMember(storage::ObjectId oid, storage::ContainerId cid,
                      std::uint32_t member, std::uint32_t source,
                      std::uint64_t source_size, std::uint64_t source_version,
                      Buffer& chunk, RepairScanSummary* sum);

  std::vector<naming::ReplicaMap*> registries_;
  std::vector<portals::Nid> storage_nids_;
  ChunkReplicatorOptions options_;
  rpc::RpcClient rpc_;

  std::uint64_t scans_ = 0;
  RepairScanSummary totals_;
};

}  // namespace lwfs::core
