#include "core/storage_server.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>

#include "core/wire.h"
#include "util/logging.h"

namespace lwfs::core {

namespace {
rpc::ServerOptions ControlOptions(const StorageServerOptions& options) {
  rpc::ServerOptions control;
  control.request_portal = rpc::kControlPortal;
  control.worker_threads = 1;
  control.request_queue_depth = 1024;
  control.clock = options.clock;
  return control;
}

/// Data-plane worker count when neither knob picks one (see the
/// worker_threads comment in storage_server.h).
constexpr int kDefaultDataWorkers = 4;

rpc::ServerOptions DataOptions(const StorageServerOptions& options) {
  rpc::ServerOptions data = options.rpc;
  if (options.worker_threads > 0) {
    // Explicitly set: wins over whatever rpc carries.
    data.worker_threads = options.worker_threads;
  } else if (data.worker_threads <= 1) {
    // Neither knob set (rpc still at its single-worker default): the data
    // portal needs concurrency for pull/push of request N+1 to overlap
    // medium service of request N.
    data.worker_threads = kDefaultDataWorkers;
  }
  if (data.clock == nullptr) data.clock = options.clock;
  return data;
}

rpc::ClientOptions AuthzClientOptions(const StorageServerOptions& options) {
  rpc::ClientOptions client = options.client_options;
  if (client.clock == nullptr) client.clock = options.clock;
  return client;
}

rpc::ServerOptions ReplicaOptions(const StorageServerOptions& options) {
  rpc::ServerOptions replica;
  replica.request_portal = rpc::kReplicaPortal;
  replica.worker_threads = std::max(options.replica_worker_threads, 1);
  replica.clock = options.clock;
  return replica;
}

/// Chunks of one request kept in flight past the current pull/push.  Depth
/// 2 overlaps the network move of chunk N+1 with medium service of chunk N
/// while bounding per-request staging at 2 chunks — which is why the pool
/// is clamped to at least that much.
constexpr std::size_t kRequestPipelineDepth = 2;

IoSchedulerOptions SchedulerOptions(const StorageServerOptions& options) {
  IoSchedulerOptions sched;
  sched.modeled_disk_mb_s = options.modeled_disk_mb_s;
  sched.modeled_op_latency_us = options.modeled_op_latency_us;
  sched.clock = options.clock;
  return sched;
}
}  // namespace

StorageServer::StorageServer(std::shared_ptr<portals::Nic> nic,
                             std::uint32_t server_id,
                             storage::ObjectStore* store,
                             portals::Nid authz_nid, security::NowFn now,
                             StorageServerOptions options)
    : server_id_(server_id),
      clock_(util::OrReal(options.clock)),
      store_(store),
      authz_nid_(authz_nid),
      now_(std::move(now)),
      options_(options),
      participant_(participant_name()),
      data_server_(nic, DataOptions(options)),
      control_server_(nic, ControlOptions(options)),
      replica_server_(nic, ReplicaOptions(options)),
      authz_client_(std::move(nic), AuthzClientOptions(options)),
      data_ops_(&data_server_, "storage"),
      control_ops_(&control_server_, "storage_ctl"),
      replica_ops_(&replica_server_, "storage_rep"),
      staging_(std::max(options.staging_bytes,
                        kRequestPipelineDepth * options.bulk_chunk_bytes),
               options.clock) {
  if (options_.scheduler) {
    scheduler_ = std::make_unique<IoScheduler>(SchedulerOptions(options_));
  }
  // Every capability-gated data op authorizes against the container the
  // capability itself names; the middleware runs this before any handler.
  data_ops_.SetAuthorizer([this](rpc::ServerContext&,
                                 const security::Capability& cap,
                                 std::uint32_t needed_ops) {
    return Authorize(cap, needed_ops, cap.cid);
  });
  // Forwarded chain hops carry the client's own capability (capabilities
  // are transferable, §3.1.2), so the replica portal authorizes exactly
  // like the data portal.
  replica_ops_.SetAuthorizer([this](rpc::ServerContext&,
                                    const security::Capability& cap,
                                    std::uint32_t needed_ops) {
    return Authorize(cap, needed_ops, cap.cid);
  });
  RegisterDataHandlers();
  RegisterControlHandlers();
  RegisterReplicaHandlers();
}

Status StorageServer::Start() {
  LWFS_RETURN_IF_ERROR(data_ops_.init_status());
  LWFS_RETURN_IF_ERROR(control_ops_.init_status());
  LWFS_RETURN_IF_ERROR(replica_ops_.init_status());
  if (scheduler_) scheduler_->Start();
  LWFS_RETURN_IF_ERROR(data_server_.Start());
  LWFS_RETURN_IF_ERROR(replica_server_.Start());
  return control_server_.Start();
}

void StorageServer::Stop() {
  // Close the staging pool first: a data worker blocked in Acquire wakes
  // with kUnavailable instead of hanging the join below.  In-flight
  // requests caught mid-transfer fail with that status — shutdown is an
  // error, never a hang.
  staging_.Close();
  // Workers next: data, replica, and control handlers may all be blocked
  // awaiting scheduler tickets (repair reads/writes route through the
  // scheduler too), so the scheduler must outlive every worker pool and
  // drains last.
  data_server_.Stop();
  replica_server_.Stop();
  control_server_.Stop();
  if (scheduler_) scheduler_->Stop();
}

void StorageServer::Restart() {
  // Re-register what the persistent store still holds with the replica
  // registry *before* any volatile state clears and before the node takes
  // traffic again: a background repair scan racing this restart must see
  // the survivor's real holdings, never a phantom-empty server.
  if (options_.restart_report) {
    std::vector<std::pair<storage::ObjectId, std::uint64_t>> held;
    auto all = store_->ListAll();
    if (all.ok()) {
      for (storage::ObjectId oid : *all) {
        if (!storage::IsReplicatedOid(oid)) continue;
        auto attr = store_->GetAttr(oid);
        if (attr.ok()) held.emplace_back(oid, attr->version);
      }
    }
    options_.restart_report(server_id_, held);
  }
  cap_cache_.Clear();
  participant_.Reset();
  data_server_.ResetReplyCache();
  control_server_.ResetReplyCache();
  replica_server_.ResetReplyCache();
}

Status StorageServer::Authorize(const security::Capability& cap,
                                std::uint32_t needed_ops,
                                storage::ContainerId target_cid) {
  // Cheap structural checks first: the capability must name the container
  // and grant the operation class.
  if (cap.cid != target_cid) {
    return PermissionDenied("capability is for a different container");
  }
  if ((needed_ops & ~cap.ops) != 0) {
    return PermissionDenied("capability does not grant operation");
  }
  // Expiry is visible in the capability; no round trip needed.
  if (cap.expires_us <= now_()) {
    return PermissionDenied("capability expired");
  }

  if (options_.verify_mode == VerifyMode::kSharedKey) {
    // NASD/T10 scheme: local signature check with the shared key.  No
    // message, no back pointer — and therefore no revocation path.
    if (cap.tag != security::SipTag(options_.shared_key,
                                    ByteSpan(cap.SignedBytes()))) {
      return PermissionDenied("capability signature mismatch");
    }
    return OkStatus();
  }

  // Verified before?  (Figure 4-b: cache hit skips step 2 entirely.)
  if (options_.verify_mode == VerifyMode::kAuthzWithCache &&
      cap_cache_.Lookup(cap, now_())) {
    return OkStatus();
  }
  // Miss: one verify round trip to the authorization service, which also
  // records the back pointer for revocation.
  remote_verifies_.fetch_add(1, std::memory_order_relaxed);
  auto reply = rpc::CallTyped<rpc::Void>(authz_client_, authz_nid_,
                                         kOpVerifyCap,
                                         wire::VerifyCapReq{server_id_, cap});
  if (!reply.ok()) return reply.status();
  if (options_.verify_mode == VerifyMode::kAuthzWithCache) {
    cap_cache_.Insert(cap);
  }
  return OkStatus();
}

Result<storage::ObjAttr> StorageServer::CheckObject(
    const security::Capability& cap, storage::ObjectId oid) {
  auto attr = store_->GetAttr(oid);
  if (!attr.ok()) return attr.status();
  if (attr->cid != cap.cid) {
    // Do not leak existence of objects in other containers.
    return NotFound("no such object");
  }
  return attr;
}

void StorageServer::ChargeMediumTime(std::uint64_t bytes, bool charge_op) {
  double us = charge_op ? options_.modeled_op_latency_us : 0;
  if (options_.modeled_disk_mb_s > 0 && bytes > 0) {
    // bytes / (MB/s * 1e6 B/MB) seconds == bytes / (MB/s) microseconds.
    us += static_cast<double>(bytes) / options_.modeled_disk_mb_s;
  }
  ChargeModeledUs(us);
}

void StorageServer::ChargeModeledUs(double us) {
  if (us <= 0) return;
  // One disk arm: extend the arm's committed-busy horizon under the lock,
  // then sleep out this request's slot without holding it.  Competing
  // requests still serialize (each slot starts where the previous one
  // ended), but nothing sleeps inside a contended mutex — which would
  // stall unrelated workers and deadlock a virtual-time run.
  util::Clock::TimePoint until;
  {
    std::lock_guard<std::mutex> lock(medium_mu_);
    const util::Clock::TimePoint now = clock_->Now();
    if (medium_busy_until_ < now) medium_busy_until_ = now;
    medium_busy_until_ +=
        std::chrono::microseconds(static_cast<std::int64_t>(us));
    until = medium_busy_until_;
  }
  clock_->SleepUntil(until);
}

Result<std::uint64_t> StorageServer::ScheduledWrite(rpc::ServerContext& ctx,
                                                    storage::ObjectId oid,
                                                    std::uint64_t offset,
                                                    std::uint64_t total) {
  std::deque<std::shared_ptr<IoTicket>> pipeline;
  Status first_error = OkStatus();
  auto retire_oldest = [&] {
    Status s = pipeline.front()->Await();
    pipeline.pop_front();
    if (!s.ok() && first_error.ok()) first_error = s;
  };

  std::uint64_t moved = 0;
  while (moved < total) {
    const std::size_t n = static_cast<std::size_t>(std::min<std::uint64_t>(
        options_.bulk_chunk_bytes, total - moved));
    // Reserve staging space before pulling: when the pool is exhausted this
    // worker stalls, the request portal backs up, and new requests bounce
    // with kResourceExhausted — bounded staging is the flow control.
    // Blocking is safe here: this worker holds no reservation of its own
    // (pipelined chunks' reservations live in the scheduler's service fns,
    // which the scheduler thread releases without ever touching the pool).
    Status acquired = staging_.Acquire(n);
    if (!acquired.ok()) {
      if (first_error.ok()) first_error = std::move(acquired);
      break;
    }
    auto reservation = std::make_shared<StagingReservation>(&staging_, n);
    const std::uint64_t at = offset + moved;
    if (options_.zero_copy) {
      // Zero-copy pull: the slice references the client's registered
      // payload (kept alive by its refcount); the store's WriteSlice is
      // the write path's only copy.
      auto pulled = ctx.PullBulkSlice(n, moved);
      if (!pulled.ok()) {
        if (first_error.ok()) first_error = pulled.status();
        break;
      }
      pipeline.push_back(scheduler_->Submit(
          oid, /*is_write=*/true, at, n,
          [store = store_, oid, at, chunk = std::move(*pulled),
           reservation]() -> Status {
            return store->WriteSlice(oid, at, chunk);
          }));
    } else {
      auto chunk = std::make_shared<Buffer>(n);
      Status pulled = ctx.PullBulk(MutableByteSpan(*chunk), moved);
      if (!pulled.ok()) {
        if (first_error.ok()) first_error = std::move(pulled);
        break;
      }
      pipeline.push_back(scheduler_->Submit(
          oid, /*is_write=*/true, at, n,
          [store = store_, oid, at, chunk, reservation]() -> Status {
            return store->Write(oid, at, ByteSpan(*chunk));
          }));
    }
    moved += n;
    while (pipeline.size() >= kRequestPipelineDepth && first_error.ok()) {
      retire_oldest();
    }
    if (!first_error.ok()) break;
  }
  while (!pipeline.empty()) retire_oldest();
  if (!first_error.ok()) return first_error;
  return moved;
}

Result<std::uint64_t> StorageServer::ScheduledRead(rpc::ServerContext& ctx,
                                                   storage::ObjectId oid,
                                                   std::uint64_t offset,
                                                   std::uint64_t want) {
  struct PendingChunk {
    std::shared_ptr<IoTicket> ticket;
    std::shared_ptr<Buffer> data;  // resized by the service fn to bytes read
    std::shared_ptr<StagingReservation> reservation;
    std::uint64_t at = 0;  // client-side offset
    std::uint64_t asked = 0;
  };
  std::deque<PendingChunk> pipeline;
  Status first_error = OkStatus();
  std::uint64_t moved = 0;
  bool eof = false;

  // Retire the oldest chunk: rendezvous with the scheduler, push the bytes
  // to the client's registered region, release the staging space.  Chunks
  // after a short (EOF) chunk are discarded so `moved` stays the length of
  // the contiguous prefix actually delivered.
  auto retire_oldest = [&] {
    PendingChunk chunk = std::move(pipeline.front());
    pipeline.pop_front();
    Status s = chunk.ticket->Await();
    if (!s.ok()) {
      if (first_error.ok()) first_error = std::move(s);
      return;
    }
    if (eof || !first_error.ok() || chunk.data->empty()) {
      eof = true;
      return;
    }
    Status pushed = ctx.PushBulk(ByteSpan(*chunk.data), chunk.at);
    if (!pushed.ok()) {
      if (first_error.ok()) first_error = std::move(pushed);
      return;
    }
    moved += chunk.data->size();
    if (chunk.data->size() < chunk.asked) eof = true;  // short read: EOF
  };

  std::uint64_t issued = 0;
  while (issued < want && !eof && first_error.ok()) {
    const std::uint64_t n =
        std::min<std::uint64_t>(options_.bulk_chunk_bytes, want - issued);
    // A read chunk's reservation outlives the scheduler's service fn (the
    // staged bytes are pushed to the client afterwards), so this worker is
    // the one holding it — and it must never also *block* for the next
    // chunk's space, or W readers each holding one chunk could all wait
    // for a second and deadlock the pool.  Fast path: take free space
    // without blocking.  Slow path: retire (and so release) everything
    // this request holds, then wait owning nothing.
    if (!staging_.TryAcquire(static_cast<std::size_t>(n))) {
      while (!pipeline.empty()) retire_oldest();
      if (eof || !first_error.ok()) break;
      Status acquired = staging_.Acquire(static_cast<std::size_t>(n));
      if (!acquired.ok()) {
        if (first_error.ok()) first_error = std::move(acquired);
        break;
      }
    }
    PendingChunk chunk;
    chunk.reservation = std::make_shared<StagingReservation>(
        &staging_, static_cast<std::size_t>(n));
    chunk.data = std::make_shared<Buffer>();
    chunk.at = issued;
    chunk.asked = n;
    const std::uint64_t from = offset + issued;
    chunk.ticket = scheduler_->Submit(
        oid, /*is_write=*/false, from, n,
        [store = store_, oid, from, n, data = chunk.data]() -> Status {
          auto read = store->Read(oid, from, n);
          if (!read.ok()) return read.status();
          *data = std::move(*read);
          return OkStatus();
        });
    pipeline.push_back(std::move(chunk));
    issued += n;
    while (pipeline.size() >= kRequestPipelineDepth && first_error.ok()) {
      retire_oldest();
    }
  }
  while (!pipeline.empty()) retire_oldest();
  if (!first_error.ok()) return first_error;
  return moved;
}

Result<util::SharedSlice> StorageServer::ScheduledReadSlice(
    storage::ObjectId oid, std::uint64_t offset, std::uint64_t want) {
  // Flow control: reserve staging for the materialized read (Acquire
  // clamps oversized requests to pool capacity) while the medium services
  // it.  Blocking here is safe — this worker holds no reservation yet.
  // After the handler returns, the slice's retention in the reply frame
  // and reply cache is bounded by the cache's eviction, not the pool.
  LWFS_RETURN_IF_ERROR(staging_.Acquire(static_cast<std::size_t>(want)));
  StagingReservation reservation(&staging_, static_cast<std::size_t>(want));
  auto ticket = scheduler_->SubmitSliceRead(
      oid, offset, want,
      [store = store_, oid](std::uint64_t off,
                            std::uint64_t len) -> Result<util::SharedSlice> {
        return store->ReadSlice(oid, off, len);
      });
  LWFS_RETURN_IF_ERROR(ticket->Await());
  return ticket->TakeSlice();
}

Result<util::SharedSlice> StorageServer::StagedReadSlice(
    storage::ObjectId oid, std::uint64_t offset, std::uint64_t want) {
  Buffer staged(static_cast<std::size_t>(want));
  std::uint64_t moved = 0;
  while (moved < want) {
    const std::uint64_t n =
        std::min<std::uint64_t>(options_.bulk_chunk_bytes, want - moved);
    // Per-chunk reservation, released each iteration — never held across
    // the next Acquire, so the pool invariant holds.
    LWFS_RETURN_IF_ERROR(staging_.Acquire(static_cast<std::size_t>(n)));
    StagingReservation reservation(&staging_, static_cast<std::size_t>(n));
    auto data = std::make_shared<Buffer>();
    const std::uint64_t from = offset + moved;
    if (scheduler_) {
      auto ticket = scheduler_->Submit(
          oid, /*is_write=*/false, from, n,
          [store = store_, oid, from, n, data]() -> Status {
            auto read = store->Read(oid, from, n);
            if (!read.ok()) return read.status();
            *data = std::move(*read);
            return OkStatus();
          });
      LWFS_RETURN_IF_ERROR(ticket->Await());
    } else {
      auto read = store_->Read(oid, from, n);
      if (!read.ok()) return read.status();
      ChargeMediumTime(read->size(), /*charge_op=*/moved == 0);
      *data = std::move(*read);
    }
    if (data->empty()) break;  // EOF
    // The staging copy the zero-copy path exists to avoid: assemble the
    // chunk into the reply buffer and charge it against the budget.
    std::memcpy(staged.data() + moved, data->data(), data->size());
    LWFS_COUNT_COPY(util::CopyKind::kStage, data->size());
    moved += data->size();
    if (data->size() < n) break;  // short read: EOF
  }
  staged.resize(static_cast<std::size_t>(moved));
  return util::SharedSlice::FromBuffer(std::move(staged));
}

void StorageServer::RegisterDataHandlers() {
  // Authorization for every capability-gated op below runs in the service
  // middleware (required_ops in each OpDef), before the handler body.
  data_ops_.On<wire::ObjCreateReq, wire::ObjCreateRep>(
      wire::kObjCreateOp,
      [this](rpc::ServerContext&,
             wire::ObjCreateReq& req) -> Result<wire::ObjCreateRep> {
        ChargeModeledUs(options_.modeled_create_latency_us);
        auto oid = store_->Create(req.cap.cid);
        if (!oid.ok()) return oid.status();
        if (req.txid != 0) {
          // Eager create + compensating remove: the object is invisible
          // until a name commits, so eager application is safe.
          participant_.Join(req.txid);
          storage::ObjectId created = *oid;
          participant_.AddUndo(req.txid, [this, created] {
            (void)store_->Remove(created);
          });
        }
        return wire::ObjCreateRep{oid->value};
      });

  data_ops_.On<wire::ObjWriteReq, wire::IoMovedRep>(
      wire::kObjWriteOp,
      [this](rpc::ServerContext& ctx,
             wire::ObjWriteReq& req) -> Result<wire::IoMovedRep> {
        auto attr = CheckObject(req.cap, storage::ObjectId{req.oid});
        if (!attr.ok()) return attr.status();

        // Server-directed pull, one bounded chunk at a time (Figure 6).
        const std::uint64_t total = ctx.bulk_out_size();
        std::uint64_t moved = 0;
        if (scheduler_) {
          auto scheduled = ScheduledWrite(ctx, storage::ObjectId{req.oid},
                                          req.offset, total);
          if (!scheduled.ok()) return scheduled.status();
          moved = *scheduled;
        } else if (options_.zero_copy) {
          while (moved < total) {
            const std::size_t n =
                static_cast<std::size_t>(std::min<std::uint64_t>(
                    options_.bulk_chunk_bytes, total - moved));
            auto chunk = ctx.PullBulkSlice(n, moved);
            if (!chunk.ok()) return chunk.status();
            LWFS_RETURN_IF_ERROR(store_->WriteSlice(storage::ObjectId{req.oid},
                                                    req.offset + moved,
                                                    *chunk));
            ChargeMediumTime(n, /*charge_op=*/moved == 0);
            moved += n;
          }
        } else {
          Buffer chunk;
          while (moved < total) {
            const std::size_t n =
                static_cast<std::size_t>(std::min<std::uint64_t>(
                    options_.bulk_chunk_bytes, total - moved));
            chunk.resize(n);
            LWFS_RETURN_IF_ERROR(ctx.PullBulk(MutableByteSpan(chunk), moved));
            LWFS_RETURN_IF_ERROR(store_->Write(storage::ObjectId{req.oid},
                                               req.offset + moved,
                                               ByteSpan(chunk)));
            ChargeMediumTime(n, /*charge_op=*/moved == 0);
            moved += n;
          }
        }
        // End-to-end integrity: the pulled payload must match the checksum
        // the client put in the request header.  On mismatch the client
        // sees kDataLoss and retries the whole write, overwriting whatever
        // corrupt bytes already landed.
        LWFS_RETURN_IF_ERROR(ctx.VerifyPulledPayload());
        return wire::IoMovedRep{moved};
      });

  data_ops_.On<wire::ObjReadReq, wire::IoMovedRep>(
      wire::kObjReadOp,
      [this](rpc::ServerContext& ctx,
             wire::ObjReadReq& req) -> Result<wire::IoMovedRep> {
        auto attr = CheckObject(req.cap, storage::ObjectId{req.oid});
        if (!attr.ok()) return attr.status();

        const std::uint64_t want =
            std::min<std::uint64_t>(req.length, ctx.bulk_in_size());
        std::uint64_t moved = 0;
        if (scheduler_) {
          auto scheduled = ScheduledRead(ctx, storage::ObjectId{req.oid},
                                         req.offset, want);
          if (!scheduled.ok()) return scheduled.status();
          moved = *scheduled;
        } else {
          while (moved < want) {
            const std::uint64_t n = std::min<std::uint64_t>(
                options_.bulk_chunk_bytes, want - moved);
            auto data =
                store_->Read(storage::ObjectId{req.oid}, req.offset + moved, n);
            if (!data.ok()) return data.status();
            if (data->empty()) break;  // EOF
            ChargeMediumTime(data->size(), /*charge_op=*/moved == 0);
            // Server-directed push into the client's registered region.
            LWFS_RETURN_IF_ERROR(ctx.PushBulk(ByteSpan(*data), moved));
            moved += data->size();
            if (data->size() < n) break;  // short read: EOF
          }
        }
        return wire::IoMovedRep{moved};
      });

  // Slice read: the zero-copy read path.  No client-registered bulk-in
  // region and no server push — the store-owned slice is appended to the
  // reply frame itself (PushBulkSlice) and fans out to the client as
  // refcount bumps.  The store's medium copy is the path's only copy.
  data_ops_.On<wire::ObjReadReq, wire::IoMovedRep>(
      wire::kObjReadSliceOp,
      [this](rpc::ServerContext& ctx,
             wire::ObjReadReq& req) -> Result<wire::IoMovedRep> {
        auto attr = CheckObject(req.cap, storage::ObjectId{req.oid});
        if (!attr.ok()) return attr.status();
        const storage::ObjectId oid{req.oid};
        util::SharedSlice slice;
        if (!options_.zero_copy) {
          // A/B baseline: synthesize the reply slice through the legacy
          // staged copy so the zerocopy bench can isolate what the
          // slice path saves.
          auto staged = StagedReadSlice(oid, req.offset, req.length);
          if (!staged.ok()) return staged.status();
          slice = std::move(*staged);
        } else if (scheduler_) {
          auto got = ScheduledReadSlice(oid, req.offset, req.length);
          if (!got.ok()) return got.status();
          slice = std::move(*got);
        } else {
          auto got = store_->ReadSlice(oid, req.offset, req.length);
          if (!got.ok()) return got.status();
          ChargeMediumTime(got->size(), /*charge_op=*/true);
          slice = std::move(*got);
        }
        const std::uint64_t moved = slice.size();
        if (moved > 0) {
          LWFS_RETURN_IF_ERROR(ctx.PushBulkSlice(std::move(slice)));
        }
        return wire::IoMovedRep{moved};
      });

  data_ops_.On<wire::ObjRemoveReq, rpc::Void>(
      wire::kObjRemoveOp,
      [this](rpc::ServerContext&,
             wire::ObjRemoveReq& req) -> Result<rpc::Void> {
        auto attr = CheckObject(req.cap, storage::ObjectId{req.oid});
        if (!attr.ok()) return attr.status();
        if (req.txid != 0) {
          // Destructive op: defer to commit.
          participant_.Join(req.txid);
          storage::ObjectId victim{req.oid};
          participant_.StageApply(req.txid, [this, victim] {
            return store_->Remove(victim);
          });
        } else {
          LWFS_RETURN_IF_ERROR(store_->Remove(storage::ObjectId{req.oid}));
        }
        return rpc::Void{};
      });

  data_ops_.On<wire::ObjGetAttrReq, wire::ObjAttrRep>(
      wire::kObjGetAttrOp,
      [this](rpc::ServerContext&,
             wire::ObjGetAttrReq& req) -> Result<wire::ObjAttrRep> {
        auto attr = CheckObject(req.cap, storage::ObjectId{req.oid});
        if (!attr.ok()) return attr.status();
        return wire::ObjAttrRep{*attr};
      });

  data_ops_.On<wire::ObjListReq, wire::ObjListRep>(
      wire::kObjListOp,
      [this](rpc::ServerContext&,
             wire::ObjListReq& req) -> Result<wire::ObjListRep> {
        auto ids = store_->List(req.cap.cid);
        if (!ids.ok()) return ids.status();
        wire::ObjListRep rep;
        rep.oids.reserve(ids->size());
        for (storage::ObjectId oid : *ids) rep.oids.push_back(oid.value);
        return rep;
      });

  data_ops_.On<wire::ObjFilterReq, wire::ObjFilterRep>(
      wire::kObjFilterOp,
      [this](rpc::ServerContext& ctx,
             wire::ObjFilterReq& req) -> Result<wire::ObjFilterRep> {
        auto attr = CheckObject(req.cap, storage::ObjectId{req.oid});
        if (!attr.ok()) return attr.status();
        // The whole point: the data is read and reduced *here*; only the
        // result crosses the network.
        auto data =
            store_->Read(storage::ObjectId{req.oid}, req.offset, req.length);
        if (!data.ok()) return data.status();
        auto result = ApplyFilter(req.spec, ByteSpan(*data));
        if (!result.ok()) return result.status();
        if (result->size() > ctx.bulk_in_size()) {
          return ResourceExhausted("client result region too small");
        }
        if (!result->empty()) {
          LWFS_RETURN_IF_ERROR(ctx.PushBulk(ByteSpan(*result)));
        }
        return wire::ObjFilterRep{result->size(), data->size()};
      });

  data_ops_.On<wire::ObjTruncateReq, rpc::Void>(
      wire::kObjTruncateOp,
      [this](rpc::ServerContext&,
             wire::ObjTruncateReq& req) -> Result<rpc::Void> {
        auto attr = CheckObject(req.cap, storage::ObjectId{req.oid});
        if (!attr.ok()) return attr.status();
        LWFS_RETURN_IF_ERROR(
            store_->Truncate(storage::ObjectId{req.oid}, req.size));
        return rpc::Void{};
      });

  // Replication data plane: the idempotent fan-out create and the chain
  // write's head hop (clients always address the chain head's data
  // portal; forwarded hops arrive on the replica portal instead).
  data_ops_.On<wire::ObjCreateAtReq, rpc::Void>(
      wire::kObjCreateAtOp,
      [this](rpc::ServerContext&,
             wire::ObjCreateAtReq& req) -> Result<rpc::Void> {
        return HandleObjCreateAt(req);
      });
  data_ops_.On<wire::ReplicaWriteReq, wire::ReplicaWriteRep>(
      wire::kReplicaWriteOp,
      [this](rpc::ServerContext& ctx,
             wire::ReplicaWriteReq& req) -> Result<wire::ReplicaWriteRep> {
        return HandleReplicaWrite(ctx, req);
      });

  // Two-phase-commit participant endpoints.
  data_ops_.On<wire::TxnReq, wire::TxnVoteRep>(
      wire::kTxnPrepareOp,
      [this](rpc::ServerContext&,
             wire::TxnReq& req) -> Result<wire::TxnVoteRep> {
        auto vote = participant_.Prepare(req.txid);
        if (!vote.ok()) return vote.status();
        return wire::TxnVoteRep{*vote};
      });
  data_ops_.On<wire::TxnReq, rpc::Void>(
      wire::kTxnCommitOp,
      [this](rpc::ServerContext&, wire::TxnReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(participant_.Commit(req.txid));
        return rpc::Void{};
      });
  data_ops_.On<wire::TxnReq, rpc::Void>(
      wire::kTxnAbortOp,
      [this](rpc::ServerContext&, wire::TxnReq& req) -> Result<rpc::Void> {
        LWFS_RETURN_IF_ERROR(participant_.Abort(req.txid));
        return rpc::Void{};
      });
}

void StorageServer::RegisterControlHandlers() {
  control_ops_.On<wire::InvalidateCapsReq, rpc::Void>(
      wire::kInvalidateCapsOp,
      [this](rpc::ServerContext&,
             wire::InvalidateCapsReq& req) -> Result<rpc::Void> {
        cap_cache_.Invalidate(req.cap_ids);
        return rpc::Void{};
      });

  // Repair plane (chunk-replicator traffic).  Cap-free like capability
  // invalidation: these ops originate from the deployment's own repair
  // service, not from applications, and move data between servers the
  // registry already placed the object on.
  control_ops_.On<wire::RepairProbeReq, wire::RepairProbeRep>(
      wire::kRepairProbeOp,
      [this](rpc::ServerContext&,
             wire::RepairProbeReq& req) -> Result<wire::RepairProbeRep> {
        wire::RepairProbeRep rep;
        rep.probes.reserve(req.oids.size());
        for (std::uint64_t oid : req.oids) {
          auto attr = store_->GetAttr(storage::ObjectId{oid});
          if (attr.ok()) {
            rep.probes.push_back(
                wire::ReplicaProbe{oid, true, attr->version, attr->size});
          } else {
            rep.probes.push_back(wire::ReplicaProbe{oid, false, 0, 0});
          }
        }
        return rep;
      });

  control_ops_.On<wire::RepairReadReq, wire::RepairReadRep>(
      wire::kRepairReadOp,
      [this](rpc::ServerContext& ctx,
             wire::RepairReadReq& req) -> Result<wire::RepairReadRep> {
        const storage::ObjectId oid{req.oid};
        const std::uint64_t want =
            std::min<std::uint64_t>(req.length, ctx.bulk_in_size());
        auto data = std::make_shared<Buffer>();
        if (scheduler_) {
          // Repair competes for the medium through the same elevator as
          // client traffic — rate limiting happens replicator-side, and
          // what does get through is scheduled, not priority traffic.
          auto ticket = scheduler_->Submit(
              oid, /*is_write=*/false, req.offset, want,
              [store = store_, oid, from = req.offset, want,
               data]() -> Status {
                auto read = store->Read(oid, from, want);
                if (!read.ok()) return read.status();
                *data = std::move(*read);
                return OkStatus();
              });
          LWFS_RETURN_IF_ERROR(ticket->Await());
        } else {
          auto read = store_->Read(oid, req.offset, want);
          if (!read.ok()) return read.status();
          ChargeMediumTime(read->size(), /*charge_op=*/true);
          *data = std::move(*read);
        }
        if (!data->empty()) {
          LWFS_RETURN_IF_ERROR(ctx.PushBulk(ByteSpan(*data), 0));
        }
        auto attr = store_->GetAttr(oid);
        if (!attr.ok()) return attr.status();
        return wire::RepairReadRep{data->size(), attr->version, attr->size};
      });

  control_ops_.On<wire::RepairWriteReq, wire::RepairWriteRep>(
      wire::kRepairWriteOp,
      [this](rpc::ServerContext& ctx,
             wire::RepairWriteReq& req) -> Result<wire::RepairWriteRep> {
        const storage::ObjectId oid{req.oid};
        // Create-if-missing: a member that lost the object outright gets
        // it back; one that merely lagged keeps its bytes and is
        // overwritten below.  Same-bytes-same-offset makes re-execution
        // of a duplicated repair write harmless.
        Status created =
            store_->CreateWithId(storage::ContainerId{req.cid}, oid);
        if (!created.ok() && created.code() != ErrorCode::kAlreadyExists) {
          return created;
        }
        const auto n = static_cast<std::size_t>(ctx.bulk_out_size());
        if (n > 0) {
          auto chunk = ctx.PullBulkSlice(n, 0);
          if (!chunk.ok()) return chunk.status();
          LWFS_RETURN_IF_ERROR(ctx.VerifyPulledPayload());
          LWFS_RETURN_IF_ERROR(ApplyChunk(oid, req.offset, *chunk));
        }
        if (req.target_version > 0) {
          LWFS_RETURN_IF_ERROR(store_->SetVersion(oid, req.target_version));
        }
        auto attr = store_->GetAttr(oid);
        if (!attr.ok()) return attr.status();
        return wire::RepairWriteRep{attr->version};
      });
}

void StorageServer::RegisterReplicaHandlers() {
  replica_ops_.On<wire::ReplicaWriteReq, wire::ReplicaWriteRep>(
      wire::kReplicaWriteOp,
      [this](rpc::ServerContext& ctx,
             wire::ReplicaWriteReq& req) -> Result<wire::ReplicaWriteRep> {
        return HandleReplicaWrite(ctx, req);
      });
}

Result<rpc::Void> StorageServer::HandleObjCreateAt(wire::ObjCreateAtReq& req) {
  ChargeModeledUs(options_.modeled_create_latency_us);
  const storage::ObjectId oid{req.oid};
  Status created = store_->CreateWithId(req.cap.cid, oid);
  if (!created.ok()) {
    if (created.code() != ErrorCode::kAlreadyExists) return created;
    // Idempotent under retransmits, repair races, and restarted reply
    // caches: the object already existing in the *same* container is
    // success, not failure.
    auto attr = store_->GetAttr(oid);
    if (!attr.ok()) return created;
    if (attr->cid != req.cap.cid) return created;
    return rpc::Void{};
  }
  if (req.txid != 0) {
    participant_.Join(req.txid);
    participant_.AddUndo(req.txid,
                         [this, oid] { (void)store_->Remove(oid); });
  }
  return rpc::Void{};
}

Status StorageServer::ApplyChunk(storage::ObjectId oid, std::uint64_t offset,
                                 util::SharedSlice chunk) {
  const std::size_t n = chunk.size();
  if (scheduler_) {
    auto ticket = scheduler_->Submit(
        oid, /*is_write=*/true, offset, n,
        [store = store_, oid, offset, chunk = std::move(chunk)]() -> Status {
          return store->WriteSlice(oid, offset, chunk);
        });
    return ticket->Await();
  }
  Status written = store_->WriteSlice(oid, offset, chunk);
  if (written.ok()) ChargeMediumTime(n, /*charge_op=*/true);
  return written;
}

Result<wire::ReplicaWriteRep> StorageServer::HandleReplicaWrite(
    rpc::ServerContext& ctx, wire::ReplicaWriteReq& req) {
  const storage::ObjectId oid{req.oid};
  auto attr = CheckObject(req.cap, oid);
  if (!attr.ok()) return attr.status();

  // One reservation for the whole hop payload (clients chunk replicated
  // writes, so a hop's payload is one chunk).  Blocking in Acquire is safe:
  // this worker holds no reservation yet, and the hold-while-forwarding
  // wait below points strictly down an acyclic chain (for factor <= 3 a
  // forward always terminates at a non-forwarding tail).
  const auto n = static_cast<std::size_t>(ctx.bulk_out_size());
  LWFS_RETURN_IF_ERROR(staging_.Acquire(n));
  StagingReservation reservation(&staging_, n);

  auto chunk = ctx.PullBulkSlice(n, 0);
  if (!chunk.ok()) return chunk.status();
  // Per-hop CRC gate *before* forwarding or applying: bytes corrupted on
  // the previous hop's wire must not propagate down the chain or reach
  // the store.
  LWFS_RETURN_IF_ERROR(ctx.VerifyPulledPayload());

  // Forward the same slice downstream concurrently with the local apply —
  // the forwarding hop costs zero copies, and chain latency is
  // max(local, downstream), not their sum.  An unreachable hop is
  // *skipped*, never allowed to sever the chain: the forward goes to the
  // member after it, so one dead replica costs exactly one missed member,
  // not everything downstream of it.
  std::size_t hop = 0;
  rpc::CallHandle forward;
  auto issue_forward = [&] {
    for (; hop < req.chain.size(); ++hop) {
      wire::ReplicaWriteReq next;
      next.cap = req.cap;
      next.oid = req.oid;
      next.offset = req.offset;
      next.chain.assign(
          req.chain.begin() + static_cast<std::ptrdiff_t>(hop) + 1,
          req.chain.end());
      rpc::CallOptions call;
      call.bulk_out_slice = *chunk;
      call.request_portal = rpc::kReplicaPortal;
      auto issued = rpc::CallTypedAsync(
          authz_client_, static_cast<portals::Nid>(req.chain[hop].nid),
          kOpReplicaWrite, next, call);
      if (issued.ok()) {
        forward = std::move(*issued);
        return;
      }
    }
  };
  issue_forward();

  const Status applied = ApplyChunk(oid, req.offset, *chunk);

  wire::ReplicaWriteRep rep;
  while (forward.valid()) {
    auto down = rpc::ResolveTyped<wire::ReplicaWriteRep>(forward.Await());
    if (down.ok()) {
      rep.applied = std::move(down->applied);
      rep.version = down->version;
      break;
    }
    // A failed downstream hop is *not* a failed write: skip the hop and
    // re-forward to the member after it.  Whoever stays unreachable is
    // absent from the applied set, reported stale by the client, and
    // repaired from the survivors.
    forward = rpc::CallHandle();
    ++hop;
    issue_forward();
  }
  LWFS_RETURN_IF_ERROR(applied);
  auto post = store_->GetAttr(oid);
  if (!post.ok()) return post.status();
  rep.applied.push_back(server_id_);
  rep.version = std::max(rep.version, post->version);
  return rep;
}

}  // namespace lwfs::core
