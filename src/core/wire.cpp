#include "core/wire.h"

namespace lwfs::core::wire {
namespace {

security::Credential SampleCredential() {
  security::Credential cred;
  cred.cred_id = 0x1122334455667788ull;
  cred.uid = 4242;
  cred.instance = 7;
  cred.expires_us = 1700000000000000;
  cred.tag.lo = 0xdeadbeefcafef00dull;
  cred.tag.hi = 0x0123456789abcdefull;
  return cred;
}

security::Capability SampleCapability() {
  security::Capability cap;
  cap.cap_id = 0x99aabbccddeeff00ull;
  cap.cid = storage::ContainerId{31337};
  cap.ops = security::kOpRead | security::kOpWrite;
  cap.uid = 4242;
  cap.instance = 3;
  cap.expires_us = 1700000000000001;
  cap.tag.lo = 0xfeedfacefeedfaceull;
  cap.tag.hi = 0x5a5a5a5a5a5a5a5aull;
  return cap;
}

storage::ObjectRef SampleRef() {
  return storage::ObjectRef{storage::ContainerId{11}, 2,
                            storage::ObjectId{907}};
}

}  // namespace

std::vector<rpc::CodecCase> CoreWireCases() {
  const security::Credential cred = SampleCredential();
  const security::Capability cap = SampleCapability();

  FilterSpec spec;
  spec.kind = FilterKind::kHistogram;
  spec.stride = 4;
  spec.threshold = 0.5;
  spec.lo = -1.0;
  spec.hi = 1.0;
  spec.bins = 32;

  ListNamesRep list_names;
  list_names.entries.push_back(naming::DirEntry{"dir", true, std::nullopt});
  list_names.entries.push_back(naming::DirEntry{"file", false, SampleRef()});

  std::vector<rpc::CodecCase> cases;
  // Authentication.
  cases.push_back(rpc::MakeCodecCase("login_req", LoginReq{"alice", "s3cret"}));
  cases.push_back(rpc::MakeCodecCase("credential_rep", CredentialRep{cred}));
  cases.push_back(
      rpc::MakeCodecCase("revoke_cred_req", RevokeCredReq{cred.cred_id}));
  // Authorization.
  cases.push_back(
      rpc::MakeCodecCase("create_container_req", CreateContainerReq{cred}));
  cases.push_back(
      rpc::MakeCodecCase("create_container_rep", CreateContainerRep{77}));
  cases.push_back(rpc::MakeCodecCase(
      "get_cap_req", GetCapReq{cred, 77, security::kOpAll}));
  cases.push_back(rpc::MakeCodecCase("capability_rep", CapabilityRep{cap}));
  cases.push_back(
      rpc::MakeCodecCase("verify_cap_req", VerifyCapReq{9, cap}));
  cases.push_back(rpc::MakeCodecCase(
      "set_grant_req", SetGrantReq{cred, 77, 5151, security::kOpRead}));
  cases.push_back(
      rpc::MakeCodecCase("revoke_cap_req", RevokeCapReq{cred, cap.cap_id}));
  cases.push_back(
      rpc::MakeCodecCase("refresh_cap_req", RefreshCapReq{cred, cap}));
  // Storage data plane.
  cases.push_back(rpc::MakeCodecCase("obj_create_req", ObjCreateReq{cap, 12}));
  cases.push_back(rpc::MakeCodecCase("obj_create_rep", ObjCreateRep{907}));
  cases.push_back(
      rpc::MakeCodecCase("obj_write_req", ObjWriteReq{cap, 907, 4096}));
  cases.push_back(rpc::MakeCodecCase("io_moved_rep", IoMovedRep{65536}));
  cases.push_back(
      rpc::MakeCodecCase("obj_read_req", ObjReadReq{cap, 907, 0, 65536}));
  cases.push_back(
      rpc::MakeCodecCase("obj_remove_req", ObjRemoveReq{cap, 907, 0}));
  cases.push_back(
      rpc::MakeCodecCase("obj_getattr_req", ObjGetAttrReq{cap, 907}));
  cases.push_back(rpc::MakeCodecCase(
      "obj_attr_rep",
      ObjAttrRep{storage::ObjAttr{storage::ContainerId{31337}, 65536, 3}}));
  cases.push_back(rpc::MakeCodecCase("obj_list_req", ObjListReq{cap}));
  cases.push_back(
      rpc::MakeCodecCase("obj_list_rep", ObjListRep{{1, 2, 3, 907}}));
  cases.push_back(rpc::MakeCodecCase(
      "obj_filter_req", ObjFilterReq{cap, 907, 0, 65536, spec}));
  cases.push_back(
      rpc::MakeCodecCase("obj_filter_rep", ObjFilterRep{256, 65536}));
  cases.push_back(
      rpc::MakeCodecCase("obj_truncate_req", ObjTruncateReq{cap, 907, 1024}));
  // Replication (data plane).
  cases.push_back(rpc::MakeCodecCase(
      "obj_create_at_req",
      ObjCreateAtReq{cap, storage::kReplicatedOidBit | 17, 555}));
  cases.push_back(rpc::MakeCodecCase(
      "replica_write_req",
      ReplicaWriteReq{cap, storage::kReplicatedOidBit | 17, 4096,
                      {ReplicaHop{1, 0x1001}, ReplicaHop{2, 0x1002}}}));
  cases.push_back(rpc::MakeCodecCase("replica_write_rep",
                                     ReplicaWriteRep{{0, 1, 2}, 9}));
  // Transactions.
  cases.push_back(rpc::MakeCodecCase("txn_req", TxnReq{555}));
  cases.push_back(rpc::MakeCodecCase("txn_vote_rep", TxnVoteRep{true}));
  // Control plane.
  cases.push_back(rpc::MakeCodecCase("invalidate_caps_req",
                                     InvalidateCapsReq{{cap.cap_id, 1, 2}}));
  // Repair plane.
  cases.push_back(rpc::MakeCodecCase(
      "repair_probe_req",
      RepairProbeReq{{storage::kReplicatedOidBit | 17,
                      storage::kReplicatedOidBit | 18}}));
  cases.push_back(rpc::MakeCodecCase(
      "repair_probe_rep",
      RepairProbeRep{{ReplicaProbe{storage::kReplicatedOidBit | 17, true, 4,
                                   65536},
                      ReplicaProbe{storage::kReplicatedOidBit | 18, false, 0,
                                   0}}}));
  cases.push_back(rpc::MakeCodecCase(
      "repair_read_req",
      RepairReadReq{storage::kReplicatedOidBit | 17, 0, 65536}));
  cases.push_back(rpc::MakeCodecCase("repair_read_rep",
                                     RepairReadRep{65536, 4, 131072}));
  cases.push_back(rpc::MakeCodecCase(
      "repair_write_req",
      RepairWriteReq{storage::kReplicatedOidBit | 17, 31337, 65536, 4}));
  cases.push_back(rpc::MakeCodecCase("repair_write_rep", RepairWriteRep{5}));
  // Naming.
  cases.push_back(
      rpc::MakeCodecCase("mkdir_req", MkdirReq{"/a/b/c", true}));
  cases.push_back(
      rpc::MakeCodecCase("link_req", LinkReq{"/a/b/file", SampleRef()}));
  cases.push_back(rpc::MakeCodecCase(
      "stage_link_req", StageLinkReq{555, "/a/b/file", SampleRef()}));
  cases.push_back(rpc::MakeCodecCase("path_req", PathReq{"/a/b/file"}));
  cases.push_back(
      rpc::MakeCodecCase("object_ref_rep", ObjectRefRep{SampleRef()}));
  cases.push_back(
      rpc::MakeCodecCase("rename_req", RenameReq{"/a/b/file", "/a/c"}));
  cases.push_back(rpc::MakeCodecCase("list_names_rep", list_names));
  cases.push_back(rpc::MakeCodecCase("stage_unlink_req",
                                     StageUnlinkReq{555, "/a/b/file"}));
  ShardMapRep shard_map;
  shard_map.epoch = 9;
  shard_map.primaries = {3, 4, 5, 6};
  shard_map.standbys = {7, 8, 0, 0};
  cases.push_back(rpc::MakeCodecCase("shard_map_rep", shard_map));
  // Replica registry.
  cases.push_back(
      rpc::MakeCodecCase("replica_place_req", ReplicaPlaceReq{31337, 1, 3}));
  cases.push_back(rpc::MakeCodecCase(
      "replica_chain_rep",
      ReplicaChainRep{storage::kReplicatedOidBit | 17, 31337, {1, 2, 0}}));
  cases.push_back(rpc::MakeCodecCase(
      "replica_lookup_req", ReplicaLookupReq{storage::kReplicatedOidBit | 17}));
  cases.push_back(rpc::MakeCodecCase(
      "replica_report_req",
      ReplicaReportReq{storage::kReplicatedOidBit | 17, 4, {2}}));
  cases.push_back(
      rpc::MakeCodecCase("replica_audit_rep", ReplicaAuditRep{8, 6, 2, 3}));
  // Locks.
  cases.push_back(rpc::MakeCodecCase(
      "lock_try_req", LockTryReq{11, 907, 0, 4096, true}));
  cases.push_back(rpc::MakeCodecCase("lock_id_rep", LockIdRep{66}));
  cases.push_back(
      rpc::MakeCodecCase("lock_release_req", LockReleaseReq{66}));
  return cases;
}

}  // namespace lwfs::core::wire
