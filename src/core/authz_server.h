// RPC binding of the authorization service.
//
// Owns the RPC-backed revocation sink: when the service revokes
// capabilities, the sink pushes kOpInvalidateCaps to the control portal of
// every storage server that cached them (the back-pointer walk of §3.1.4).
// SetGrant replies only after those invalidations complete, giving the
// "immediate revocation" semantics §2.4 requires.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "core/protocol.h"
#include "rpc/rpc.h"
#include "rpc/service.h"
#include "security/authz.h"

namespace lwfs::core {

class AuthzServer : public security::RevocationSink {
 public:
  AuthzServer(std::shared_ptr<portals::Nic> nic,
              security::AuthzService* service,
              rpc::ServerOptions options = {});

  /// Tell the sink where the storage servers live (index = ServerId).
  void SetStorageNids(std::vector<portals::Nid> nids);

  Status Start() {
    LWFS_RETURN_IF_ERROR(ops_.init_status());
    return server_.Start();
  }
  void Stop() { server_.Stop(); }

  [[nodiscard]] portals::Nid nid() const { return server_.nid(); }
  [[nodiscard]] security::AuthzService* service() { return service_; }
  [[nodiscard]] rpc::ServerStats rpc_stats() const { return server_.stats(); }
  [[nodiscard]] std::vector<rpc::OpStats> op_stats() const {
    return ops_.Stats();
  }
  [[nodiscard]] std::vector<rpc::Opcode> registered_opcodes() const {
    return server_.RegisteredOpcodes();
  }

  // RevocationSink: RPC the invalidation to the caching server.
  void InvalidateCaps(security::ServerId server,
                      const std::vector<std::uint64_t>& cap_ids) override;

 private:
  security::AuthzService* service_;
  rpc::RpcServer server_;
  rpc::RpcClient control_client_;
  rpc::Service ops_;
  std::mutex nids_mutex_;
  std::vector<portals::Nid> storage_nids_;
};

}  // namespace lwfs::core
