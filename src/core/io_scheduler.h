// Server-side I/O scheduler (§3.2: the server *directs* data movement).
//
// The storage server's data plane runs several RPC workers; each worker
// stages its bulk bytes and then queues an extent here instead of touching
// the modeled medium directly.  A single scheduler thread drains the queue
// in batches, merges adjacent/overlapping extents on the same object into
// contiguous *runs*, services each object's runs in ascending offset order
// (an elevator pass), and charges the modeled medium once per run —
// one seek/op cost (`modeled_op_latency_us`) plus the run's bytes at
// `modeled_disk_mb_s`.  Merging queued small strided accesses into large
// contiguous ones is the dominant server-side win the noncontiguous-I/O
// literature reports, and it is only possible because requests queue at the
// server rather than being pushed through it in arrival order.
//
// Staging memory is bounded by a StagingPool: a worker cannot pull bulk
// bytes from a client until it has reserved pool space, so the server's
// buffer footprint stays fixed no matter how many clients burst at once.
// When the pool is full, workers stall, the bounded request portal fills,
// and new requests are rejected with kResourceExhausted — the same
// back-pressure path the protocol already has.
//
// Two invariants keep the pool deadlock- and hang-free:
//   1. No thread ever blocks in Acquire while holding a reservation.  The
//      scheduler thread never acquires at all; a data worker that cannot
//      TryAcquire first retires (and so releases) everything its request
//      holds, then waits owning nothing — so every held reservation
//      belongs to a thread that is making progress toward Release.
//   2. Close() wakes every blocked Acquire with kUnavailable, so shutdown
//      can never hang on a waiter (StorageServer::Stop closes the pool
//      before joining its data workers).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "storage/ids.h"
#include "util/clock.h"
#include "util/shared_buffer.h"
#include "util/status.h"

namespace lwfs::core {

/// One queued extent awaiting medium service.
struct PendingExtent {
  storage::ObjectId oid;
  bool is_write = false;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

/// A contiguous medium access covering one or more queued extents of one
/// object, all in the same direction.
struct MergedRun {
  storage::ObjectId oid;
  bool is_write = false;
  std::uint64_t offset = 0;  // lowest member offset
  std::uint64_t end = 0;     // highest member offset+length
  /// Indices into the planned batch, ascending by offset.
  std::vector<std::size_t> members;

  [[nodiscard]] std::uint64_t bytes() const { return end - offset; }
};

/// Pure merge planner: groups `batch` by (object, direction), orders each
/// group by offset, and merges extents that touch or overlap
/// (next.offset <= run.end) into runs.  Runs come back sorted by
/// (object, offset) — the elevator service order.  Exposed separately from
/// the scheduler so tests can pin the merge logic without threads.
std::vector<MergedRun> PlanRuns(std::span<const PendingExtent> batch);

/// Completion handle for one submitted extent.  The scheduler publishes the
/// service status; the submitting worker blocks in Await.
class IoTicket {
 public:
  Status Await();

  /// Slice-read submissions only: the extent's bytes as a ref-counted
  /// sub-slice of the run's single store read.  Valid (possibly shorter
  /// than asked — EOF — or empty) once Await returned OkStatus; moves the
  /// slice out, so call it once.
  [[nodiscard]] util::SharedSlice TakeSlice();

 private:
  friend class IoScheduler;
  util::Clock* clock_ = nullptr;  // set by Submit; nullptr = real time
  std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  Status status_ = OkStatus();
  util::SharedSlice slice_;
};

/// Bounded staging memory for in-flight bulk chunks.  Acquire blocks until
/// the reservation fits; requests larger than the capacity are clamped by
/// the caller (chunking already bounds per-reservation size).
///
/// A caller must never block in Acquire while it still holds a
/// reservation (see the deadlock invariant in the file comment): use
/// TryAcquire on the fast path and release everything held before falling
/// back to the blocking Acquire.
class StagingPool {
 public:
  explicit StagingPool(std::size_t capacity, util::Clock* clock = nullptr)
      : capacity_(capacity), clock_(util::OrReal(clock)), free_(capacity) {}

  /// Reserve `n` bytes, blocking while the pool is exhausted.  Fails with
  /// kUnavailable once the pool is closed (waiters are woken).
  [[nodiscard]] Status Acquire(std::size_t n);
  /// Reserve `n` bytes only if they are free right now; never blocks.
  /// Returns false when the pool lacks space or is closed.
  [[nodiscard]] bool TryAcquire(std::size_t n);
  void Release(std::size_t n);

  /// Wake every blocked Acquire with kUnavailable and fail all future
  /// ones.  Release still works, so outstanding reservations drain
  /// normally.  Called at server shutdown so no worker can hang here.
  void Close();

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Times an Acquire had to wait — each is a burst the pool absorbed.
  [[nodiscard]] std::uint64_t waits() const {
    return waits_.load(std::memory_order_relaxed);
  }

 private:
  const std::size_t capacity_;
  util::Clock* const clock_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t free_;
  bool closed_ = false;
  std::atomic<std::uint64_t> waits_{0};
};

/// RAII releaser for a StagingPool reservation the caller has already
/// acquired (via Acquire or TryAcquire); shareable so a service closure
/// can own it past the submitting worker's scope.  Construction does not
/// acquire — acquisition is fallible and must not hide in a constructor.
class StagingReservation {
 public:
  StagingReservation(StagingPool* pool, std::size_t bytes)
      : pool_(pool), bytes_(bytes) {}
  ~StagingReservation() { pool_->Release(bytes_); }
  StagingReservation(const StagingReservation&) = delete;
  StagingReservation& operator=(const StagingReservation&) = delete;

 private:
  StagingPool* pool_;
  std::size_t bytes_;
};

struct IoSchedulerOptions {
  /// Modeled medium bandwidth in MB/s; 0 disables the byte charge.
  double modeled_disk_mb_s = 0;
  /// Modeled per-access (seek/op) cost in microseconds, charged once per
  /// merged run; 0 disables it.  This is what makes coalescing pay.
  double modeled_op_latency_us = 0;
  /// Time source for medium charges and all waits (nullptr = real time).
  util::Clock* clock = nullptr;
};

/// Counters exposed through StorageServer::sched_stats().
struct IoSchedulerStats {
  std::uint64_t requests = 0;        ///< extents submitted
  std::uint64_t runs = 0;            ///< merged runs serviced = medium ops
  std::uint64_t merges = 0;          ///< extents absorbed into a larger run
  std::uint64_t coalesced_bytes = 0; ///< bytes serviced via multi-extent runs
  std::uint64_t queue_depth_hwm = 0; ///< max extents queued at once
  std::uint64_t slice_runs = 0;      ///< read runs serviced by one slice read
};

class IoScheduler {
 public:
  /// Performs the actual store access for one extent once the scheduler has
  /// charged the medium for its run.
  using ServiceFn = std::function<Status()>;
  /// Reads an arbitrary span of the submitted object as a store-owned
  /// slice.  The scheduler calls it ONCE per merged run — with the run's
  /// (offset, length), not the extent's — and hands every member of the
  /// run an O(1) sub-slice of the result.  This is the read path's
  /// coalescing without a staging copy: N queued extents still cost one
  /// medium access, and fan back out as refcount bumps.
  using SliceReadFn = std::function<Result<util::SharedSlice>(
      std::uint64_t offset, std::uint64_t length)>;

  explicit IoScheduler(IoSchedulerOptions options)
      : options_(options), clock_(util::OrReal(options.clock)) {}
  ~IoScheduler() { Stop(); }

  IoScheduler(const IoScheduler&) = delete;
  IoScheduler& operator=(const IoScheduler&) = delete;

  void Start();
  /// Services everything already queued, then joins the thread.  Extents
  /// submitted after Stop fail with kUnavailable.
  void Stop();

  /// Queue one extent; `fn` runs on the scheduler thread in elevator order.
  /// The returned ticket resolves to fn's status.
  std::shared_ptr<IoTicket> Submit(storage::ObjectId oid, bool is_write,
                                   std::uint64_t offset, std::uint64_t length,
                                   ServiceFn fn);

  /// Queue one READ extent whose result is a store-owned slice.  When a
  /// whole merged run consists of slice reads, `reader` runs once for the
  /// run and each member's ticket receives its clamped sub-slice
  /// (TakeSlice); a run mixed with legacy extents falls back to one
  /// reader call per member.  A short run read (EOF inside the run)
  /// yields correspondingly short or empty member slices.
  std::shared_ptr<IoTicket> SubmitSliceRead(storage::ObjectId oid,
                                            std::uint64_t offset,
                                            std::uint64_t length,
                                            SliceReadFn reader);

  [[nodiscard]] IoSchedulerStats stats() const;
  /// Zero all counters (including the queue-depth high-water mark) so a
  /// caller can scope measurements to one phase of a workload.
  void ResetStats();

 private:
  struct QueuedIo {
    PendingExtent extent;
    ServiceFn fn;
    SliceReadFn slice_fn;  // set instead of fn for slice-read extents
    std::shared_ptr<IoTicket> ticket;
  };

  void Loop();
  void ServiceBatch(std::vector<QueuedIo> batch);
  /// Sleep for one run's modeled medium time.
  void ChargeRun(std::uint64_t bytes);
  static void Complete(IoTicket& ticket, Status status);

  const IoSchedulerOptions options_;
  util::Clock* const clock_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<QueuedIo> queue_;
  bool running_ = false;
  bool stopping_ = false;
  std::thread thread_;

  mutable std::mutex stats_mutex_;
  IoSchedulerStats stats_;
};

}  // namespace lwfs::core
