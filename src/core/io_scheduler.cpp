#include "core/io_scheduler.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace lwfs::core {

std::vector<MergedRun> PlanRuns(std::span<const PendingExtent> batch) {
  std::vector<std::size_t> order(batch.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  // Elevator order: one pass per object, offsets ascending; reads and
  // writes on the same object stay separate runs.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const PendingExtent& x = batch[a];
    const PendingExtent& y = batch[b];
    if (x.oid != y.oid) return x.oid < y.oid;
    if (x.is_write != y.is_write) return x.is_write < y.is_write;
    if (x.offset != y.offset) return x.offset < y.offset;
    return a < b;
  });

  std::vector<MergedRun> runs;
  for (std::size_t idx : order) {
    const PendingExtent& e = batch[idx];
    const std::uint64_t end = e.offset + e.length;
    if (!runs.empty()) {
      MergedRun& run = runs.back();
      // Merge when the extent continues the run: same object and
      // direction, and its start does not leave a gap after the run's end
      // (touching or overlapping both qualify).
      if (run.oid == e.oid && run.is_write == e.is_write &&
          e.offset <= run.end) {
        run.end = std::max(run.end, end);
        run.members.push_back(idx);
        continue;
      }
    }
    runs.push_back(MergedRun{e.oid, e.is_write, e.offset, end, {idx}});
  }
  return runs;
}

Status IoTicket::Await() {
  util::Clock* clock = util::OrReal(clock_);
  std::unique_lock<std::mutex> lock(mutex_);
  clock->Wait(cv_, lock, [&] { return done_; });
  return status_;
}

util::SharedSlice IoTicket::TakeSlice() {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::move(slice_);
}

Status StagingPool::Acquire(std::size_t n) {
  if (n > capacity_) n = capacity_;  // chunking should prevent this
  std::unique_lock<std::mutex> lock(mutex_);
  if (closed_) return Unavailable("staging pool closed");
  if (free_ < n) {
    waits_.fetch_add(1, std::memory_order_relaxed);
    clock_->Wait(cv_, lock, [&] { return closed_ || free_ >= n; });
    if (closed_) return Unavailable("staging pool closed");
  }
  free_ -= n;
  return OkStatus();
}

bool StagingPool::TryAcquire(std::size_t n) {
  if (n > capacity_) n = capacity_;  // mirror the Acquire clamp
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_ || free_ < n) return false;
  free_ -= n;
  return true;
}

void StagingPool::Release(std::size_t n) {
  if (n > capacity_) n = capacity_;  // mirror the Acquire clamp
  {
    std::lock_guard<std::mutex> lock(mutex_);
    free_ += n;
  }
  clock_->NotifyAll(cv_);
}

void StagingPool::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  clock_->NotifyAll(cv_);
}

void IoScheduler::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  running_ = true;
  stopping_ = false;
  thread_ = clock_->SpawnThread([this] { Loop(); });
}

void IoScheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stopping_ = true;
  }
  clock_->NotifyAll(cv_);
  if (thread_.joinable()) clock_->Join(thread_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    running_ = false;
  }
}

std::shared_ptr<IoTicket> IoScheduler::Submit(storage::ObjectId oid,
                                              bool is_write,
                                              std::uint64_t offset,
                                              std::uint64_t length,
                                              ServiceFn fn) {
  auto ticket = std::make_shared<IoTicket>();
  ticket->clock_ = clock_;
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_ || stopping_) {
      Complete(*ticket, Unavailable("io scheduler stopped"));
      return ticket;
    }
    queue_.push_back(
        QueuedIo{PendingExtent{oid, is_write, offset, length}, std::move(fn),
                 nullptr, ticket});
    depth = queue_.size();
  }
  clock_->NotifyAll(cv_);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
    stats_.queue_depth_hwm = std::max<std::uint64_t>(stats_.queue_depth_hwm,
                                                     depth);
  }
  return ticket;
}

std::shared_ptr<IoTicket> IoScheduler::SubmitSliceRead(storage::ObjectId oid,
                                                       std::uint64_t offset,
                                                       std::uint64_t length,
                                                       SliceReadFn reader) {
  auto ticket = std::make_shared<IoTicket>();
  ticket->clock_ = clock_;
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_ || stopping_) {
      Complete(*ticket, Unavailable("io scheduler stopped"));
      return ticket;
    }
    queue_.push_back(QueuedIo{PendingExtent{oid, /*is_write=*/false, offset,
                                            length},
                              nullptr, std::move(reader), ticket});
    depth = queue_.size();
  }
  clock_->NotifyAll(cv_);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
    stats_.queue_depth_hwm = std::max<std::uint64_t>(stats_.queue_depth_hwm,
                                                     depth);
  }
  return ticket;
}

IoSchedulerStats IoScheduler::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void IoScheduler::ResetStats() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_ = IoSchedulerStats{};
}

void IoScheduler::Loop() {
  for (;;) {
    std::vector<QueuedIo> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      clock_->Wait(cv_, lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      batch.swap(queue_);
    }
    // Everything that queued while the previous batch held the medium is
    // planned together — that accumulation is where coalescing comes from.
    ServiceBatch(std::move(batch));
  }
}

void IoScheduler::ServiceBatch(std::vector<QueuedIo> batch) {
  std::vector<PendingExtent> extents;
  extents.reserve(batch.size());
  for (const QueuedIo& io : batch) extents.push_back(io.extent);
  std::vector<MergedRun> runs = PlanRuns(extents);

  for (const MergedRun& run : runs) {
    ChargeRun(run.bytes());
    const bool slice_run =
        !run.is_write &&
        std::all_of(run.members.begin(), run.members.end(),
                    [&](std::size_t idx) {
                      return static_cast<bool>(batch[idx].slice_fn);
                    });
    {
      // Account the run before completing its members, so a caller that
      // has awaited every ticket observes fully up-to-date counters.
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.runs;
      if (run.members.size() > 1) {
        stats_.merges += run.members.size() - 1;
        stats_.coalesced_bytes += run.bytes();
      }
      if (slice_run) ++stats_.slice_runs;
    }
    if (slice_run) {
      // One store access for the whole run; members fan back out as O(1)
      // sub-slices of the run slice (refcount bumps, no staging copy).
      // Slice() clamps, so a short run read (EOF inside the run) yields
      // short or empty member slices — the same EOF signal the staged
      // path derives from a short chunk.
      auto run_slice =
          batch[run.members.front()].slice_fn(run.offset, run.bytes());
      for (std::size_t idx : run.members) {
        QueuedIo& io = batch[idx];
        if (run_slice.ok()) {
          util::SharedSlice sub = run_slice->Slice(
              io.extent.offset - run.offset, io.extent.length);
          {
            std::lock_guard<std::mutex> lock(io.ticket->mutex_);
            io.ticket->slice_ = std::move(sub);
          }
          Complete(*io.ticket, OkStatus());
        } else {
          Complete(*io.ticket, run_slice.status());
        }
        io.slice_fn = nullptr;
      }
      continue;
    }
    for (std::size_t idx : run.members) {
      QueuedIo& io = batch[idx];
      if (io.slice_fn) {
        // Slice read merged into a run with legacy extents: no shared run
        // slice to carve from, so read just this extent.
        auto got = io.slice_fn(io.extent.offset, io.extent.length);
        if (got.ok()) {
          std::lock_guard<std::mutex> lock(io.ticket->mutex_);
          io.ticket->slice_ = std::move(*got);
        }
        io.slice_fn = nullptr;
        Complete(*io.ticket, got.ok() ? OkStatus() : got.status());
        continue;
      }
      Status status = io.fn ? io.fn() : OkStatus();
      io.fn = nullptr;  // release staged buffers promptly
      Complete(*io.ticket, std::move(status));
    }
  }
}

void IoScheduler::ChargeRun(std::uint64_t bytes) {
  double us = options_.modeled_op_latency_us;
  if (options_.modeled_disk_mb_s > 0 && bytes > 0) {
    // bytes / (MB/s * 1e6 B/MB) seconds == bytes / (MB/s) microseconds.
    us += static_cast<double>(bytes) / options_.modeled_disk_mb_s;
  }
  if (us <= 0) return;
  clock_->SleepFor(std::chrono::microseconds(static_cast<std::int64_t>(us)));
}

void IoScheduler::Complete(IoTicket& ticket, Status status) {
  {
    std::lock_guard<std::mutex> lock(ticket.mutex_);
    ticket.done_ = true;
    ticket.status_ = std::move(status);
  }
  util::OrReal(ticket.clock_)->NotifyAll(ticket.cv_);
}

}  // namespace lwfs::core
