// Active-storage filters (§6: "I/O libraries that incorporate remote
// processing (e.g., remote filtering)" — the active-disk line of work the
// paper cites as [2, 31]).
//
// A filter runs *at the storage server* against one object's data and ships
// only the result, so a reduction over a large dataset moves kilobytes
// instead of gigabytes.  Filters operate on little-endian float64 arrays —
// the dominant payload of the scientific applications in §1.
//
// The pure filter kernels live here so they are unit-testable without a
// server; the storage server exposes them via kOpObjFilter and the client
// via Client-level helpers (see active.h).
#pragma once

#include <cstdint>

#include "util/bytes.h"
#include "util/status.h"

namespace lwfs::core {

enum class FilterKind : std::uint32_t {
  /// Result: 4 doubles {min, max, sum, count}.
  kMinMaxSumCount = 1,
  /// Result: every `stride`-th element (a subsampled signal).
  kSubsample = 2,
  /// Result: u64 indices of elements strictly greater than `threshold`.
  kSelectGreater = 3,
  /// Result: `bins` doubles — histogram counts over [lo, hi).
  kHistogram = 4,
};

struct FilterSpec {
  FilterKind kind = FilterKind::kMinMaxSumCount;
  std::uint64_t stride = 1;   // kSubsample
  double threshold = 0;       // kSelectGreater
  double lo = 0, hi = 1;      // kHistogram range
  std::uint32_t bins = 16;    // kHistogram

  void Encode(Encoder& enc) const;
  static Result<FilterSpec> Decode(Decoder& dec);
};

/// Apply `spec` to `data` interpreted as float64 little-endian.  `data`
/// length must be a multiple of 8.  Pure.
Result<Buffer> ApplyFilter(const FilterSpec& spec, ByteSpan data);

}  // namespace lwfs::core
