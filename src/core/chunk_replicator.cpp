#include "core/chunk_replicator.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "core/protocol.h"
#include "core/wire.h"
#include "rpc/service.h"
#include "util/clock.h"

namespace lwfs::core {

namespace {
constexpr std::uint32_t kNoSource = 0xFFFFFFFFu;
}  // namespace

ChunkReplicator::ChunkReplicator(std::shared_ptr<portals::Nic> nic,
                                 naming::ReplicaMap* registry,
                                 std::vector<portals::Nid> storage_nids,
                                 ChunkReplicatorOptions options,
                                 rpc::ClientOptions rpc_options)
    : ChunkReplicator(std::move(nic),
                      std::vector<naming::ReplicaMap*>{registry},
                      std::move(storage_nids), options,
                      std::move(rpc_options)) {}

ChunkReplicator::ChunkReplicator(std::shared_ptr<portals::Nic> nic,
                                 std::vector<naming::ReplicaMap*> registries,
                                 std::vector<portals::Nid> storage_nids,
                                 ChunkReplicatorOptions options,
                                 rpc::ClientOptions rpc_options)
    : registries_(std::move(registries)),
      storage_nids_(std::move(storage_nids)),
      options_(options),
      rpc_(std::move(nic), rpc_options) {}

Result<RepairScanSummary> ChunkReplicator::RunScan() {
  if (registries_.empty() || registries_[0] == nullptr) {
    return FailedPrecondition("replicator has no registry");
  }
  RepairScanSummary sum;
  for (naming::ReplicaMap* registry : registries_) {
    if (registry != nullptr) ScanRegistry(registry, &sum);
  }

  ++scans_;
  totals_.entries += sum.entries;
  totals_.stale_members += sum.stale_members;
  totals_.repaired += sum.repaired;
  totals_.failed += sum.failed;
  totals_.bytes_copied += sum.bytes_copied;
  return sum;
}

void ChunkReplicator::ScanRegistry(naming::ReplicaMap* registry,
                                   RepairScanSummary* out) {
  RepairScanSummary& sum = *out;
  const std::vector<naming::ReplicaPlacement> snapshot = registry->Snapshot();
  sum.entries += snapshot.size();

  // One batched probe per server covering every object it should hold.
  std::vector<std::vector<std::uint64_t>> want(storage_nids_.size());
  for (const auto& entry : snapshot) {
    for (std::uint32_t m : entry.chain) {
      if (m < want.size()) want[m].push_back(entry.oid.value);
    }
  }
  rpc::CallOptions control;
  control.request_portal = rpc::kControlPortal;
  std::vector<std::map<std::uint64_t, wire::ReplicaProbe>> probed(
      storage_nids_.size());
  std::vector<bool> reachable(storage_nids_.size(), false);
  for (std::size_t s = 0; s < storage_nids_.size(); ++s) {
    if (want[s].empty()) {
      reachable[s] = true;
      continue;
    }
    auto rep = rpc::CallTyped<wire::RepairProbeRep>(
        rpc_, storage_nids_[s], kOpRepairProbe, wire::RepairProbeReq{want[s]},
        control);
    if (!rep.ok()) continue;  // unreachable: skip, never assume empty
    reachable[s] = true;
    for (const wire::ReplicaProbe& p : rep->probes) probed[s][p.oid] = p;
  }

  Buffer chunk(std::max<std::size_t>(options_.repair_chunk_bytes, 1), 0);

  for (const auto& entry : snapshot) {
    auto probe_of = [&](std::uint32_t m) -> const wire::ReplicaProbe* {
      if (m >= probed.size()) return nullptr;
      auto it = probed[m].find(entry.oid.value);
      return it == probed[m].end() ? nullptr : &it->second;
    };

    // Repair target: the highest version any member holds, floored by the
    // registry's committed version (a lagging probe can't lower the bar).
    std::uint64_t target = entry.committed_version;
    for (std::uint32_t m : entry.chain) {
      const wire::ReplicaProbe* p = probe_of(m);
      if (p != nullptr && p->held) target = std::max(target, p->version);
    }

    std::uint32_t source = kNoSource;
    std::uint64_t source_size = 0;
    std::uint64_t source_version = 0;
    for (std::uint32_t m : entry.chain) {
      const wire::ReplicaProbe* p = probe_of(m);
      if (p != nullptr && p->held && p->version >= target) {
        source = m;
        source_size = p->size;
        source_version = p->version;
        break;
      }
    }

    for (std::uint32_t m : entry.chain) {
      if (m >= reachable.size() || !reachable[m]) continue;  // can't judge it
      const wire::ReplicaProbe* p = probe_of(m);
      if (p != nullptr && p->held && p->version >= target) {
        // Current (the source included) — clear any lingering stale mark.
        (void)registry->MarkRepaired(entry.oid, m, p->version);
        continue;
      }
      ++sum.stale_members;
      if (source == kNoSource) {
        ++sum.failed;  // nothing current survives to copy from
        continue;
      }
      Status repaired = RepairMember(entry.oid, entry.cid, m, source,
                                     source_size, source_version, chunk, &sum);
      if (repaired.ok()) {
        ++sum.repaired;
        (void)registry->MarkRepaired(entry.oid, m, source_version);
      } else {
        ++sum.failed;
      }
    }
  }
}

Status ChunkReplicator::RepairMember(storage::ObjectId oid,
                                     storage::ContainerId cid,
                                     std::uint32_t member, std::uint32_t source,
                                     std::uint64_t source_size,
                                     std::uint64_t source_version,
                                     Buffer& chunk, RepairScanSummary* sum) {
  rpc::CallOptions control;
  control.request_portal = rpc::kControlPortal;
  util::Clock* clock = rpc_.clock();
  std::uint64_t offset = 0;
  std::uint64_t size = source_size;
  std::uint64_t version = source_version;
  do {
    const std::uint64_t want =
        std::min<std::uint64_t>(chunk.size(), size - offset);
    std::uint64_t moved = 0;
    if (want > 0) {
      rpc::CallOptions read = control;
      read.bulk_in = MutableByteSpan(chunk.data(), want);
      auto rrep = rpc::CallTyped<wire::RepairReadRep>(
          rpc_, storage_nids_[source], kOpRepairRead,
          wire::RepairReadReq{oid.value, offset, want}, read);
      if (!rrep.ok()) return rrep.status();
      moved = rrep->moved;
      version = std::max(version, rrep->version);
      size = std::max(size, rrep->size);
    }
    const bool last = offset + moved >= size;
    rpc::CallOptions write = control;
    write.bulk_out = ByteSpan(chunk.data(), moved);
    auto wrep = rpc::CallTyped<wire::RepairWriteRep>(
        rpc_, storage_nids_[member], kOpRepairWrite,
        wire::RepairWriteReq{oid.value, cid.value, offset,
                             last ? version : 0},
        write);
    if (!wrep.ok()) return wrep.status();
    offset += moved;
    sum->bytes_copied += moved;
    // Pace to the rate knob so repair cannot starve foreground traffic
    // (server-side the repair ops also queue through the IoScheduler).
    if (options_.repair_mb_s > 0 && moved > 0) {
      const double us =
          static_cast<double>(moved) / options_.repair_mb_s;  // B / (MB/s) = us
      clock->SleepFor(
          std::chrono::microseconds(static_cast<std::int64_t>(us)));
    }
    if (moved == 0 && offset < size) {
      return Internal("repair source returned a short read");
    }
  } while (offset < size);
  return OkStatus();
}

}  // namespace lwfs::core
