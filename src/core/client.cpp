#include "core/client.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include "core/wire.h"
#include "naming/shard_map.h"
#include "rpc/service.h"

namespace lwfs::core {

namespace {

/// Errors worth retrying on another chain member: the member is gone,
/// unreachable, lost the object, or corrupted the transfer.  Authorization
/// and argument errors would fail identically everywhere.
bool FailoverWorthy(const Status& status) {
  switch (status.code()) {
    case ErrorCode::kTimeout:
    case ErrorCode::kUnavailable:
    case ErrorCode::kNotFound:
    case ErrorCode::kDataLoss:
      return true;
    default:
      return false;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// PendingIo / PendingCreate / Batch
// ---------------------------------------------------------------------------

Result<std::uint64_t> PendingIo::Resolve(Result<Buffer> reply,
                                         bool decode_reply,
                                         std::uint64_t nominal) {
  if (!decode_reply) {
    if (!reply.ok()) return reply.status();
    return nominal;
  }
  auto moved = rpc::ResolveTyped<wire::IoMovedRep>(std::move(reply));
  if (!moved.ok()) return moved.status();
  return moved->moved;
}

Result<std::uint64_t> PendingIo::Await() {
  if (!handle_.valid()) {
    return FailedPrecondition("awaiting an empty io handle");
  }
  return Resolve(handle_.Await(), decode_reply_, nominal_);
}

bool PendingIo::TryAwait(Result<std::uint64_t>* out) {
  if (!handle_.valid()) return false;
  Result<Buffer> reply = Buffer{};
  if (!handle_.TryAwait(&reply)) return false;
  if (out != nullptr) *out = Resolve(std::move(reply), decode_reply_, nominal_);
  return true;
}

Result<util::SharedSlice> PendingSliceIo::Resolve(Result<Buffer> reply) {
  auto moved = rpc::ResolveTyped<wire::IoMovedRep>(std::move(reply));
  if (!moved.ok()) return moved.status();
  util::SharedSlice bulk = handle_.ReplyBulk();
  if (bulk.size() != moved->moved) {
    // The frame CRC already vouches for the bytes; a mismatch here means
    // the reply body and its bulk parts disagree — treat it like any other
    // corrupt transfer.
    return DataLoss("slice read bulk does not match reported byte count");
  }
  return bulk;
}

Result<util::SharedSlice> PendingSliceIo::Await() {
  if (!handle_.valid()) {
    return FailedPrecondition("awaiting an empty io handle");
  }
  return Resolve(handle_.Await());
}

bool PendingSliceIo::TryAwait(Result<util::SharedSlice>* out) {
  if (!handle_.valid()) return false;
  Result<Buffer> reply = Buffer{};
  if (!handle_.TryAwait(&reply)) return false;
  if (out != nullptr) *out = Resolve(std::move(reply));
  return true;
}

Result<storage::ObjectId> PendingCreate::Await() {
  if (!handle_.valid()) {
    return FailedPrecondition("awaiting an empty create handle");
  }
  auto rep = rpc::ResolveTyped<wire::ObjCreateRep>(handle_.Await());
  if (!rep.ok()) return rep.status();
  return storage::ObjectId{rep->oid};
}

bool PendingCreate::TryAwait(Result<storage::ObjectId>* out) {
  if (!handle_.valid()) return false;
  Result<Buffer> reply = Buffer{};
  if (!handle_.TryAwait(&reply)) return false;
  if (out != nullptr) {
    auto rep = rpc::ResolveTyped<wire::ObjCreateRep>(std::move(reply));
    if (!rep.ok()) {
      *out = rep.status();
    } else {
      *out = storage::ObjectId{rep->oid};
    }
  }
  return true;
}

Status Batch::RetireOldest() {
  Op op = std::move(inflight_.front());
  inflight_.pop_front();
  if (op.slice_io.valid()) {
    auto slice = op.slice_io.Await();
    if (!slice.ok()) {
      if (first_error_.ok()) first_error_ = slice.status();
      return slice.status();
    }
    if (op.slice_out != nullptr) *op.slice_out = std::move(*slice);
    return OkStatus();
  }
  auto n = op.io.Await();
  if (!n.ok()) {
    if (first_error_.ok()) first_error_ = n.status();
    return n.status();
  }
  if (op.bytes_read != nullptr) *op.bytes_read = *n;
  return OkStatus();
}

Status Batch::Write(std::uint32_t server, const security::Capability& cap,
                    storage::ObjectId oid, std::uint64_t offset,
                    ByteSpan data) {
  if (!first_error_.ok()) return first_error_;
  while (inflight_.size() >= window_) (void)RetireOldest();
  if (!first_error_.ok()) return first_error_;
  auto io = client_->WriteObjectAsync(server, cap, oid, offset, data);
  if (!io.ok()) {
    if (first_error_.ok()) first_error_ = io.status();
    return io.status();
  }
  Op op;
  op.io = std::move(*io);
  inflight_.push_back(std::move(op));
  return OkStatus();
}

Status Batch::WriteSlice(std::uint32_t server, const security::Capability& cap,
                         storage::ObjectId oid, std::uint64_t offset,
                         const util::SharedSlice& data) {
  if (!first_error_.ok()) return first_error_;
  while (inflight_.size() >= window_) (void)RetireOldest();
  if (!first_error_.ok()) return first_error_;
  auto io = client_->WriteObjectSliceAsync(server, cap, oid, offset, data);
  if (!io.ok()) {
    if (first_error_.ok()) first_error_ = io.status();
    return io.status();
  }
  Op op;
  op.io = std::move(*io);
  inflight_.push_back(std::move(op));
  return OkStatus();
}

Status Batch::Read(std::uint32_t server, const security::Capability& cap,
                   storage::ObjectId oid, std::uint64_t offset,
                   MutableByteSpan out, std::uint64_t* bytes_read) {
  if (!first_error_.ok()) return first_error_;
  while (inflight_.size() >= window_) (void)RetireOldest();
  if (!first_error_.ok()) return first_error_;
  auto io = client_->ReadObjectAsync(server, cap, oid, offset, out);
  if (!io.ok()) {
    if (first_error_.ok()) first_error_ = io.status();
    return io.status();
  }
  Op op;
  op.io = std::move(*io);
  op.bytes_read = bytes_read;
  inflight_.push_back(std::move(op));
  return OkStatus();
}

Status Batch::ReadSlice(std::uint32_t server, const security::Capability& cap,
                        storage::ObjectId oid, std::uint64_t offset,
                        std::uint64_t length, util::SharedSlice* out) {
  if (!first_error_.ok()) return first_error_;
  while (inflight_.size() >= window_) (void)RetireOldest();
  if (!first_error_.ok()) return first_error_;
  auto io = client_->ReadObjectSliceAsync(server, cap, oid, offset, length);
  if (!io.ok()) {
    if (first_error_.ok()) first_error_ = io.status();
    return io.status();
  }
  Op op;
  op.slice_io = std::move(*io);
  op.slice_out = out;
  inflight_.push_back(std::move(op));
  return OkStatus();
}

Status Batch::Drain() {
  while (!inflight_.empty()) (void)RetireOldest();
  return first_error_;
}

// ---------------------------------------------------------------------------
// PendingReplicatedWrite
// ---------------------------------------------------------------------------

PendingReplicatedWrite::PendingReplicatedWrite(Client* client,
                                               security::Capability cap,
                                               ReplicaChain chain,
                                               std::uint64_t offset,
                                               util::SharedSlice data)
    : client_(client),
      cap_(std::move(cap)),
      chain_(std::move(chain)),
      members_(chain_.servers),
      offset_(offset),
      data_(std::move(data)) {}

Status PendingReplicatedWrite::Issue() {
  for (;;) {
    auto head = client_->StorageNid(members_.front());
    if (!head.ok()) return head.status();
    wire::ReplicaWriteReq req;
    req.cap = cap_;
    req.oid = chain_.oid.value;
    req.offset = offset_;
    for (std::size_t i = 1; i < members_.size(); ++i) {
      auto nid = client_->StorageNid(members_[i]);
      if (!nid.ok()) return nid.status();
      req.chain.push_back(wire::ReplicaHop{members_[i], *nid});
    }
    rpc::CallOptions options;
    if (data_.owned()) {
      options.bulk_out_slice = data_;  // one registration; head forwards it
    } else {
      // Borrowed (External) slices take the staged span path — the portals
      // layer only exposes owned slices by reference.  `data_` pins the span
      // until the call (and any failover reissue) completes.
      options.bulk_out = data_.span();
    }
    auto handle = rpc::CallTypedAsync(client_->rpc_, *head, kOpReplicaWrite,
                                      req, options);
    if (handle.ok()) {
      handle_ = std::move(*handle);
      ++generation_;
      return OkStatus();
    }
    // Head unreachable at issue time (down node, open breaker): fail over
    // exactly as for a mid-call transport failure — the next member heads a
    // shorter chain and the skipped one is reported stale by Finish().
    if (!FailoverWorthy(handle.status()) || members_.size() == 1) {
      return handle.status();
    }
    members_.erase(members_.begin());
    client_->write_failovers_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool PendingReplicatedWrite::Advance(Result<Buffer> reply,
                                     Result<std::uint64_t>* out) {
  if (!reply.ok() && FailoverWorthy(reply.status()) && members_.size() > 1) {
    // Head unreachable: the next member heads a shorter chain.  The skipped
    // member is accounted for in Finish() — it will be absent from the
    // applied set, so it gets reported stale like any missed hop.
    members_.erase(members_.begin());
    client_->write_failovers_.fetch_add(1, std::memory_order_relaxed);
    if (Issue().ok()) return false;
  }
  final_ = Finish(std::move(reply));
  done_ = true;
  if (out != nullptr) *out = final_;
  return true;
}

Result<std::uint64_t> PendingReplicatedWrite::Finish(Result<Buffer> reply) {
  auto rep = rpc::ResolveTyped<wire::ReplicaWriteRep>(std::move(reply));
  if (!rep.ok()) return rep.status();
  applied_ = std::move(rep->applied);
  version_ = rep->version;
  // A commit that missed members is a *degraded* success: report the misses
  // (with the committed version) so the background replicator re-replicates
  // from survivors, rather than failing a write the chain durably applied.
  std::vector<std::uint32_t> stale;
  for (std::uint32_t member : chain_.servers) {
    if (std::find(applied_.begin(), applied_.end(), member) ==
        applied_.end()) {
      stale.push_back(member);
    }
  }
  if (!stale.empty()) {
    client_->degraded_writes_.fetch_add(1, std::memory_order_relaxed);
    (void)client_->ReportStaleReplicas(chain_.oid, version_, stale);
  }
  return data_.size();
}

Result<std::uint64_t> PendingReplicatedWrite::Await() {
  if (done_) return final_;
  if (!handle_.valid()) {
    return FailedPrecondition("awaiting an empty replicated write");
  }
  for (;;) {
    Result<std::uint64_t> out = 0;
    if (Advance(handle_.Await(), &out)) return out;
  }
}

bool PendingReplicatedWrite::TryAwait(Result<std::uint64_t>* out) {
  if (done_) {
    if (out != nullptr) *out = final_;
    return true;
  }
  if (!handle_.valid()) return false;
  Result<Buffer> reply = Buffer{};
  if (!handle_.TryAwait(&reply)) return false;
  return Advance(std::move(reply), out);
}

// ---------------------------------------------------------------------------
// RemoteParticipant
// ---------------------------------------------------------------------------

Result<bool> RemoteParticipant::Prepare(txn::TxnId txid) {
  auto vote = rpc::CallTyped<wire::TxnVoteRep>(*rpc_, nid_, kOpTxnPrepare,
                                               wire::TxnReq{txid});
  if (!vote.ok()) return vote.status();
  return vote->vote;
}

Status RemoteParticipant::Commit(txn::TxnId txid) {
  return rpc::CallTyped<rpc::Void>(*rpc_, nid_, kOpTxnCommit,
                                   wire::TxnReq{txid})
      .status();
}

Status RemoteParticipant::Abort(txn::TxnId txid) {
  return rpc::CallTyped<rpc::Void>(*rpc_, nid_, kOpTxnAbort,
                                   wire::TxnReq{txid})
      .status();
}

// ---------------------------------------------------------------------------
// RemoteObjectStore
// ---------------------------------------------------------------------------

Result<storage::ObjectId> RemoteObjectStore::Create(storage::ContainerId cid) {
  if (cid != cap_.cid) {
    return PermissionDenied("capability is for a different container");
  }
  return client_->CreateObject(server_, cap_);
}
Status RemoteObjectStore::CreateWithId(storage::ContainerId cid,
                                       storage::ObjectId oid) {
  if (cid != cap_.cid) {
    return PermissionDenied("capability is for a different container");
  }
  return client_->CreateObjectAt(server_, cap_, oid);
}
Status RemoteObjectStore::Remove(storage::ObjectId oid) {
  return client_->RemoveObject(server_, cap_, oid);
}
Status RemoteObjectStore::Write(storage::ObjectId oid, std::uint64_t offset,
                                ByteSpan data) {
  return client_->WriteObject(server_, cap_, oid, offset, data);
}
Result<Buffer> RemoteObjectStore::Read(storage::ObjectId oid,
                                       std::uint64_t offset,
                                       std::uint64_t length) {
  return client_->ReadObjectAlloc(server_, cap_, oid, offset, length);
}
Result<util::SharedSlice> RemoteObjectStore::ReadSlice(storage::ObjectId oid,
                                                       std::uint64_t offset,
                                                       std::uint64_t length) {
  return client_->ReadObjectSlice(server_, cap_, oid, offset, length);
}
Status RemoteObjectStore::Truncate(storage::ObjectId oid, std::uint64_t size) {
  return client_->TruncateObject(server_, cap_, oid, size);
}
Result<storage::ObjAttr> RemoteObjectStore::GetAttr(storage::ObjectId oid) {
  return client_->GetAttr(server_, cap_, oid);
}
Result<std::vector<storage::ObjectId>> RemoteObjectStore::List(
    storage::ContainerId cid) {
  if (cid != cap_.cid) {
    return PermissionDenied("capability is for a different container");
  }
  return client_->ListObjects(server_, cap_);
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

Client::Client(std::shared_ptr<portals::Nic> nic, Deployment deployment,
               rpc::ClientOptions rpc_options)
    : nic_(nic), deployment_(std::move(deployment)), rpc_(nic, rpc_options) {
  route_.epoch = 1;
  route_.primaries = deployment_.naming_shards.empty()
                         ? std::vector<portals::Nid>{deployment_.naming}
                         : deployment_.naming_shards;
  route_.standbys = deployment_.naming_standbys;
  route_.standbys.resize(route_.primaries.size(), portals::kInvalidNid);
}

// ---- Shard routing ---------------------------------------------------------

std::uint32_t Client::naming_shard_count() const {
  std::lock_guard<std::mutex> lock(route_mutex_);
  return static_cast<std::uint32_t>(route_.primaries.size());
}

std::uint64_t Client::shard_route_epoch() const {
  std::lock_guard<std::mutex> lock(route_mutex_);
  return route_.epoch;
}

std::uint32_t Client::ShardForPathRoute(std::string_view path) const {
  std::lock_guard<std::mutex> lock(route_mutex_);
  return naming::ShardMap::ShardForHash(
      naming::ShardMap::HashPath(path),
      static_cast<std::uint32_t>(route_.primaries.size()));
}

std::uint32_t Client::ShardForOidRoute(storage::ObjectId oid) const {
  std::lock_guard<std::mutex> lock(route_mutex_);
  const auto count = static_cast<std::uint32_t>(route_.primaries.size());
  if (count <= 1) return 0;
  // Replicated oids are minted shard-striped, so ownership decodes from the
  // sequence number itself (see ReplicaMapOptions::shard_index).
  return static_cast<std::uint32_t>(
      (oid.value & ~storage::kReplicatedOidBit) % count);
}

portals::Nid Client::ShardPrimary(std::uint32_t shard) const {
  std::lock_guard<std::mutex> lock(route_mutex_);
  if (shard >= route_.primaries.size()) return portals::kInvalidNid;
  return route_.primaries[shard];
}

portals::Nid Client::ShardStandby(std::uint32_t shard) const {
  std::lock_guard<std::mutex> lock(route_mutex_);
  if (shard >= route_.standbys.size()) return portals::kInvalidNid;
  return route_.standbys[shard];
}

Status Client::RefreshShardRoute() {
  // Any live shard member can serve the map (the op is served outside the
  // role gate, so probing a passive standby does not trigger takeover).
  std::vector<portals::Nid> candidates;
  {
    std::lock_guard<std::mutex> lock(route_mutex_);
    candidates = route_.primaries;
    candidates.insert(candidates.end(), route_.standbys.begin(),
                      route_.standbys.end());
  }
  Status last = Unavailable("no naming shard reachable for a map refresh");
  for (portals::Nid nid : candidates) {
    if (nid == portals::kInvalidNid) continue;
    auto rep = rpc::CallTyped<wire::ShardMapRep>(rpc_, nid, kOpNameShardMap,
                                                 rpc::Void{});
    if (!rep.ok()) {
      last = rep.status();
      continue;
    }
    std::lock_guard<std::mutex> lock(route_mutex_);
    if (rep->epoch >= route_.epoch &&
        rep->primaries.size() == route_.primaries.size()) {
      route_.epoch = rep->epoch;
      route_.primaries.assign(rep->primaries.begin(), rep->primaries.end());
      route_.standbys.assign(rep->standbys.begin(), rep->standbys.end());
      route_.standbys.resize(route_.primaries.size(), portals::kInvalidNid);
    }
    return OkStatus();
  }
  return last;
}

namespace {

/// Transport-level failures worth retrying on the shard's warm standby.
/// Deliberately narrower than the replication chain's FailoverWorthy:
/// kNotFound is an application answer for naming (missing name), not a
/// reason to wake the standby.
bool NamingFailoverWorthy(const Status& status) {
  return status.code() == ErrorCode::kTimeout ||
         status.code() == ErrorCode::kUnavailable;
}

}  // namespace

template <typename Rep, typename Req>
Result<Rep> Client::NamingCall(std::uint32_t shard, rpc::Opcode op,
                               const Req& req) {
  constexpr int kMaxAttempts = 4;
  Status last = OkStatus();
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    const portals::Nid primary = ShardPrimary(shard);
    auto rep = rpc::CallTyped<Rep>(rpc_, primary, op, req);
    if (rep.ok()) return rep;
    last = rep.status();
    if (last.code() == ErrorCode::kWrongShard) {
      // Stale route (shard moved under us, or a deposed primary fenced the
      // call): refresh the epoch-stamped map and retry.
      wrong_shard_retries_.fetch_add(1, std::memory_order_relaxed);
      (void)RefreshShardRoute();
      continue;
    }
    if (!NamingFailoverWorthy(last)) return rep;
    const portals::Nid standby = ShardStandby(shard);
    if (standby == portals::kInvalidNid || standby == primary) return rep;
    // Primary unreachable: the standby's first admitted op triggers its
    // takeover (log replay + promote).  Refresh afterwards so subsequent
    // calls route straight to the new primary.
    naming_failovers_.fetch_add(1, std::memory_order_relaxed);
    auto retry = rpc::CallTyped<Rep>(rpc_, standby, op, req);
    if (retry.ok()) {
      (void)RefreshShardRoute();
      return retry;
    }
    last = retry.status();
    if (last.code() == ErrorCode::kWrongShard) {
      wrong_shard_retries_.fetch_add(1, std::memory_order_relaxed);
      (void)RefreshShardRoute();
      continue;
    }
    return retry;
  }
  return Status{last.code(),
                "naming shard route did not converge: " + last.message()};
}

Result<portals::Nid> Client::StorageNid(std::uint32_t server) const {
  if (server >= deployment_.storage.size()) {
    return InvalidArgument("no such storage server index");
  }
  return deployment_.storage[server];
}

Result<security::Credential> Client::Login(const std::string& principal,
                                           const std::string& secret) {
  auto handle = LoginAsync(principal, secret);
  if (!handle.ok()) return handle.status();
  return ResolveLogin(handle->Await());
}

Result<rpc::CallHandle> Client::LoginAsync(const std::string& principal,
                                           const std::string& secret) {
  return rpc::CallTypedAsync(rpc_, deployment_.authn, kOpLogin,
                             wire::LoginReq{principal, secret});
}

Result<security::Credential> Client::ResolveLogin(Result<Buffer> reply) {
  auto rep = rpc::ResolveTyped<wire::CredentialRep>(std::move(reply));
  if (!rep.ok()) return rep.status();
  return rep->cred;
}

Status Client::RevokeCred(std::uint64_t cred_id) {
  return rpc::CallTyped<rpc::Void>(rpc_, deployment_.authn, kOpRevokeCred,
                                   wire::RevokeCredReq{cred_id})
      .status();
}

Result<storage::ContainerId> Client::CreateContainer(
    const security::Credential& cred) {
  auto rep = rpc::CallTyped<wire::CreateContainerRep>(
      rpc_, deployment_.authz, kOpCreateContainer,
      wire::CreateContainerReq{cred});
  if (!rep.ok()) return rep.status();
  return storage::ContainerId{rep->cid};
}

Result<security::Capability> Client::GetCap(const security::Credential& cred,
                                            storage::ContainerId cid,
                                            std::uint32_t ops) {
  auto handle = GetCapAsync(cred, cid, ops);
  if (!handle.ok()) return handle.status();
  return ResolveGetCap(handle->Await());
}

Result<rpc::CallHandle> Client::GetCapAsync(const security::Credential& cred,
                                            storage::ContainerId cid,
                                            std::uint32_t ops) {
  return rpc::CallTypedAsync(rpc_, deployment_.authz, kOpGetCap,
                             wire::GetCapReq{cred, cid.value, ops});
}

Result<security::Capability> Client::ResolveGetCap(Result<Buffer> reply) {
  auto rep = rpc::ResolveTyped<wire::CapabilityRep>(std::move(reply));
  if (!rep.ok()) return rep.status();
  return rep->cap;
}

Result<security::Capability> Client::RefreshCap(
    const security::Credential& cred, const security::Capability& cap) {
  auto rep = rpc::CallTyped<wire::CapabilityRep>(
      rpc_, deployment_.authz, kOpRefreshCap, wire::RefreshCapReq{cred, cap});
  if (!rep.ok()) return rep.status();
  return rep->cap;
}

Status Client::SetGrant(const security::Credential& cred,
                        storage::ContainerId cid, security::Uid grantee,
                        std::uint32_t ops) {
  return rpc::CallTyped<rpc::Void>(
             rpc_, deployment_.authz, kOpSetGrant,
             wire::SetGrantReq{cred, cid.value, grantee, ops})
      .status();
}

Status Client::RevokeCap(const security::Credential& cred,
                         std::uint64_t cap_id) {
  return rpc::CallTyped<rpc::Void>(rpc_, deployment_.authz,
                                   kOpRevokeCapability,
                                   wire::RevokeCapReq{cred, cap_id})
      .status();
}

Result<storage::ObjectId> Client::CreateObject(std::uint32_t server,
                                               const security::Capability& cap,
                                               txn::TxnId txid) {
  auto pending = CreateObjectAsync(server, cap, txid);
  if (!pending.ok()) return pending.status();
  return pending->Await();
}

Result<PendingCreate> Client::CreateObjectAsync(std::uint32_t server,
                                                const security::Capability& cap,
                                                txn::TxnId txid) {
  auto nid = StorageNid(server);
  if (!nid.ok()) return nid.status();
  auto handle = rpc::CallTypedAsync(rpc_, *nid, kOpObjCreate,
                                    wire::ObjCreateReq{cap, txid});
  if (!handle.ok()) return handle.status();
  return PendingCreate(std::move(*handle));
}

Status Client::WriteObject(std::uint32_t server,
                           const security::Capability& cap,
                           storage::ObjectId oid, std::uint64_t offset,
                           ByteSpan data) {
  auto io = WriteObjectAsync(server, cap, oid, offset, data);
  if (!io.ok()) return io.status();
  auto n = io->Await();
  return n.ok() ? OkStatus() : n.status();
}

Result<PendingIo> Client::WriteObjectAsync(std::uint32_t server,
                                           const security::Capability& cap,
                                           storage::ObjectId oid,
                                           std::uint64_t offset,
                                           ByteSpan data) {
  auto nid = StorageNid(server);
  if (!nid.ok()) return nid.status();
  rpc::CallOptions options;
  options.bulk_out = data;  // registered for the server to pull
  auto handle = rpc::CallTypedAsync(
      rpc_, *nid, kOpObjWrite, wire::ObjWriteReq{cap, oid.value, offset},
      options);
  if (!handle.ok()) return handle.status();
  return PendingIo(std::move(*handle), /*decode_reply=*/false, data.size());
}

Result<PendingIo> Client::WriteObjectSliceAsync(std::uint32_t server,
                                                const security::Capability& cap,
                                                storage::ObjectId oid,
                                                std::uint64_t offset,
                                                const util::SharedSlice& data) {
  auto nid = StorageNid(server);
  if (!nid.ok()) return nid.status();
  rpc::CallOptions options;
  // Registered by reference; the NIC match entry holds a ref until the call
  // completes, so the bytes survive even if the caller drops the slice.
  options.bulk_out_slice = data;
  auto handle = rpc::CallTypedAsync(
      rpc_, *nid, kOpObjWrite, wire::ObjWriteReq{cap, oid.value, offset},
      options);
  if (!handle.ok()) return handle.status();
  return PendingIo(std::move(*handle), /*decode_reply=*/false, data.size());
}

Status Client::WriteObjectSlice(std::uint32_t server,
                                const security::Capability& cap,
                                storage::ObjectId oid, std::uint64_t offset,
                                const util::SharedSlice& data) {
  auto io = WriteObjectSliceAsync(server, cap, oid, offset, data);
  if (!io.ok()) return io.status();
  auto n = io->Await();
  return n.ok() ? OkStatus() : n.status();
}

Result<std::uint64_t> Client::ReadObject(std::uint32_t server,
                                         const security::Capability& cap,
                                         storage::ObjectId oid,
                                         std::uint64_t offset,
                                         MutableByteSpan out) {
  auto io = ReadObjectAsync(server, cap, oid, offset, out);
  if (!io.ok()) return io.status();
  return io->Await();
}

Result<PendingIo> Client::ReadObjectAsync(std::uint32_t server,
                                          const security::Capability& cap,
                                          storage::ObjectId oid,
                                          std::uint64_t offset,
                                          MutableByteSpan out) {
  auto nid = StorageNid(server);
  if (!nid.ok()) return nid.status();
  rpc::CallOptions options;
  options.bulk_in = out;  // registered for the server to push
  auto handle = rpc::CallTypedAsync(
      rpc_, *nid, kOpObjRead,
      wire::ObjReadReq{cap, oid.value, offset, out.size()}, options);
  if (!handle.ok()) return handle.status();
  return PendingIo(std::move(*handle), /*decode_reply=*/true, out.size());
}

Result<PendingSliceIo> Client::ReadObjectSliceAsync(
    std::uint32_t server, const security::Capability& cap,
    storage::ObjectId oid, std::uint64_t offset, std::uint64_t length) {
  auto nid = StorageNid(server);
  if (!nid.ok()) return nid.status();
  // No bulk_in region: the payload rides the reply frame as store-owned
  // slices and surfaces through PendingSliceIo::Await as a ref-counted
  // alias of the received bytes.
  auto handle = rpc::CallTypedAsync(
      rpc_, *nid, kOpObjReadSlice,
      wire::ObjReadReq{cap, oid.value, offset, length});
  if (!handle.ok()) return handle.status();
  return PendingSliceIo(std::move(*handle));
}

Result<util::SharedSlice> Client::ReadObjectSlice(std::uint32_t server,
                                                  const security::Capability& cap,
                                                  storage::ObjectId oid,
                                                  std::uint64_t offset,
                                                  std::uint64_t length) {
  auto io = ReadObjectSliceAsync(server, cap, oid, offset, length);
  if (!io.ok()) return io.status();
  return io->Await();
}

Result<Buffer> Client::ReadObjectAlloc(std::uint32_t server,
                                       const security::Capability& cap,
                                       storage::ObjectId oid,
                                       std::uint64_t offset,
                                       std::uint64_t length) {
  Buffer out(length, 0);
  auto n = ReadObject(server, cap, oid, offset, MutableByteSpan(out));
  if (!n.ok()) return n.status();
  out.resize(static_cast<std::size_t>(*n));
  return out;
}

Status Client::RemoveObject(std::uint32_t server,
                            const security::Capability& cap,
                            storage::ObjectId oid, txn::TxnId txid) {
  auto nid = StorageNid(server);
  if (!nid.ok()) return nid.status();
  return rpc::CallTyped<rpc::Void>(rpc_, *nid, kOpObjRemove,
                                   wire::ObjRemoveReq{cap, oid.value, txid})
      .status();
}

Result<storage::ObjAttr> Client::GetAttr(std::uint32_t server,
                                         const security::Capability& cap,
                                         storage::ObjectId oid) {
  auto handle = GetAttrAsync(server, cap, oid);
  if (!handle.ok()) return handle.status();
  return ResolveGetAttr(handle->Await());
}

Result<rpc::CallHandle> Client::GetAttrAsync(std::uint32_t server,
                                             const security::Capability& cap,
                                             storage::ObjectId oid) {
  auto nid = StorageNid(server);
  if (!nid.ok()) return nid.status();
  return rpc::CallTypedAsync(rpc_, *nid, kOpObjGetAttr,
                             wire::ObjGetAttrReq{cap, oid.value});
}

Result<storage::ObjAttr> Client::ResolveGetAttr(Result<Buffer> reply) {
  auto rep = rpc::ResolveTyped<wire::ObjAttrRep>(std::move(reply));
  if (!rep.ok()) return rep.status();
  return rep->attr;
}

Result<std::vector<storage::ObjectId>> Client::ListObjects(
    std::uint32_t server, const security::Capability& cap) {
  auto nid = StorageNid(server);
  if (!nid.ok()) return nid.status();
  auto rep = rpc::CallTyped<wire::ObjListRep>(rpc_, *nid, kOpObjList,
                                              wire::ObjListReq{cap});
  if (!rep.ok()) return rep.status();
  std::vector<storage::ObjectId> out;
  out.reserve(rep->oids.size());
  for (std::uint64_t oid : rep->oids) out.push_back(storage::ObjectId{oid});
  return out;
}

Status Client::TruncateObject(std::uint32_t server,
                              const security::Capability& cap,
                              storage::ObjectId oid, std::uint64_t size) {
  auto nid = StorageNid(server);
  if (!nid.ok()) return nid.status();
  return rpc::CallTyped<rpc::Void>(rpc_, *nid, kOpObjTruncate,
                                   wire::ObjTruncateReq{cap, oid.value, size})
      .status();
}

Result<Client::FilterOutcome> Client::FilterObject(
    std::uint32_t server, const security::Capability& cap,
    storage::ObjectId oid, std::uint64_t offset, std::uint64_t length,
    const FilterSpec& spec, MutableByteSpan result) {
  auto nid = StorageNid(server);
  if (!nid.ok()) return nid.status();
  rpc::CallOptions options;
  options.bulk_in = result;  // the server pushes only the filter output
  auto rep = rpc::CallTyped<wire::ObjFilterRep>(
      rpc_, *nid, kOpObjFilter,
      wire::ObjFilterReq{cap, oid.value, offset, length, spec}, options);
  if (!rep.ok()) return rep.status();
  return FilterOutcome{rep->result_bytes, rep->input_bytes};
}

Result<Buffer> Client::FilterObjectAlloc(std::uint32_t server,
                                         const security::Capability& cap,
                                         storage::ObjectId oid,
                                         std::uint64_t offset,
                                         std::uint64_t length,
                                         const FilterSpec& spec) {
  // Worst case for the built-in filters: never larger than the input, but
  // histograms on tiny inputs can exceed it.
  const std::uint64_t worst =
      std::max<std::uint64_t>(length, 8ull * spec.bins + 64);
  Buffer out(static_cast<std::size_t>(worst), 0);
  auto outcome =
      FilterObject(server, cap, oid, offset, length, spec, MutableByteSpan(out));
  if (!outcome.ok()) return outcome.status();
  out.resize(static_cast<std::size_t>(outcome->result_bytes));
  return out;
}

// ---- Replication (DESIGN.md §15) -------------------------------------------

Result<ReplicaChain> Client::PlaceReplicated(storage::ContainerId cid,
                                             std::uint32_t preferred,
                                             std::uint32_t factor) {
  // Placements partition by preferred head so every shard mints from its
  // own (striped) oid space; the full retry/failover protocol applies.
  const std::uint32_t shard = preferred % naming_shard_count();
  auto rep = NamingCall<wire::ReplicaChainRep>(
      shard, kOpReplicaPlace, wire::ReplicaPlaceReq{cid.value, preferred,
                                                    factor});
  if (!rep.ok()) return rep.status();
  return ReplicaChain{storage::ObjectId{rep->oid},
                      storage::ContainerId{rep->cid},
                      std::move(rep->servers)};
}

Result<rpc::CallHandle> Client::PlaceReplicatedAsync(storage::ContainerId cid,
                                                     std::uint32_t preferred,
                                                     std::uint32_t factor) {
  return rpc::CallTypedAsync(
      rpc_, ShardPrimary(preferred % naming_shard_count()), kOpReplicaPlace,
      wire::ReplicaPlaceReq{cid.value, preferred, factor});
}

Result<ReplicaChain> Client::ResolvePlaceReplicated(Result<Buffer> reply) {
  auto rep = rpc::ResolveTyped<wire::ReplicaChainRep>(std::move(reply));
  if (!rep.ok()) return rep.status();
  return ReplicaChain{storage::ObjectId{rep->oid},
                      storage::ContainerId{rep->cid},
                      std::move(rep->servers)};
}

Result<ReplicaChain> Client::LookupReplicas(storage::ObjectId oid) {
  auto rep = NamingCall<wire::ReplicaChainRep>(
      ShardForOidRoute(oid), kOpReplicaLookup,
      wire::ReplicaLookupReq{oid.value});
  if (!rep.ok()) return rep.status();
  return ReplicaChain{storage::ObjectId{rep->oid},
                      storage::ContainerId{rep->cid},
                      std::move(rep->servers)};
}

Status Client::ReportStaleReplicas(storage::ObjectId oid,
                                   std::uint64_t version,
                                   const std::vector<std::uint32_t>& stale) {
  stale_reports_.fetch_add(1, std::memory_order_relaxed);
  return NamingCall<rpc::Void>(ShardForOidRoute(oid), kOpReplicaReport,
                               wire::ReplicaReportReq{oid.value, version,
                                                      stale})
      .status();
}

Result<naming::ReplicaAuditCounts> Client::AuditReplicas() {
  // Each shard audits its own oid space; the registry-wide answer is the sum.
  naming::ReplicaAuditCounts counts;
  const std::uint32_t shards = naming_shard_count();
  for (std::uint32_t shard = 0; shard < shards; ++shard) {
    auto rep = NamingCall<wire::ReplicaAuditRep>(shard, kOpReplicaAudit,
                                                 rpc::Void{});
    if (!rep.ok()) return rep.status();
    counts.objects += rep->objects;
    counts.fully_replicated += rep->fully_replicated;
    counts.under_replicated += rep->under_replicated;
    counts.stale_members += rep->stale_members;
  }
  return counts;
}

Status Client::CreateObjectAt(std::uint32_t server,
                              const security::Capability& cap,
                              storage::ObjectId oid, txn::TxnId txid) {
  auto handle = CreateObjectAtAsync(server, cap, oid, txid);
  if (!handle.ok()) return handle.status();
  return rpc::ResolveTyped<rpc::Void>(handle->Await()).status();
}

Result<rpc::CallHandle> Client::CreateObjectAtAsync(
    std::uint32_t server, const security::Capability& cap,
    storage::ObjectId oid, txn::TxnId txid) {
  auto nid = StorageNid(server);
  if (!nid.ok()) return nid.status();
  return rpc::CallTypedAsync(rpc_, *nid, kOpObjCreateAt,
                             wire::ObjCreateAtReq{cap, oid.value, txid});
}

Result<ReplicaChain> Client::CreateReplicatedObject(
    const security::Capability& cap, std::uint32_t preferred,
    std::uint32_t factor, txn::TxnId txid) {
  auto chain = PlaceReplicated(cap.cid, preferred, factor);
  if (!chain.ok()) return chain.status();
  std::vector<std::uint32_t> stale;
  Status first_error = OkStatus();
  std::size_t created = 0;
  for (std::uint32_t member : chain->servers) {
    Status s = CreateObjectAt(member, cap, chain->oid, txid);
    if (s.ok()) {
      ++created;
    } else {
      if (first_error.ok()) first_error = s;
      stale.push_back(member);
    }
  }
  if (created == 0) return first_error;
  // Members unreachable at create time start out stale; the background
  // replicator recreates them from a survivor.
  if (!stale.empty()) (void)ReportStaleReplicas(chain->oid, 0, stale);
  return chain;
}

Result<PendingReplicatedWrite> Client::WriteReplicatedSliceAsync(
    const security::Capability& cap, const ReplicaChain& chain,
    std::uint64_t offset, const util::SharedSlice& data) {
  if (chain.servers.empty()) return InvalidArgument("empty replica chain");
  replicated_writes_.fetch_add(1, std::memory_order_relaxed);
  ReplicaChain ordered = chain;
  // Prefer a head whose breaker is closed: a tripped head only fails fast
  // and forces a failover reissue.  Rotating (not reordering) preserves the
  // cyclic placement order for the downstream hops.
  for (std::size_t i = 0; i < ordered.servers.size(); ++i) {
    auto nid = StorageNid(ordered.servers[i]);
    if (nid.ok() && !rpc_.BreakerOpen(*nid)) {
      std::rotate(ordered.servers.begin(), ordered.servers.begin() + i,
                  ordered.servers.end());
      break;
    }
  }
  PendingReplicatedWrite pending(this, cap, std::move(ordered), offset, data);
  LWFS_RETURN_IF_ERROR(pending.Issue());
  return pending;
}

Status Client::WriteReplicatedSlice(const security::Capability& cap,
                                    const ReplicaChain& chain,
                                    std::uint64_t offset,
                                    const util::SharedSlice& data) {
  auto io = WriteReplicatedSliceAsync(cap, chain, offset, data);
  if (!io.ok()) return io.status();
  auto n = io->Await();
  return n.ok() ? OkStatus() : n.status();
}

Status Client::WriteReplicated(const security::Capability& cap,
                               const ReplicaChain& chain, std::uint64_t offset,
                               ByteSpan data) {
  // Borrowed view is safe here: the span outlives the synchronous Await.
  return WriteReplicatedSlice(cap, chain, offset,
                              util::SharedSlice::External(data));
}

Result<std::uint64_t> Client::ReadReplicated(const security::Capability& cap,
                                             const ReplicaChain& chain,
                                             std::uint64_t offset,
                                             MutableByteSpan out) {
  auto slice = ReadReplicatedSlice(cap, chain, offset, out.size());
  if (!slice.ok()) return slice.status();
  // Final delivery into the caller's span — outside the kStage+kStore
  // budget, like the RPC layer's own gather fallbacks.
  const std::size_t n = std::min<std::size_t>(slice->size(), out.size());
  if (n > 0) {
    std::memcpy(out.data(), slice->span().data(), n);
    LWFS_COUNT_COPY(util::CopyKind::kDeliver, n);
  }
  return n;
}

Result<util::SharedSlice> Client::ReadReplicatedSlice(
    const security::Capability& cap, const ReplicaChain& chain,
    std::uint64_t offset, std::uint64_t length) {
  if (chain.servers.empty()) return InvalidArgument("empty replica chain");

  // Plain path: hedging off or nowhere to hedge — sequential failover.
  if (chain.servers.size() == 1 || hedge_after_us_ == 0) {
    Status last = OkStatus();
    for (std::size_t i = 0; i < chain.servers.size(); ++i) {
      auto got =
          ReadObjectSlice(chain.servers[i], cap, chain.oid, offset, length);
      if (got.ok()) return got;
      last = got.status();
      if (!FailoverWorthy(last)) return last;
      read_failovers_.fetch_add(1, std::memory_order_relaxed);
    }
    return last;
  }

  // Hedged path.  Attempts register no landing buffer at all: each reply
  // arrives as a ref-counted slice in its own call state, so a losing
  // attempt never pins memory proportional to the read size — when its
  // (abandoned) reply lands, the completion callback tallies the payload
  // into hedge_loser_bytes and the slice's refcount drops on the spot.
  struct Attempt {
    PendingSliceIo io;
    bool is_hedge = false;
    bool dead = false;
  };
  util::Clock* clock = rpc_.clock();
  std::vector<Attempt> attempts;
  std::size_t next_member = 0;
  Status last = Unavailable("no replica reachable");

  auto issue = [&](bool is_hedge) -> bool {
    while (next_member < chain.servers.size()) {
      const std::uint32_t member = chain.servers[next_member++];
      auto io = ReadObjectSliceAsync(member, cap, chain.oid, offset, length);
      if (!io.ok()) {
        last = io.status();
        if (!FailoverWorthy(last)) return false;
        // Unreachable at issue time (down node, open breaker): fail over
        // straight to the next member.
        read_failovers_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      Attempt a;
      a.io = std::move(*io);
      a.is_hedge = is_hedge;
      attempts.push_back(std::move(a));
      return true;
    }
    return false;
  };

  // Account a still-inflight loser the moment its reply lands.  The
  // callback captures its own handle, which keeps the call state alive
  // until the one-shot callback is extracted and destroyed at completion
  // — at which point the loser's bulk slice is released too.
  auto abandon = [this](Attempt& a) {
    rpc::CallHandle h = a.io.handle();
    auto tally = hedge_loser_bytes_;
    h.OnComplete([h, tally](const Result<Buffer>&) {
      tally->fetch_add(h.ReplyBulk().size(), std::memory_order_relaxed);
    });
  };

  if (!issue(/*is_hedge=*/false)) return last;

  // Fire the hedge immediately if the primary's breaker is already open;
  // otherwise arm it for `hedge_after_us` on the deployment clock.
  bool hedge_fired = false;
  {
    auto primary = StorageNid(chain.servers[0]);
    if (primary.ok() && rpc_.BreakerOpen(*primary)) {
      if (issue(/*is_hedge=*/true)) {
        hedged_reads_.fetch_add(1, std::memory_order_relaxed);
      }
      hedge_fired = true;
    }
  }
  const util::Clock::TimePoint hedge_at =
      clock->Now() + std::chrono::microseconds(hedge_after_us_);
  constexpr auto kPollStep = std::chrono::microseconds(50);

  for (;;) {
    std::size_t live = 0;
    for (Attempt& a : attempts) {
      if (a.dead) continue;
      Result<util::SharedSlice> got = util::SharedSlice();
      if (!a.io.TryAwait(&got)) {
        ++live;
        continue;
      }
      if (got.ok()) {
        for (Attempt& b : attempts) {
          if (&b != &a && !b.dead) abandon(b);
        }
        if (a.is_hedge) hedge_wins_.fetch_add(1, std::memory_order_relaxed);
        return std::move(*got);
      }
      a.dead = true;
      last = got.status();
      if (!FailoverWorthy(last)) return last;
      read_failovers_.fetch_add(1, std::memory_order_relaxed);
      if (issue(a.is_hedge)) ++live;  // replace the dead attempt
    }
    if (live == 0) return last;
    if (!hedge_fired && clock->Now() >= hedge_at) {
      hedge_fired = true;
      if (issue(/*is_hedge=*/true)) {
        hedged_reads_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    clock->SleepFor(kPollStep);
  }
}

ReplicationStats Client::replication_stats() const {
  ReplicationStats s;
  s.replicated_writes = replicated_writes_.load(std::memory_order_relaxed);
  s.write_failovers = write_failovers_.load(std::memory_order_relaxed);
  s.degraded_writes = degraded_writes_.load(std::memory_order_relaxed);
  s.stale_reports = stale_reports_.load(std::memory_order_relaxed);
  s.hedged_reads = hedged_reads_.load(std::memory_order_relaxed);
  s.hedge_wins = hedge_wins_.load(std::memory_order_relaxed);
  s.read_failovers = read_failovers_.load(std::memory_order_relaxed);
  s.hedge_loser_bytes = hedge_loser_bytes_->load(std::memory_order_relaxed);
  return s;
}

// ---- Naming ----------------------------------------------------------------

Status Client::Mkdir(std::string_view path, bool recursive) {
  // Directories are replicated on every shard so each shard can resolve
  // its own leaves without cross-shard hops; fan the mkdir out.
  const std::uint32_t shards = naming_shard_count();
  for (std::uint32_t shard = 0; shard < shards; ++shard) {
    Status s = NamingCall<rpc::Void>(shard, kOpNameMkdir,
                                     wire::MkdirReq{std::string(path),
                                                    recursive})
                   .status();
    if (!s.ok()) return s;
  }
  return OkStatus();
}

Status Client::LinkName(std::string_view path, const storage::ObjectRef& ref) {
  return NamingCall<rpc::Void>(ShardForPathRoute(path), kOpNameLink,
                               wire::LinkReq{std::string(path), ref})
      .status();
}

Status Client::StageLinkName(txn::TxnId txid, std::string_view path,
                             const storage::ObjectRef& ref) {
  return NamingCall<rpc::Void>(ShardForPathRoute(path), kOpNameStageLink,
                               wire::StageLinkReq{txid, std::string(path),
                                                  ref})
      .status();
}

Status Client::StageUnlinkName(txn::TxnId txid, std::string_view path) {
  return NamingCall<rpc::Void>(ShardForPathRoute(path), kOpNameStageUnlink,
                               wire::StageUnlinkReq{txid, std::string(path)})
      .status();
}

Result<storage::ObjectRef> Client::LookupName(std::string_view path) {
  auto rep = NamingCall<wire::ObjectRefRep>(ShardForPathRoute(path),
                                            kOpNameLookup,
                                            wire::PathReq{std::string(path)});
  if (!rep.ok()) return rep.status();
  return rep->ref;
}

Status Client::UnlinkName(std::string_view path) {
  return NamingCall<rpc::Void>(ShardForPathRoute(path), kOpNameUnlink,
                               wire::PathReq{std::string(path)})
      .status();
}

Status Client::RmdirName(std::string_view path) {
  const std::uint32_t shards = naming_shard_count();
  if (shards > 1) {
    // "Empty" means empty on every shard.  Probe before removing anything
    // so a non-empty shard cannot strand a half-removed directory.
    for (std::uint32_t shard = 0; shard < shards; ++shard) {
      auto rep = NamingCall<wire::ListNamesRep>(
          shard, kOpNameList, wire::PathReq{std::string(path)});
      if (!rep.ok()) return rep.status();
      if (!rep->entries.empty()) {
        return FailedPrecondition("directory not empty");
      }
    }
  }
  for (std::uint32_t shard = 0; shard < shards; ++shard) {
    Status s = NamingCall<rpc::Void>(shard, kOpNameRmdir,
                                     wire::PathReq{std::string(path)})
                   .status();
    if (!s.ok()) return s;
  }
  return OkStatus();
}

Status Client::RenameName(std::string_view from, std::string_view to) {
  const std::uint32_t src = ShardForPathRoute(from);
  const std::uint32_t dst = ShardForPathRoute(to);
  if (src != dst) {
    return FailedPrecondition(
        "cross-shard rename needs a transaction (RenameNameTxn)");
  }
  return NamingCall<rpc::Void>(src, kOpNameRename,
                               wire::RenameReq{std::string(from),
                                               std::string(to)})
      .status();
}

Status Client::RenameNameTxn(std::string_view from, std::string_view to,
                             std::uint32_t journal_server,
                             const security::Capability& journal_cap) {
  const std::uint32_t src = ShardForPathRoute(from);
  const std::uint32_t dst = ShardForPathRoute(to);
  if (src == dst) return RenameName(from, to);  // natively atomic at one shard

  auto ref = LookupName(from);
  if (!ref.ok()) return ref.status();

  TxnParticipants participants;
  participants.naming_shards = {src, dst};
  auto txn = BeginTxn(journal_server, journal_cap, participants);
  if (!txn.ok()) return txn.status();
  Status staged = StageLinkName((*txn)->id(), to, *ref);
  if (staged.ok()) staged = StageUnlinkName((*txn)->id(), from);
  if (!staged.ok()) {
    (void)(*txn)->Abort();
    return staged;
  }
  return (*txn)->Commit();
}

Result<std::vector<naming::DirEntry>> Client::ListNames(
    std::string_view path) {
  const std::uint32_t shards = naming_shard_count();
  std::vector<naming::DirEntry> merged;
  for (std::uint32_t shard = 0; shard < shards; ++shard) {
    auto rep = NamingCall<wire::ListNamesRep>(
        shard, kOpNameList, wire::PathReq{std::string(path)});
    if (!rep.ok()) return rep.status();
    if (shards == 1) return std::move(rep->entries);
    for (naming::DirEntry& entry : rep->entries) {
      // Subdirectories exist on every shard; leaves are partitioned and
      // appear exactly once.
      if (entry.is_directory &&
          std::any_of(merged.begin(), merged.end(),
                      [&](const naming::DirEntry& seen) {
                        return seen.name == entry.name;
                      })) {
        continue;
      }
      merged.push_back(std::move(entry));
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const naming::DirEntry& a, const naming::DirEntry& b) {
              return a.name < b.name;
            });
  return merged;
}

// ---- Locks -------------------------------------------------------------------

Result<txn::LockId> Client::TryLock(const txn::LockKey& key,
                                    const txn::LockRange& range,
                                    txn::LockMode mode) {
  auto handle = TryLockAsync(key, range, mode);
  if (!handle.ok()) return handle.status();
  return ResolveTryLock(handle->Await());
}

Result<rpc::CallHandle> Client::TryLockAsync(const txn::LockKey& key,
                                             const txn::LockRange& range,
                                             txn::LockMode mode) {
  return rpc::CallTypedAsync(
      rpc_, deployment_.locks, kOpLockTry,
      wire::LockTryReq{key.container, key.resource, range.start, range.end,
                       mode == txn::LockMode::kExclusive});
}

Result<txn::LockId> Client::ResolveTryLock(Result<Buffer> reply) {
  auto rep = rpc::ResolveTyped<wire::LockIdRep>(std::move(reply));
  if (!rep.ok()) return rep.status();
  return rep->id;
}

Result<txn::LockId> Client::LockBlocking(const txn::LockKey& key,
                                         const txn::LockRange& range,
                                         txn::LockMode mode,
                                         std::chrono::milliseconds max_wait) {
  // Blocking wrapper over the shared retry schedule; event-driven clients
  // use the same schedule but arm a timer wake instead of sleeping.
  util::Clock* clock = rpc_.clock();
  txn::LockRetrySchedule retry(clock->Now(), max_wait);
  for (;;) {
    auto id = TryLock(key, range, mode);
    if (id.ok() || id.status().code() != ErrorCode::kResourceExhausted) {
      return id;
    }
    const auto next = retry.Next(clock->Now());
    if (!next.has_value()) return Timeout("lock wait timed out");
    clock->SleepUntil(*next);
  }
}

Status Client::Unlock(txn::LockId id) {
  auto handle = UnlockAsync(id);
  if (!handle.ok()) return handle.status();
  return ResolveUnlock(handle->Await());
}

Result<rpc::CallHandle> Client::UnlockAsync(txn::LockId id) {
  return rpc::CallTypedAsync(rpc_, deployment_.locks, kOpLockRelease,
                             wire::LockReleaseReq{id});
}

Status Client::ResolveUnlock(Result<Buffer> reply) {
  return rpc::ResolveTyped<rpc::Void>(std::move(reply)).status();
}

// ---- Transactions --------------------------------------------------------------

Result<std::unique_ptr<Transaction>> Client::BeginTxn(
    std::uint32_t journal_server, const security::Capability& journal_cap,
    const TxnParticipants& participants) {
  auto txn = std::make_unique<Transaction>();
  txn->journal_store_ =
      std::make_unique<RemoteObjectStore>(this, journal_server, journal_cap);
  auto journal =
      txn::Journal::Create(txn->journal_store_.get(), journal_cap.cid);
  if (!journal.ok()) return journal.status();
  txn->journal_ = std::make_unique<txn::Journal>(*journal);

  std::vector<txn::Participant*> raw;
  for (std::uint32_t server : participants.storage_servers) {
    auto nid = StorageNid(server);
    if (!nid.ok()) return nid.status();
    txn->stubs_.push_back(std::make_unique<RemoteParticipant>(
        &rpc_, *nid, "storage:" + std::to_string(server)));
    raw.push_back(txn->stubs_.back().get());
  }
  std::vector<std::uint32_t> naming_shards = participants.naming_shards;
  if (participants.naming &&
      std::find(naming_shards.begin(), naming_shards.end(), 0u) ==
          naming_shards.end()) {
    naming_shards.push_back(0);  // legacy flag = shard 0
  }
  const std::uint32_t shard_count = naming_shard_count();
  for (std::uint32_t shard : naming_shards) {
    if (shard >= shard_count) {
      return InvalidArgument("no such naming shard");
    }
    // Participant identity must match the shard service's 2PC name so
    // crash recovery can map journal records back to the right shard.
    const std::string name =
        shard_count <= 1 ? "naming" : "naming" + std::to_string(shard);
    txn->stubs_.push_back(std::make_unique<RemoteParticipant>(
        &rpc_, ShardPrimary(shard), name));
    raw.push_back(txn->stubs_.back().get());
  }

  txn->coordinator_ = std::make_unique<txn::Coordinator>(txn->journal_.get());
  auto txid = txn->coordinator_->Begin(std::move(raw));
  if (!txid.ok()) return txid.status();
  txn->id_ = *txid;
  return txn;
}

}  // namespace lwfs::core
