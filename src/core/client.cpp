#include "core/client.h"

#include <thread>

namespace lwfs::core {

// ---------------------------------------------------------------------------
// PendingIo / PendingCreate / Batch
// ---------------------------------------------------------------------------

Result<std::uint64_t> PendingIo::Resolve(Result<Buffer> reply,
                                         bool decode_reply,
                                         std::uint64_t nominal) {
  if (!reply.ok()) return reply.status();
  if (!decode_reply) return nominal;
  Decoder dec(*reply);
  return dec.GetU64();
}

Result<std::uint64_t> PendingIo::Await() {
  if (!handle_.valid()) {
    return FailedPrecondition("awaiting an empty io handle");
  }
  return Resolve(handle_.Await(), decode_reply_, nominal_);
}

bool PendingIo::TryAwait(Result<std::uint64_t>* out) {
  if (!handle_.valid()) return false;
  Result<Buffer> reply = Buffer{};
  if (!handle_.TryAwait(&reply)) return false;
  if (out != nullptr) *out = Resolve(std::move(reply), decode_reply_, nominal_);
  return true;
}

Result<storage::ObjectId> PendingCreate::Await() {
  if (!handle_.valid()) {
    return FailedPrecondition("awaiting an empty create handle");
  }
  auto reply = handle_.Await();
  if (!reply.ok()) return reply.status();
  Decoder dec(*reply);
  auto oid = dec.GetU64();
  if (!oid.ok()) return oid.status();
  return storage::ObjectId{*oid};
}

Status Batch::RetireOldest() {
  Op op = std::move(inflight_.front());
  inflight_.pop_front();
  auto n = op.io.Await();
  if (!n.ok()) {
    if (first_error_.ok()) first_error_ = n.status();
    return n.status();
  }
  if (op.bytes_read != nullptr) *op.bytes_read = *n;
  return OkStatus();
}

Status Batch::Write(std::uint32_t server, const security::Capability& cap,
                    storage::ObjectId oid, std::uint64_t offset,
                    ByteSpan data) {
  if (!first_error_.ok()) return first_error_;
  while (inflight_.size() >= window_) (void)RetireOldest();
  if (!first_error_.ok()) return first_error_;
  auto io = client_->WriteObjectAsync(server, cap, oid, offset, data);
  if (!io.ok()) {
    if (first_error_.ok()) first_error_ = io.status();
    return io.status();
  }
  inflight_.push_back(Op{std::move(*io), nullptr});
  return OkStatus();
}

Status Batch::Read(std::uint32_t server, const security::Capability& cap,
                   storage::ObjectId oid, std::uint64_t offset,
                   MutableByteSpan out, std::uint64_t* bytes_read) {
  if (!first_error_.ok()) return first_error_;
  while (inflight_.size() >= window_) (void)RetireOldest();
  if (!first_error_.ok()) return first_error_;
  auto io = client_->ReadObjectAsync(server, cap, oid, offset, out);
  if (!io.ok()) {
    if (first_error_.ok()) first_error_ = io.status();
    return io.status();
  }
  inflight_.push_back(Op{std::move(*io), bytes_read});
  return OkStatus();
}

Status Batch::Drain() {
  while (!inflight_.empty()) (void)RetireOldest();
  return first_error_;
}

// ---------------------------------------------------------------------------
// RemoteParticipant
// ---------------------------------------------------------------------------

Result<bool> RemoteParticipant::Prepare(txn::TxnId txid) {
  Encoder req;
  req.PutU64(txid);
  auto reply = rpc_->Call(nid_, kOpTxnPrepare, ByteSpan(req.buffer()));
  if (!reply.ok()) return reply.status();
  Decoder dec(*reply);
  return dec.GetBool();
}

Status RemoteParticipant::Commit(txn::TxnId txid) {
  Encoder req;
  req.PutU64(txid);
  auto reply = rpc_->Call(nid_, kOpTxnCommit, ByteSpan(req.buffer()));
  return reply.ok() ? OkStatus() : reply.status();
}

Status RemoteParticipant::Abort(txn::TxnId txid) {
  Encoder req;
  req.PutU64(txid);
  auto reply = rpc_->Call(nid_, kOpTxnAbort, ByteSpan(req.buffer()));
  return reply.ok() ? OkStatus() : reply.status();
}

// ---------------------------------------------------------------------------
// RemoteObjectStore
// ---------------------------------------------------------------------------

Result<storage::ObjectId> RemoteObjectStore::Create(storage::ContainerId cid) {
  if (cid != cap_.cid) {
    return PermissionDenied("capability is for a different container");
  }
  return client_->CreateObject(server_, cap_);
}
Status RemoteObjectStore::Remove(storage::ObjectId oid) {
  return client_->RemoveObject(server_, cap_, oid);
}
Status RemoteObjectStore::Write(storage::ObjectId oid, std::uint64_t offset,
                                ByteSpan data) {
  return client_->WriteObject(server_, cap_, oid, offset, data);
}
Result<Buffer> RemoteObjectStore::Read(storage::ObjectId oid,
                                       std::uint64_t offset,
                                       std::uint64_t length) {
  return client_->ReadObjectAlloc(server_, cap_, oid, offset, length);
}
Status RemoteObjectStore::Truncate(storage::ObjectId oid, std::uint64_t size) {
  return client_->TruncateObject(server_, cap_, oid, size);
}
Result<storage::ObjAttr> RemoteObjectStore::GetAttr(storage::ObjectId oid) {
  return client_->GetAttr(server_, cap_, oid);
}
Result<std::vector<storage::ObjectId>> RemoteObjectStore::List(
    storage::ContainerId cid) {
  if (cid != cap_.cid) {
    return PermissionDenied("capability is for a different container");
  }
  return client_->ListObjects(server_, cap_);
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

Client::Client(std::shared_ptr<portals::Nic> nic, Deployment deployment,
               rpc::ClientOptions rpc_options)
    : nic_(nic), deployment_(std::move(deployment)), rpc_(nic, rpc_options) {}

Result<portals::Nid> Client::StorageNid(std::uint32_t server) const {
  if (server >= deployment_.storage.size()) {
    return InvalidArgument("no such storage server index");
  }
  return deployment_.storage[server];
}

Result<security::Credential> Client::Login(const std::string& principal,
                                           const std::string& secret) {
  Encoder req;
  req.PutString(principal);
  req.PutString(secret);
  auto reply = rpc_.Call(deployment_.authn, kOpLogin, ByteSpan(req.buffer()));
  if (!reply.ok()) return reply.status();
  Decoder dec(*reply);
  return security::Credential::Decode(dec);
}

Status Client::RevokeCred(std::uint64_t cred_id) {
  Encoder req;
  req.PutU64(cred_id);
  auto reply =
      rpc_.Call(deployment_.authn, kOpRevokeCred, ByteSpan(req.buffer()));
  return reply.ok() ? OkStatus() : reply.status();
}

Result<storage::ContainerId> Client::CreateContainer(
    const security::Credential& cred) {
  Encoder req;
  cred.Encode(req);
  auto reply =
      rpc_.Call(deployment_.authz, kOpCreateContainer, ByteSpan(req.buffer()));
  if (!reply.ok()) return reply.status();
  Decoder dec(*reply);
  auto cid = dec.GetU64();
  if (!cid.ok()) return cid.status();
  return storage::ContainerId{*cid};
}

Result<security::Capability> Client::GetCap(const security::Credential& cred,
                                            storage::ContainerId cid,
                                            std::uint32_t ops) {
  Encoder req;
  cred.Encode(req);
  req.PutU64(cid.value);
  req.PutU32(ops);
  auto reply = rpc_.Call(deployment_.authz, kOpGetCap, ByteSpan(req.buffer()));
  if (!reply.ok()) return reply.status();
  Decoder dec(*reply);
  return security::Capability::Decode(dec);
}

Result<security::Capability> Client::RefreshCap(
    const security::Credential& cred, const security::Capability& cap) {
  Encoder req;
  cred.Encode(req);
  cap.Encode(req);
  auto reply =
      rpc_.Call(deployment_.authz, kOpRefreshCap, ByteSpan(req.buffer()));
  if (!reply.ok()) return reply.status();
  Decoder dec(*reply);
  return security::Capability::Decode(dec);
}

Status Client::SetGrant(const security::Credential& cred,
                        storage::ContainerId cid, security::Uid grantee,
                        std::uint32_t ops) {
  Encoder req;
  cred.Encode(req);
  req.PutU64(cid.value);
  req.PutU64(grantee);
  req.PutU32(ops);
  auto reply =
      rpc_.Call(deployment_.authz, kOpSetGrant, ByteSpan(req.buffer()));
  return reply.ok() ? OkStatus() : reply.status();
}

Status Client::RevokeCap(const security::Credential& cred,
                         std::uint64_t cap_id) {
  Encoder req;
  cred.Encode(req);
  req.PutU64(cap_id);
  auto reply = rpc_.Call(deployment_.authz, kOpRevokeCapability,
                         ByteSpan(req.buffer()));
  return reply.ok() ? OkStatus() : reply.status();
}

Result<storage::ObjectId> Client::CreateObject(std::uint32_t server,
                                               const security::Capability& cap,
                                               txn::TxnId txid) {
  auto pending = CreateObjectAsync(server, cap, txid);
  if (!pending.ok()) return pending.status();
  return pending->Await();
}

Result<PendingCreate> Client::CreateObjectAsync(std::uint32_t server,
                                                const security::Capability& cap,
                                                txn::TxnId txid) {
  auto nid = StorageNid(server);
  if (!nid.ok()) return nid.status();
  Encoder req;
  cap.Encode(req);
  req.PutU64(txid);
  auto handle = rpc_.CallAsync(*nid, kOpObjCreate, ByteSpan(req.buffer()));
  if (!handle.ok()) return handle.status();
  return PendingCreate(std::move(*handle));
}

Status Client::WriteObject(std::uint32_t server,
                           const security::Capability& cap,
                           storage::ObjectId oid, std::uint64_t offset,
                           ByteSpan data) {
  auto io = WriteObjectAsync(server, cap, oid, offset, data);
  if (!io.ok()) return io.status();
  auto n = io->Await();
  return n.ok() ? OkStatus() : n.status();
}

Result<PendingIo> Client::WriteObjectAsync(std::uint32_t server,
                                           const security::Capability& cap,
                                           storage::ObjectId oid,
                                           std::uint64_t offset,
                                           ByteSpan data) {
  auto nid = StorageNid(server);
  if (!nid.ok()) return nid.status();
  Encoder req;
  cap.Encode(req);
  req.PutU64(oid.value);
  req.PutU64(offset);
  rpc::CallOptions options;
  options.bulk_out = data;  // registered for the server to pull
  auto handle =
      rpc_.CallAsync(*nid, kOpObjWrite, ByteSpan(req.buffer()), options);
  if (!handle.ok()) return handle.status();
  return PendingIo(std::move(*handle), /*decode_reply=*/false, data.size());
}

Result<std::uint64_t> Client::ReadObject(std::uint32_t server,
                                         const security::Capability& cap,
                                         storage::ObjectId oid,
                                         std::uint64_t offset,
                                         MutableByteSpan out) {
  auto io = ReadObjectAsync(server, cap, oid, offset, out);
  if (!io.ok()) return io.status();
  return io->Await();
}

Result<PendingIo> Client::ReadObjectAsync(std::uint32_t server,
                                          const security::Capability& cap,
                                          storage::ObjectId oid,
                                          std::uint64_t offset,
                                          MutableByteSpan out) {
  auto nid = StorageNid(server);
  if (!nid.ok()) return nid.status();
  Encoder req;
  cap.Encode(req);
  req.PutU64(oid.value);
  req.PutU64(offset);
  req.PutU64(out.size());
  rpc::CallOptions options;
  options.bulk_in = out;  // registered for the server to push
  auto handle =
      rpc_.CallAsync(*nid, kOpObjRead, ByteSpan(req.buffer()), options);
  if (!handle.ok()) return handle.status();
  return PendingIo(std::move(*handle), /*decode_reply=*/true, out.size());
}

Result<Buffer> Client::ReadObjectAlloc(std::uint32_t server,
                                       const security::Capability& cap,
                                       storage::ObjectId oid,
                                       std::uint64_t offset,
                                       std::uint64_t length) {
  Buffer out(length, 0);
  auto n = ReadObject(server, cap, oid, offset, MutableByteSpan(out));
  if (!n.ok()) return n.status();
  out.resize(static_cast<std::size_t>(*n));
  return out;
}

Status Client::RemoveObject(std::uint32_t server,
                            const security::Capability& cap,
                            storage::ObjectId oid, txn::TxnId txid) {
  auto nid = StorageNid(server);
  if (!nid.ok()) return nid.status();
  Encoder req;
  cap.Encode(req);
  req.PutU64(oid.value);
  req.PutU64(txid);
  auto reply = rpc_.Call(*nid, kOpObjRemove, ByteSpan(req.buffer()));
  return reply.ok() ? OkStatus() : reply.status();
}

Result<storage::ObjAttr> Client::GetAttr(std::uint32_t server,
                                         const security::Capability& cap,
                                         storage::ObjectId oid) {
  auto nid = StorageNid(server);
  if (!nid.ok()) return nid.status();
  Encoder req;
  cap.Encode(req);
  req.PutU64(oid.value);
  auto reply = rpc_.Call(*nid, kOpObjGetAttr, ByteSpan(req.buffer()));
  if (!reply.ok()) return reply.status();
  Decoder dec(*reply);
  return DecodeObjAttr(dec);
}

Result<std::vector<storage::ObjectId>> Client::ListObjects(
    std::uint32_t server, const security::Capability& cap) {
  auto nid = StorageNid(server);
  if (!nid.ok()) return nid.status();
  Encoder req;
  cap.Encode(req);
  auto reply = rpc_.Call(*nid, kOpObjList, ByteSpan(req.buffer()));
  if (!reply.ok()) return reply.status();
  Decoder dec(*reply);
  auto count = dec.GetU32();
  if (!count.ok()) return count.status();
  if (*count > dec.remaining() / 8) {
    return Internal("object count exceeds reply payload");
  }
  std::vector<storage::ObjectId> out;
  out.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto oid = dec.GetU64();
    if (!oid.ok()) return oid.status();
    out.push_back(storage::ObjectId{*oid});
  }
  return out;
}

Status Client::TruncateObject(std::uint32_t server,
                              const security::Capability& cap,
                              storage::ObjectId oid, std::uint64_t size) {
  auto nid = StorageNid(server);
  if (!nid.ok()) return nid.status();
  Encoder req;
  cap.Encode(req);
  req.PutU64(oid.value);
  req.PutU64(size);
  auto reply = rpc_.Call(*nid, kOpObjTruncate, ByteSpan(req.buffer()));
  return reply.ok() ? OkStatus() : reply.status();
}

Result<Client::FilterOutcome> Client::FilterObject(
    std::uint32_t server, const security::Capability& cap,
    storage::ObjectId oid, std::uint64_t offset, std::uint64_t length,
    const FilterSpec& spec, MutableByteSpan result) {
  auto nid = StorageNid(server);
  if (!nid.ok()) return nid.status();
  Encoder req;
  cap.Encode(req);
  req.PutU64(oid.value);
  req.PutU64(offset);
  req.PutU64(length);
  spec.Encode(req);
  rpc::CallOptions options;
  options.bulk_in = result;  // the server pushes only the filter output
  auto reply = rpc_.Call(*nid, kOpObjFilter, ByteSpan(req.buffer()), options);
  if (!reply.ok()) return reply.status();
  Decoder dec(*reply);
  auto result_bytes = dec.GetU64();
  auto input_bytes = dec.GetU64();
  if (!result_bytes.ok() || !input_bytes.ok()) {
    return Internal("malformed filter reply");
  }
  return FilterOutcome{*result_bytes, *input_bytes};
}

Result<Buffer> Client::FilterObjectAlloc(std::uint32_t server,
                                         const security::Capability& cap,
                                         storage::ObjectId oid,
                                         std::uint64_t offset,
                                         std::uint64_t length,
                                         const FilterSpec& spec) {
  // Worst case for the built-in filters: never larger than the input, but
  // histograms on tiny inputs can exceed it.
  const std::uint64_t worst =
      std::max<std::uint64_t>(length, 8ull * spec.bins + 64);
  Buffer out(static_cast<std::size_t>(worst), 0);
  auto outcome =
      FilterObject(server, cap, oid, offset, length, spec, MutableByteSpan(out));
  if (!outcome.ok()) return outcome.status();
  out.resize(static_cast<std::size_t>(outcome->result_bytes));
  return out;
}

// ---- Naming ----------------------------------------------------------------

Status Client::Mkdir(std::string_view path, bool recursive) {
  Encoder req;
  req.PutString(path);
  req.PutBool(recursive);
  auto reply =
      rpc_.Call(deployment_.naming, kOpNameMkdir, ByteSpan(req.buffer()));
  return reply.ok() ? OkStatus() : reply.status();
}

Status Client::LinkName(std::string_view path, const storage::ObjectRef& ref) {
  Encoder req;
  req.PutString(path);
  EncodeObjectRef(req, ref);
  auto reply =
      rpc_.Call(deployment_.naming, kOpNameLink, ByteSpan(req.buffer()));
  return reply.ok() ? OkStatus() : reply.status();
}

Status Client::StageLinkName(txn::TxnId txid, std::string_view path,
                             const storage::ObjectRef& ref) {
  Encoder req;
  req.PutU64(txid);
  req.PutString(path);
  EncodeObjectRef(req, ref);
  auto reply =
      rpc_.Call(deployment_.naming, kOpNameStageLink, ByteSpan(req.buffer()));
  return reply.ok() ? OkStatus() : reply.status();
}

Result<storage::ObjectRef> Client::LookupName(std::string_view path) {
  Encoder req;
  req.PutString(path);
  auto reply =
      rpc_.Call(deployment_.naming, kOpNameLookup, ByteSpan(req.buffer()));
  if (!reply.ok()) return reply.status();
  Decoder dec(*reply);
  return DecodeObjectRef(dec);
}

Status Client::UnlinkName(std::string_view path) {
  Encoder req;
  req.PutString(path);
  auto reply =
      rpc_.Call(deployment_.naming, kOpNameUnlink, ByteSpan(req.buffer()));
  return reply.ok() ? OkStatus() : reply.status();
}

Status Client::RmdirName(std::string_view path) {
  Encoder req;
  req.PutString(path);
  auto reply =
      rpc_.Call(deployment_.naming, kOpNameRmdir, ByteSpan(req.buffer()));
  return reply.ok() ? OkStatus() : reply.status();
}

Status Client::RenameName(std::string_view from, std::string_view to) {
  Encoder req;
  req.PutString(from);
  req.PutString(to);
  auto reply =
      rpc_.Call(deployment_.naming, kOpNameRename, ByteSpan(req.buffer()));
  return reply.ok() ? OkStatus() : reply.status();
}

Result<std::vector<naming::DirEntry>> Client::ListNames(
    std::string_view path) {
  Encoder req;
  req.PutString(path);
  auto reply =
      rpc_.Call(deployment_.naming, kOpNameList, ByteSpan(req.buffer()));
  if (!reply.ok()) return reply.status();
  Decoder dec(*reply);
  auto count = dec.GetU32();
  if (!count.ok()) return count.status();
  if (*count > dec.remaining()) {
    return Internal("entry count exceeds reply payload");
  }
  std::vector<naming::DirEntry> out;
  out.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    naming::DirEntry entry;
    auto name = dec.GetString();
    auto is_dir = dec.GetBool();
    auto has_ref = dec.GetBool();
    if (!name.ok() || !is_dir.ok() || !has_ref.ok()) {
      return InvalidArgument("malformed list reply");
    }
    entry.name = std::move(*name);
    entry.is_directory = *is_dir;
    if (*has_ref) {
      auto ref = DecodeObjectRef(dec);
      if (!ref.ok()) return ref.status();
      entry.ref = *ref;
    }
    out.push_back(std::move(entry));
  }
  return out;
}

// ---- Locks -------------------------------------------------------------------

Result<txn::LockId> Client::TryLock(const txn::LockKey& key,
                                    const txn::LockRange& range,
                                    txn::LockMode mode) {
  Encoder req;
  req.PutU64(key.container);
  req.PutU64(key.resource);
  req.PutU64(range.start);
  req.PutU64(range.end);
  req.PutBool(mode == txn::LockMode::kExclusive);
  auto reply = rpc_.Call(deployment_.locks, kOpLockTry, ByteSpan(req.buffer()));
  if (!reply.ok()) return reply.status();
  Decoder dec(*reply);
  return dec.GetU64();
}

Result<txn::LockId> Client::LockBlocking(const txn::LockKey& key,
                                         const txn::LockRange& range,
                                         txn::LockMode mode,
                                         std::chrono::milliseconds max_wait) {
  const auto deadline = std::chrono::steady_clock::now() + max_wait;
  int backoff_us = 50;
  for (;;) {
    auto id = TryLock(key, range, mode);
    if (id.ok() || id.status().code() != ErrorCode::kResourceExhausted) {
      return id;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Timeout("lock wait timed out");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    backoff_us = std::min(backoff_us * 2, 5000);
  }
}

Status Client::Unlock(txn::LockId id) {
  Encoder req;
  req.PutU64(id);
  auto reply =
      rpc_.Call(deployment_.locks, kOpLockRelease, ByteSpan(req.buffer()));
  return reply.ok() ? OkStatus() : reply.status();
}

// ---- Transactions --------------------------------------------------------------

Result<std::unique_ptr<Transaction>> Client::BeginTxn(
    std::uint32_t journal_server, const security::Capability& journal_cap,
    const TxnParticipants& participants) {
  auto txn = std::make_unique<Transaction>();
  txn->journal_store_ =
      std::make_unique<RemoteObjectStore>(this, journal_server, journal_cap);
  auto journal =
      txn::Journal::Create(txn->journal_store_.get(), journal_cap.cid);
  if (!journal.ok()) return journal.status();
  txn->journal_ = std::make_unique<txn::Journal>(*journal);

  std::vector<txn::Participant*> raw;
  for (std::uint32_t server : participants.storage_servers) {
    auto nid = StorageNid(server);
    if (!nid.ok()) return nid.status();
    txn->stubs_.push_back(std::make_unique<RemoteParticipant>(
        &rpc_, *nid, "storage:" + std::to_string(server)));
    raw.push_back(txn->stubs_.back().get());
  }
  if (participants.naming) {
    txn->stubs_.push_back(std::make_unique<RemoteParticipant>(
        &rpc_, deployment_.naming, "naming"));
    raw.push_back(txn->stubs_.back().get());
  }

  txn->coordinator_ = std::make_unique<txn::Coordinator>(txn->journal_.get());
  auto txid = txn->coordinator_->Begin(std::move(raw));
  if (!txid.ok()) return txid.status();
  txn->id_ = *txid;
  return txn;
}

}  // namespace lwfs::core
