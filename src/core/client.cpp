#include "core/client.h"

#include <thread>

#include "core/wire.h"
#include "rpc/service.h"

namespace lwfs::core {

// ---------------------------------------------------------------------------
// PendingIo / PendingCreate / Batch
// ---------------------------------------------------------------------------

Result<std::uint64_t> PendingIo::Resolve(Result<Buffer> reply,
                                         bool decode_reply,
                                         std::uint64_t nominal) {
  if (!decode_reply) {
    if (!reply.ok()) return reply.status();
    return nominal;
  }
  auto moved = rpc::ResolveTyped<wire::IoMovedRep>(std::move(reply));
  if (!moved.ok()) return moved.status();
  return moved->moved;
}

Result<std::uint64_t> PendingIo::Await() {
  if (!handle_.valid()) {
    return FailedPrecondition("awaiting an empty io handle");
  }
  return Resolve(handle_.Await(), decode_reply_, nominal_);
}

bool PendingIo::TryAwait(Result<std::uint64_t>* out) {
  if (!handle_.valid()) return false;
  Result<Buffer> reply = Buffer{};
  if (!handle_.TryAwait(&reply)) return false;
  if (out != nullptr) *out = Resolve(std::move(reply), decode_reply_, nominal_);
  return true;
}

Result<storage::ObjectId> PendingCreate::Await() {
  if (!handle_.valid()) {
    return FailedPrecondition("awaiting an empty create handle");
  }
  auto rep = rpc::ResolveTyped<wire::ObjCreateRep>(handle_.Await());
  if (!rep.ok()) return rep.status();
  return storage::ObjectId{rep->oid};
}

bool PendingCreate::TryAwait(Result<storage::ObjectId>* out) {
  if (!handle_.valid()) return false;
  Result<Buffer> reply = Buffer{};
  if (!handle_.TryAwait(&reply)) return false;
  if (out != nullptr) {
    auto rep = rpc::ResolveTyped<wire::ObjCreateRep>(std::move(reply));
    if (!rep.ok()) {
      *out = rep.status();
    } else {
      *out = storage::ObjectId{rep->oid};
    }
  }
  return true;
}

Status Batch::RetireOldest() {
  Op op = std::move(inflight_.front());
  inflight_.pop_front();
  auto n = op.io.Await();
  if (!n.ok()) {
    if (first_error_.ok()) first_error_ = n.status();
    return n.status();
  }
  if (op.bytes_read != nullptr) *op.bytes_read = *n;
  return OkStatus();
}

Status Batch::Write(std::uint32_t server, const security::Capability& cap,
                    storage::ObjectId oid, std::uint64_t offset,
                    ByteSpan data) {
  if (!first_error_.ok()) return first_error_;
  while (inflight_.size() >= window_) (void)RetireOldest();
  if (!first_error_.ok()) return first_error_;
  auto io = client_->WriteObjectAsync(server, cap, oid, offset, data);
  if (!io.ok()) {
    if (first_error_.ok()) first_error_ = io.status();
    return io.status();
  }
  inflight_.push_back(Op{std::move(*io), nullptr});
  return OkStatus();
}

Status Batch::WriteSlice(std::uint32_t server, const security::Capability& cap,
                         storage::ObjectId oid, std::uint64_t offset,
                         const util::SharedSlice& data) {
  if (!first_error_.ok()) return first_error_;
  while (inflight_.size() >= window_) (void)RetireOldest();
  if (!first_error_.ok()) return first_error_;
  auto io = client_->WriteObjectSliceAsync(server, cap, oid, offset, data);
  if (!io.ok()) {
    if (first_error_.ok()) first_error_ = io.status();
    return io.status();
  }
  inflight_.push_back(Op{std::move(*io), nullptr});
  return OkStatus();
}

Status Batch::Read(std::uint32_t server, const security::Capability& cap,
                   storage::ObjectId oid, std::uint64_t offset,
                   MutableByteSpan out, std::uint64_t* bytes_read) {
  if (!first_error_.ok()) return first_error_;
  while (inflight_.size() >= window_) (void)RetireOldest();
  if (!first_error_.ok()) return first_error_;
  auto io = client_->ReadObjectAsync(server, cap, oid, offset, out);
  if (!io.ok()) {
    if (first_error_.ok()) first_error_ = io.status();
    return io.status();
  }
  inflight_.push_back(Op{std::move(*io), bytes_read});
  return OkStatus();
}

Status Batch::Drain() {
  while (!inflight_.empty()) (void)RetireOldest();
  return first_error_;
}

// ---------------------------------------------------------------------------
// RemoteParticipant
// ---------------------------------------------------------------------------

Result<bool> RemoteParticipant::Prepare(txn::TxnId txid) {
  auto vote = rpc::CallTyped<wire::TxnVoteRep>(*rpc_, nid_, kOpTxnPrepare,
                                               wire::TxnReq{txid});
  if (!vote.ok()) return vote.status();
  return vote->vote;
}

Status RemoteParticipant::Commit(txn::TxnId txid) {
  return rpc::CallTyped<rpc::Void>(*rpc_, nid_, kOpTxnCommit,
                                   wire::TxnReq{txid})
      .status();
}

Status RemoteParticipant::Abort(txn::TxnId txid) {
  return rpc::CallTyped<rpc::Void>(*rpc_, nid_, kOpTxnAbort,
                                   wire::TxnReq{txid})
      .status();
}

// ---------------------------------------------------------------------------
// RemoteObjectStore
// ---------------------------------------------------------------------------

Result<storage::ObjectId> RemoteObjectStore::Create(storage::ContainerId cid) {
  if (cid != cap_.cid) {
    return PermissionDenied("capability is for a different container");
  }
  return client_->CreateObject(server_, cap_);
}
Status RemoteObjectStore::Remove(storage::ObjectId oid) {
  return client_->RemoveObject(server_, cap_, oid);
}
Status RemoteObjectStore::Write(storage::ObjectId oid, std::uint64_t offset,
                                ByteSpan data) {
  return client_->WriteObject(server_, cap_, oid, offset, data);
}
Result<Buffer> RemoteObjectStore::Read(storage::ObjectId oid,
                                       std::uint64_t offset,
                                       std::uint64_t length) {
  return client_->ReadObjectAlloc(server_, cap_, oid, offset, length);
}
Status RemoteObjectStore::Truncate(storage::ObjectId oid, std::uint64_t size) {
  return client_->TruncateObject(server_, cap_, oid, size);
}
Result<storage::ObjAttr> RemoteObjectStore::GetAttr(storage::ObjectId oid) {
  return client_->GetAttr(server_, cap_, oid);
}
Result<std::vector<storage::ObjectId>> RemoteObjectStore::List(
    storage::ContainerId cid) {
  if (cid != cap_.cid) {
    return PermissionDenied("capability is for a different container");
  }
  return client_->ListObjects(server_, cap_);
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

Client::Client(std::shared_ptr<portals::Nic> nic, Deployment deployment,
               rpc::ClientOptions rpc_options)
    : nic_(nic), deployment_(std::move(deployment)), rpc_(nic, rpc_options) {}

Result<portals::Nid> Client::StorageNid(std::uint32_t server) const {
  if (server >= deployment_.storage.size()) {
    return InvalidArgument("no such storage server index");
  }
  return deployment_.storage[server];
}

Result<security::Credential> Client::Login(const std::string& principal,
                                           const std::string& secret) {
  auto handle = LoginAsync(principal, secret);
  if (!handle.ok()) return handle.status();
  return ResolveLogin(handle->Await());
}

Result<rpc::CallHandle> Client::LoginAsync(const std::string& principal,
                                           const std::string& secret) {
  return rpc::CallTypedAsync(rpc_, deployment_.authn, kOpLogin,
                             wire::LoginReq{principal, secret});
}

Result<security::Credential> Client::ResolveLogin(Result<Buffer> reply) {
  auto rep = rpc::ResolveTyped<wire::CredentialRep>(std::move(reply));
  if (!rep.ok()) return rep.status();
  return rep->cred;
}

Status Client::RevokeCred(std::uint64_t cred_id) {
  return rpc::CallTyped<rpc::Void>(rpc_, deployment_.authn, kOpRevokeCred,
                                   wire::RevokeCredReq{cred_id})
      .status();
}

Result<storage::ContainerId> Client::CreateContainer(
    const security::Credential& cred) {
  auto rep = rpc::CallTyped<wire::CreateContainerRep>(
      rpc_, deployment_.authz, kOpCreateContainer,
      wire::CreateContainerReq{cred});
  if (!rep.ok()) return rep.status();
  return storage::ContainerId{rep->cid};
}

Result<security::Capability> Client::GetCap(const security::Credential& cred,
                                            storage::ContainerId cid,
                                            std::uint32_t ops) {
  auto handle = GetCapAsync(cred, cid, ops);
  if (!handle.ok()) return handle.status();
  return ResolveGetCap(handle->Await());
}

Result<rpc::CallHandle> Client::GetCapAsync(const security::Credential& cred,
                                            storage::ContainerId cid,
                                            std::uint32_t ops) {
  return rpc::CallTypedAsync(rpc_, deployment_.authz, kOpGetCap,
                             wire::GetCapReq{cred, cid.value, ops});
}

Result<security::Capability> Client::ResolveGetCap(Result<Buffer> reply) {
  auto rep = rpc::ResolveTyped<wire::CapabilityRep>(std::move(reply));
  if (!rep.ok()) return rep.status();
  return rep->cap;
}

Result<security::Capability> Client::RefreshCap(
    const security::Credential& cred, const security::Capability& cap) {
  auto rep = rpc::CallTyped<wire::CapabilityRep>(
      rpc_, deployment_.authz, kOpRefreshCap, wire::RefreshCapReq{cred, cap});
  if (!rep.ok()) return rep.status();
  return rep->cap;
}

Status Client::SetGrant(const security::Credential& cred,
                        storage::ContainerId cid, security::Uid grantee,
                        std::uint32_t ops) {
  return rpc::CallTyped<rpc::Void>(
             rpc_, deployment_.authz, kOpSetGrant,
             wire::SetGrantReq{cred, cid.value, grantee, ops})
      .status();
}

Status Client::RevokeCap(const security::Credential& cred,
                         std::uint64_t cap_id) {
  return rpc::CallTyped<rpc::Void>(rpc_, deployment_.authz,
                                   kOpRevokeCapability,
                                   wire::RevokeCapReq{cred, cap_id})
      .status();
}

Result<storage::ObjectId> Client::CreateObject(std::uint32_t server,
                                               const security::Capability& cap,
                                               txn::TxnId txid) {
  auto pending = CreateObjectAsync(server, cap, txid);
  if (!pending.ok()) return pending.status();
  return pending->Await();
}

Result<PendingCreate> Client::CreateObjectAsync(std::uint32_t server,
                                                const security::Capability& cap,
                                                txn::TxnId txid) {
  auto nid = StorageNid(server);
  if (!nid.ok()) return nid.status();
  auto handle = rpc::CallTypedAsync(rpc_, *nid, kOpObjCreate,
                                    wire::ObjCreateReq{cap, txid});
  if (!handle.ok()) return handle.status();
  return PendingCreate(std::move(*handle));
}

Status Client::WriteObject(std::uint32_t server,
                           const security::Capability& cap,
                           storage::ObjectId oid, std::uint64_t offset,
                           ByteSpan data) {
  auto io = WriteObjectAsync(server, cap, oid, offset, data);
  if (!io.ok()) return io.status();
  auto n = io->Await();
  return n.ok() ? OkStatus() : n.status();
}

Result<PendingIo> Client::WriteObjectAsync(std::uint32_t server,
                                           const security::Capability& cap,
                                           storage::ObjectId oid,
                                           std::uint64_t offset,
                                           ByteSpan data) {
  auto nid = StorageNid(server);
  if (!nid.ok()) return nid.status();
  rpc::CallOptions options;
  options.bulk_out = data;  // registered for the server to pull
  auto handle = rpc::CallTypedAsync(
      rpc_, *nid, kOpObjWrite, wire::ObjWriteReq{cap, oid.value, offset},
      options);
  if (!handle.ok()) return handle.status();
  return PendingIo(std::move(*handle), /*decode_reply=*/false, data.size());
}

Result<PendingIo> Client::WriteObjectSliceAsync(std::uint32_t server,
                                                const security::Capability& cap,
                                                storage::ObjectId oid,
                                                std::uint64_t offset,
                                                const util::SharedSlice& data) {
  auto nid = StorageNid(server);
  if (!nid.ok()) return nid.status();
  rpc::CallOptions options;
  // Registered by reference; the NIC match entry holds a ref until the call
  // completes, so the bytes survive even if the caller drops the slice.
  options.bulk_out_slice = data;
  auto handle = rpc::CallTypedAsync(
      rpc_, *nid, kOpObjWrite, wire::ObjWriteReq{cap, oid.value, offset},
      options);
  if (!handle.ok()) return handle.status();
  return PendingIo(std::move(*handle), /*decode_reply=*/false, data.size());
}

Status Client::WriteObjectSlice(std::uint32_t server,
                                const security::Capability& cap,
                                storage::ObjectId oid, std::uint64_t offset,
                                const util::SharedSlice& data) {
  auto io = WriteObjectSliceAsync(server, cap, oid, offset, data);
  if (!io.ok()) return io.status();
  auto n = io->Await();
  return n.ok() ? OkStatus() : n.status();
}

Result<std::uint64_t> Client::ReadObject(std::uint32_t server,
                                         const security::Capability& cap,
                                         storage::ObjectId oid,
                                         std::uint64_t offset,
                                         MutableByteSpan out) {
  auto io = ReadObjectAsync(server, cap, oid, offset, out);
  if (!io.ok()) return io.status();
  return io->Await();
}

Result<PendingIo> Client::ReadObjectAsync(std::uint32_t server,
                                          const security::Capability& cap,
                                          storage::ObjectId oid,
                                          std::uint64_t offset,
                                          MutableByteSpan out) {
  auto nid = StorageNid(server);
  if (!nid.ok()) return nid.status();
  rpc::CallOptions options;
  options.bulk_in = out;  // registered for the server to push
  auto handle = rpc::CallTypedAsync(
      rpc_, *nid, kOpObjRead,
      wire::ObjReadReq{cap, oid.value, offset, out.size()}, options);
  if (!handle.ok()) return handle.status();
  return PendingIo(std::move(*handle), /*decode_reply=*/true, out.size());
}

Result<Buffer> Client::ReadObjectAlloc(std::uint32_t server,
                                       const security::Capability& cap,
                                       storage::ObjectId oid,
                                       std::uint64_t offset,
                                       std::uint64_t length) {
  Buffer out(length, 0);
  auto n = ReadObject(server, cap, oid, offset, MutableByteSpan(out));
  if (!n.ok()) return n.status();
  out.resize(static_cast<std::size_t>(*n));
  return out;
}

Status Client::RemoveObject(std::uint32_t server,
                            const security::Capability& cap,
                            storage::ObjectId oid, txn::TxnId txid) {
  auto nid = StorageNid(server);
  if (!nid.ok()) return nid.status();
  return rpc::CallTyped<rpc::Void>(rpc_, *nid, kOpObjRemove,
                                   wire::ObjRemoveReq{cap, oid.value, txid})
      .status();
}

Result<storage::ObjAttr> Client::GetAttr(std::uint32_t server,
                                         const security::Capability& cap,
                                         storage::ObjectId oid) {
  auto handle = GetAttrAsync(server, cap, oid);
  if (!handle.ok()) return handle.status();
  return ResolveGetAttr(handle->Await());
}

Result<rpc::CallHandle> Client::GetAttrAsync(std::uint32_t server,
                                             const security::Capability& cap,
                                             storage::ObjectId oid) {
  auto nid = StorageNid(server);
  if (!nid.ok()) return nid.status();
  return rpc::CallTypedAsync(rpc_, *nid, kOpObjGetAttr,
                             wire::ObjGetAttrReq{cap, oid.value});
}

Result<storage::ObjAttr> Client::ResolveGetAttr(Result<Buffer> reply) {
  auto rep = rpc::ResolveTyped<wire::ObjAttrRep>(std::move(reply));
  if (!rep.ok()) return rep.status();
  return rep->attr;
}

Result<std::vector<storage::ObjectId>> Client::ListObjects(
    std::uint32_t server, const security::Capability& cap) {
  auto nid = StorageNid(server);
  if (!nid.ok()) return nid.status();
  auto rep = rpc::CallTyped<wire::ObjListRep>(rpc_, *nid, kOpObjList,
                                              wire::ObjListReq{cap});
  if (!rep.ok()) return rep.status();
  std::vector<storage::ObjectId> out;
  out.reserve(rep->oids.size());
  for (std::uint64_t oid : rep->oids) out.push_back(storage::ObjectId{oid});
  return out;
}

Status Client::TruncateObject(std::uint32_t server,
                              const security::Capability& cap,
                              storage::ObjectId oid, std::uint64_t size) {
  auto nid = StorageNid(server);
  if (!nid.ok()) return nid.status();
  return rpc::CallTyped<rpc::Void>(rpc_, *nid, kOpObjTruncate,
                                   wire::ObjTruncateReq{cap, oid.value, size})
      .status();
}

Result<Client::FilterOutcome> Client::FilterObject(
    std::uint32_t server, const security::Capability& cap,
    storage::ObjectId oid, std::uint64_t offset, std::uint64_t length,
    const FilterSpec& spec, MutableByteSpan result) {
  auto nid = StorageNid(server);
  if (!nid.ok()) return nid.status();
  rpc::CallOptions options;
  options.bulk_in = result;  // the server pushes only the filter output
  auto rep = rpc::CallTyped<wire::ObjFilterRep>(
      rpc_, *nid, kOpObjFilter,
      wire::ObjFilterReq{cap, oid.value, offset, length, spec}, options);
  if (!rep.ok()) return rep.status();
  return FilterOutcome{rep->result_bytes, rep->input_bytes};
}

Result<Buffer> Client::FilterObjectAlloc(std::uint32_t server,
                                         const security::Capability& cap,
                                         storage::ObjectId oid,
                                         std::uint64_t offset,
                                         std::uint64_t length,
                                         const FilterSpec& spec) {
  // Worst case for the built-in filters: never larger than the input, but
  // histograms on tiny inputs can exceed it.
  const std::uint64_t worst =
      std::max<std::uint64_t>(length, 8ull * spec.bins + 64);
  Buffer out(static_cast<std::size_t>(worst), 0);
  auto outcome =
      FilterObject(server, cap, oid, offset, length, spec, MutableByteSpan(out));
  if (!outcome.ok()) return outcome.status();
  out.resize(static_cast<std::size_t>(outcome->result_bytes));
  return out;
}

// ---- Naming ----------------------------------------------------------------

Status Client::Mkdir(std::string_view path, bool recursive) {
  return rpc::CallTyped<rpc::Void>(
             rpc_, deployment_.naming, kOpNameMkdir,
             wire::MkdirReq{std::string(path), recursive})
      .status();
}

Status Client::LinkName(std::string_view path, const storage::ObjectRef& ref) {
  return rpc::CallTyped<rpc::Void>(rpc_, deployment_.naming, kOpNameLink,
                                   wire::LinkReq{std::string(path), ref})
      .status();
}

Status Client::StageLinkName(txn::TxnId txid, std::string_view path,
                             const storage::ObjectRef& ref) {
  return rpc::CallTyped<rpc::Void>(
             rpc_, deployment_.naming, kOpNameStageLink,
             wire::StageLinkReq{txid, std::string(path), ref})
      .status();
}

Result<storage::ObjectRef> Client::LookupName(std::string_view path) {
  auto rep = rpc::CallTyped<wire::ObjectRefRep>(
      rpc_, deployment_.naming, kOpNameLookup,
      wire::PathReq{std::string(path)});
  if (!rep.ok()) return rep.status();
  return rep->ref;
}

Status Client::UnlinkName(std::string_view path) {
  return rpc::CallTyped<rpc::Void>(rpc_, deployment_.naming, kOpNameUnlink,
                                   wire::PathReq{std::string(path)})
      .status();
}

Status Client::RmdirName(std::string_view path) {
  return rpc::CallTyped<rpc::Void>(rpc_, deployment_.naming, kOpNameRmdir,
                                   wire::PathReq{std::string(path)})
      .status();
}

Status Client::RenameName(std::string_view from, std::string_view to) {
  return rpc::CallTyped<rpc::Void>(
             rpc_, deployment_.naming, kOpNameRename,
             wire::RenameReq{std::string(from), std::string(to)})
      .status();
}

Result<std::vector<naming::DirEntry>> Client::ListNames(
    std::string_view path) {
  auto rep = rpc::CallTyped<wire::ListNamesRep>(
      rpc_, deployment_.naming, kOpNameList, wire::PathReq{std::string(path)});
  if (!rep.ok()) return rep.status();
  return std::move(rep->entries);
}

// ---- Locks -------------------------------------------------------------------

Result<txn::LockId> Client::TryLock(const txn::LockKey& key,
                                    const txn::LockRange& range,
                                    txn::LockMode mode) {
  auto handle = TryLockAsync(key, range, mode);
  if (!handle.ok()) return handle.status();
  return ResolveTryLock(handle->Await());
}

Result<rpc::CallHandle> Client::TryLockAsync(const txn::LockKey& key,
                                             const txn::LockRange& range,
                                             txn::LockMode mode) {
  return rpc::CallTypedAsync(
      rpc_, deployment_.locks, kOpLockTry,
      wire::LockTryReq{key.container, key.resource, range.start, range.end,
                       mode == txn::LockMode::kExclusive});
}

Result<txn::LockId> Client::ResolveTryLock(Result<Buffer> reply) {
  auto rep = rpc::ResolveTyped<wire::LockIdRep>(std::move(reply));
  if (!rep.ok()) return rep.status();
  return rep->id;
}

Result<txn::LockId> Client::LockBlocking(const txn::LockKey& key,
                                         const txn::LockRange& range,
                                         txn::LockMode mode,
                                         std::chrono::milliseconds max_wait) {
  // Blocking wrapper over the shared retry schedule; event-driven clients
  // use the same schedule but arm a timer wake instead of sleeping.
  util::Clock* clock = rpc_.clock();
  txn::LockRetrySchedule retry(clock->Now(), max_wait);
  for (;;) {
    auto id = TryLock(key, range, mode);
    if (id.ok() || id.status().code() != ErrorCode::kResourceExhausted) {
      return id;
    }
    const auto next = retry.Next(clock->Now());
    if (!next.has_value()) return Timeout("lock wait timed out");
    clock->SleepUntil(*next);
  }
}

Status Client::Unlock(txn::LockId id) {
  auto handle = UnlockAsync(id);
  if (!handle.ok()) return handle.status();
  return ResolveUnlock(handle->Await());
}

Result<rpc::CallHandle> Client::UnlockAsync(txn::LockId id) {
  return rpc::CallTypedAsync(rpc_, deployment_.locks, kOpLockRelease,
                             wire::LockReleaseReq{id});
}

Status Client::ResolveUnlock(Result<Buffer> reply) {
  return rpc::ResolveTyped<rpc::Void>(std::move(reply)).status();
}

// ---- Transactions --------------------------------------------------------------

Result<std::unique_ptr<Transaction>> Client::BeginTxn(
    std::uint32_t journal_server, const security::Capability& journal_cap,
    const TxnParticipants& participants) {
  auto txn = std::make_unique<Transaction>();
  txn->journal_store_ =
      std::make_unique<RemoteObjectStore>(this, journal_server, journal_cap);
  auto journal =
      txn::Journal::Create(txn->journal_store_.get(), journal_cap.cid);
  if (!journal.ok()) return journal.status();
  txn->journal_ = std::make_unique<txn::Journal>(*journal);

  std::vector<txn::Participant*> raw;
  for (std::uint32_t server : participants.storage_servers) {
    auto nid = StorageNid(server);
    if (!nid.ok()) return nid.status();
    txn->stubs_.push_back(std::make_unique<RemoteParticipant>(
        &rpc_, *nid, "storage:" + std::to_string(server)));
    raw.push_back(txn->stubs_.back().get());
  }
  if (participants.naming) {
    txn->stubs_.push_back(std::make_unique<RemoteParticipant>(
        &rpc_, deployment_.naming, "naming"));
    raw.push_back(txn->stubs_.back().get());
  }

  txn->coordinator_ = std::make_unique<txn::Coordinator>(txn->journal_.get());
  auto txid = txn->coordinator_->Begin(std::move(raw));
  if (!txid.ok()) return txid.status();
  txn->id_ = *txid;
  return txn;
}

}  // namespace lwfs::core
