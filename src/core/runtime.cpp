#include "core/runtime.h"

#include <algorithm>
#include <fstream>

namespace lwfs::core {

Result<std::unique_ptr<ServiceRuntime>> ServiceRuntime::Start(
    RuntimeOptions options) {
  auto rt = std::unique_ptr<ServiceRuntime>(new ServiceRuntime());
  // Fan the deployment clock into every layer before anything is built.
  // Sub-option clocks a caller set explicitly win; authn/authz NowFns are
  // overridden whenever a clock is supplied, because their defaults read
  // real time and would disagree with a virtual deployment.
  if (options.clock != nullptr) {
    util::Clock* clk = options.clock;
    if (options.control_services.clock == nullptr) {
      options.control_services.clock = clk;
    }
    if (options.client_options.clock == nullptr) {
      options.client_options.clock = clk;
    }
    if (options.storage.clock == nullptr) options.storage.clock = clk;
    options.authn.now = [clk] { return clk->NowUs(); };
    options.authz.now = [clk] { return clk->NowUs(); };
  }
  rt->clock_ = util::OrReal(options.clock);
  rt->fabric_.SetClock(options.clock);
  rt->options_ = options;

  // Keys stay inside the issuing services; nothing else ever sees them.
  const security::SipKey authn_key{0x1234567890ABCDEFULL, 0x0F1E2D3C4B5A6978ULL};
  const security::SipKey authz_key{0xFEDCBA0987654321ULL, 0x13579BDF2468ACE0ULL};

  rt->authn_service_ = std::make_unique<security::AuthnService>(
      &rt->users_, authn_key, options.authn);
  rt->authz_service_ = std::make_unique<security::AuthzService>(
      rt->authn_service_.get(), authz_key, options.authz);
  rt->naming_service_ = std::make_unique<naming::NamingService>();

  naming::ReplicaMapOptions replica_options;
  replica_options.servers =
      static_cast<std::uint32_t>(std::max(options.storage_servers, 1));
  replica_options.default_factor = options.replication.replication_factor;
  replica_options.rack_size = options.replication.rack_size;
  rt->replica_map_ = std::make_unique<naming::ReplicaMap>(replica_options);

  // Credential revocation must drop the authorization service's cached
  // verification (in a distributed deployment this is a control RPC; the
  // two services share a process here).
  security::AuthzService* authz = rt->authz_service_.get();
  rt->authn_service_->SetRevocationObserver(
      [authz](std::uint64_t cred_id) { authz->ForgetCredential(cred_id); });

  rt->authn_server_ = std::make_unique<AuthnServer>(
      rt->fabric_.CreateNic(), rt->authn_service_.get(),
      options.control_services);
  rt->authz_server_ = std::make_unique<AuthzServer>(
      rt->fabric_.CreateNic(), rt->authz_service_.get(),
      options.control_services);
  rt->naming_server_ = std::make_unique<NamingServer>(
      rt->fabric_.CreateNic(), rt->naming_service_.get(),
      options.control_services, rt->replica_map_.get());
  rt->lock_server_ = std::make_unique<LockServer>(
      rt->fabric_.CreateNic(), &rt->lock_table_, options.control_services);

  LWFS_RETURN_IF_ERROR(rt->authn_server_->Start());
  LWFS_RETURN_IF_ERROR(rt->authz_server_->Start());
  LWFS_RETURN_IF_ERROR(rt->naming_server_->Start());
  LWFS_RETURN_IF_ERROR(rt->lock_server_->Start());

  // The NASD-contrast mode hands the signing key to the storage servers —
  // exactly the trust extension §3.1.2 criticizes; done here so the
  // ablations and tests can measure its consequences.
  StorageServerOptions storage_options = options.storage;
  if (storage_options.verify_mode == VerifyMode::kSharedKey) {
    storage_options.shared_key = authz_key;
  }
  storage_options.client_options = options.client_options;
  // Restart re-registration: a restarting server reports what it actually
  // holds to the replica registry *before* it resumes serving, so a repair
  // scan racing the restart never mistakes it for empty (the registry and
  // servers share a process here; a distributed deployment would make this
  // a control RPC to the naming server).
  naming::ReplicaMap* replicas = rt->replica_map_.get();
  storage_options.restart_report =
      [replicas](std::uint32_t server,
                 const std::vector<std::pair<storage::ObjectId,
                                             std::uint64_t>>& held) {
        replicas->ReportHoldings(server, held);
      };

  std::vector<portals::Nid> storage_nids;
  for (int i = 0; i < options.storage_servers; ++i) {
    std::unique_ptr<storage::ObjectStore> store;
    switch (options.backend) {
      case RuntimeOptions::Backend::kMemory:
        store = std::make_unique<storage::MemObjectStore>();
        break;
      case RuntimeOptions::Backend::kNull:
        store = std::make_unique<storage::NullObjectStore>();
        break;
      case RuntimeOptions::Backend::kBlock:
        store = std::make_unique<storage::BlockObjectStore>(
            options.device_blocks, options.block_size);
        break;
      case RuntimeOptions::Backend::kFile: {
        auto opened = storage::FileObjectStore::Open(
            options.file_store_root + "/s" + std::to_string(i));
        if (!opened.ok()) return opened.status();
        store = std::move(*opened);
        break;
      }
    }
    rt->stores_.push_back(std::move(store));
    auto server = std::make_unique<StorageServer>(
        rt->fabric_.CreateNic(), static_cast<std::uint32_t>(i),
        rt->stores_.back().get(), rt->authz_server_->nid(),
        options.authz.now, storage_options);
    LWFS_RETURN_IF_ERROR(server->Start());
    storage_nids.push_back(server->nid());
    rt->storage_servers_.push_back(std::move(server));
  }
  rt->authz_server_->SetStorageNids(storage_nids);

  ChunkReplicatorOptions replicator_options;
  replicator_options.repair_mb_s = options.replication.repair_mb_s;
  replicator_options.repair_chunk_bytes = options.replication.repair_chunk_bytes;
  rt->replicator_ = std::make_unique<ChunkReplicator>(
      rt->fabric_.CreateNic(), rt->replica_map_.get(), storage_nids,
      replicator_options, options.client_options);

  if (!options.naming_snapshot_file.empty()) {
    std::ifstream in(options.naming_snapshot_file, std::ios::binary);
    if (in) {
      Buffer snapshot((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
      LWFS_RETURN_IF_ERROR(rt->naming_service_->Restore(ByteSpan(snapshot)));
    }
  }

  rt->deployment_.authn = rt->authn_server_->nid();
  rt->deployment_.authz = rt->authz_server_->nid();
  rt->deployment_.naming = rt->naming_server_->nid();
  rt->deployment_.locks = rt->lock_server_->nid();
  rt->deployment_.storage = std::move(storage_nids);
  return rt;
}

ServiceRuntime::~ServiceRuntime() {
  // Stop order: storage first (they call into authz), then control services.
  for (auto& server : storage_servers_) server->Stop();
  if (lock_server_) lock_server_->Stop();
  if (naming_server_) naming_server_->Stop();
  if (authz_server_) authz_server_->Stop();
  if (authn_server_) authn_server_->Stop();
}

void ServiceRuntime::AddUser(const std::string& name, const std::string& secret,
                             security::Uid uid) {
  users_.AddPrincipal(name, secret, uid);
}

IoSchedulerStats ServiceRuntime::TotalSchedStats() const {
  IoSchedulerStats total;
  for (const auto& server : storage_servers_) {
    const IoSchedulerStats s = server->sched_stats();
    total.requests += s.requests;
    total.runs += s.runs;
    total.merges += s.merges;
    total.coalesced_bytes += s.coalesced_bytes;
    total.queue_depth_hwm = std::max(total.queue_depth_hwm, s.queue_depth_hwm);
  }
  return total;
}

void ServiceRuntime::ResetSchedStats() {
  for (const auto& server : storage_servers_) server->ResetSchedStats();
}

std::unique_ptr<Client> ServiceRuntime::MakeClient() {
  auto client = std::make_unique<Client>(fabric_.CreateNic(), deployment_,
                                         options_.client_options);
  client->SetHedgeAfterUs(options_.replication.hedge_after_us);
  return client;
}

ServiceRuntime::RobustnessStats ServiceRuntime::TotalRobustnessStats() {
  RobustnessStats total;
  auto add = [&total](const rpc::ServerStats& s) {
    total.rpc.served += s.served;
    total.rpc.dedup_hits += s.dedup_hits;
    total.rpc.crc_drops += s.crc_drops;
  };
  for (const auto& server : storage_servers_) {
    add(server->data_rpc_stats());
    add(server->control_rpc_stats());
  }
  add(authn_server_->rpc_stats());
  add(authz_server_->rpc_stats());
  add(naming_server_->rpc_stats());
  add(lock_server_->rpc_stats());
  total.faults = fabric_.injector().TotalCounters();
  return total;
}

std::vector<rpc::OpStats> ServiceRuntime::TotalOpStats() const {
  std::vector<rpc::OpStats> total;
  for (const auto& server : storage_servers_) {
    rpc::MergeOpStats(total, server->op_stats());
  }
  rpc::MergeOpStats(total, authn_server_->op_stats());
  rpc::MergeOpStats(total, authz_server_->op_stats());
  rpc::MergeOpStats(total, naming_server_->op_stats());
  rpc::MergeOpStats(total, lock_server_->op_stats());
  return total;
}

Status ServiceRuntime::SaveNamingSnapshot() {
  if (options_.naming_snapshot_file.empty()) {
    return FailedPrecondition("no naming_snapshot_file configured");
  }
  Buffer snapshot = naming_service_->Serialize();
  std::ofstream out(options_.naming_snapshot_file,
                    std::ios::binary | std::ios::trunc);
  if (!out) return Internal("cannot open naming snapshot file");
  out.write(reinterpret_cast<const char*>(snapshot.data()),
            static_cast<std::streamsize>(snapshot.size()));
  return out ? OkStatus() : Internal("naming snapshot write failed");
}

}  // namespace lwfs::core
