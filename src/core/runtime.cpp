#include "core/runtime.h"

#include <algorithm>
#include <fstream>

namespace lwfs::core {

Result<std::unique_ptr<ServiceRuntime>> ServiceRuntime::Start(
    RuntimeOptions options) {
  auto rt = std::unique_ptr<ServiceRuntime>(new ServiceRuntime());
  // Fan the deployment clock into every layer before anything is built.
  // Sub-option clocks a caller set explicitly win; authn/authz NowFns are
  // overridden whenever a clock is supplied, because their defaults read
  // real time and would disagree with a virtual deployment.
  if (options.clock != nullptr) {
    util::Clock* clk = options.clock;
    if (options.control_services.clock == nullptr) {
      options.control_services.clock = clk;
    }
    if (options.client_options.clock == nullptr) {
      options.client_options.clock = clk;
    }
    if (options.storage.clock == nullptr) options.storage.clock = clk;
    options.authn.now = [clk] { return clk->NowUs(); };
    options.authz.now = [clk] { return clk->NowUs(); };
  }
  rt->clock_ = util::OrReal(options.clock);
  rt->fabric_.SetClock(options.clock);
  rt->options_ = options;

  // Keys stay inside the issuing services; nothing else ever sees them.
  const security::SipKey authn_key{0x1234567890ABCDEFULL, 0x0F1E2D3C4B5A6978ULL};
  const security::SipKey authz_key{0xFEDCBA0987654321ULL, 0x13579BDF2468ACE0ULL};

  rt->authn_service_ = std::make_unique<security::AuthnService>(
      &rt->users_, authn_key, options.authn);
  rt->authz_service_ = std::make_unique<security::AuthzService>(
      rt->authn_service_.get(), authz_key, options.authz);

  naming::ReplicaMapOptions replica_options;
  replica_options.servers =
      static_cast<std::uint32_t>(std::max(options.storage_servers, 1));
  replica_options.default_factor = options.replication.replication_factor;
  replica_options.rack_size = options.replication.rack_size;

  // Metadata plane: `shards` naming services, each owning a hash slice of
  // the namespace and a striped slice of the replicated-oid space, plus an
  // optional warm standby per shard.  One shard reproduces the classic
  // single-server deployment bit for bit.
  const std::uint32_t shards = std::max<std::uint32_t>(options.naming_shards, 1);
  rt->shard_map_ = std::make_shared<naming::ShardMap>();
  replica_options.shard_count = shards;
  for (std::uint32_t i = 0; i < shards; ++i) {
    rt->naming_oplogs_.push_back(std::make_unique<naming::OpLog>());
    naming::OpLog* oplog = rt->naming_oplogs_.back().get();
    const std::string participant =
        shards <= 1 ? "naming" : "naming" + std::to_string(i);
    rt->naming_services_.push_back(
        std::make_unique<naming::NamingService>(participant, oplog));
    replica_options.shard_index = i;
    rt->replica_maps_.push_back(
        std::make_unique<naming::ReplicaMap>(replica_options, oplog));
  }

  // Credential revocation must drop the authorization service's cached
  // verification (in a distributed deployment this is a control RPC; the
  // two services share a process here).
  security::AuthzService* authz = rt->authz_service_.get();
  rt->authn_service_->SetRevocationObserver(
      [authz](std::uint64_t cred_id) { authz->ForgetCredential(cred_id); });

  rt->authn_server_ = std::make_unique<AuthnServer>(
      rt->fabric_.CreateNic(), rt->authn_service_.get(),
      options.control_services);
  rt->authz_server_ = std::make_unique<AuthzServer>(
      rt->fabric_.CreateNic(), rt->authz_service_.get(),
      options.control_services);

  ServiceRuntime* rtp = rt.get();
  // Post-takeover holdings pull: report every store's actual replicated
  // holdings to the freshly promoted registry (each registry ignores oids
  // outside its stripe), mirroring what storage restarts report.
  auto pull_holdings = [rtp](naming::ReplicaMap* registry) {
    for (std::size_t s = 0; s < rtp->stores_.size(); ++s) {
      auto all = rtp->stores_[s]->ListAll();
      if (!all.ok()) continue;
      std::vector<std::pair<storage::ObjectId, std::uint64_t>> held;
      for (storage::ObjectId oid : *all) {
        if (!storage::IsReplicatedOid(oid)) continue;
        auto attr = rtp->stores_[s]->GetAttr(oid);
        if (attr.ok()) held.emplace_back(oid, attr->version);
      }
      registry->ReportHoldings(static_cast<std::uint32_t>(s), held);
    }
  };

  for (std::uint32_t i = 0; i < shards; ++i) {
    NamingShardConfig primary_cfg;
    primary_cfg.shard_index = i;
    primary_cfg.shard_map = rt->shard_map_;
    primary_cfg.oplog = rt->naming_oplogs_[i].get();
    if (options.naming_op_delay) {
      primary_cfg.op_delay = [hook = options.naming_op_delay, i] { hook(i); };
    }
    rt->naming_servers_.push_back(std::make_unique<NamingServer>(
        rt->fabric_.CreateNic(), rt->naming_services_[i].get(),
        options.control_services, rt->replica_maps_[i].get(), primary_cfg));

    portals::Nid standby_nid = portals::kInvalidNid;
    if (options.naming_standby) {
      const std::string participant =
          shards <= 1 ? "naming" : "naming" + std::to_string(i);
      // No op log attached: the standby replays it at takeover, through
      // the public mutators, then attaches it.
      rt->standby_services_.push_back(
          std::make_unique<naming::NamingService>(participant, nullptr));
      replica_options.shard_index = i;
      rt->standby_replica_maps_.push_back(
          std::make_unique<naming::ReplicaMap>(replica_options, nullptr));
      NamingShardConfig standby_cfg = primary_cfg;
      standby_cfg.standby = true;
      standby_cfg.reregister_holdings = pull_holdings;
      rt->standby_servers_.push_back(std::make_unique<NamingServer>(
          rt->fabric_.CreateNic(), rt->standby_services_.back().get(),
          options.control_services, rt->standby_replica_maps_.back().get(),
          standby_cfg));
      standby_nid = rt->standby_servers_.back()->nid();
    }
    rt->shard_map_->AddShard(rt->naming_servers_[i]->nid(), standby_nid);
  }

  rt->lock_server_ = std::make_unique<LockServer>(
      rt->fabric_.CreateNic(), &rt->lock_table_, options.control_services);

  LWFS_RETURN_IF_ERROR(rt->authn_server_->Start());
  LWFS_RETURN_IF_ERROR(rt->authz_server_->Start());
  for (auto& server : rt->naming_servers_) {
    LWFS_RETURN_IF_ERROR(server->Start());
  }
  for (auto& server : rt->standby_servers_) {
    LWFS_RETURN_IF_ERROR(server->Start());
  }
  LWFS_RETURN_IF_ERROR(rt->lock_server_->Start());

  // The NASD-contrast mode hands the signing key to the storage servers —
  // exactly the trust extension §3.1.2 criticizes; done here so the
  // ablations and tests can measure its consequences.
  StorageServerOptions storage_options = options.storage;
  if (storage_options.verify_mode == VerifyMode::kSharedKey) {
    storage_options.shared_key = authz_key;
  }
  storage_options.client_options = options.client_options;
  // Restart re-registration: a restarting server reports what it actually
  // holds to every replica registry *before* it resumes serving, so a
  // repair scan racing the restart never mistakes it for empty (the
  // registries and servers share a process here; a distributed deployment
  // would make this a control RPC per shard).  Each registry only updates
  // entries in its own oid stripe; standby registries are empty until a
  // takeover replays them, after which they take these reports too.
  storage_options.restart_report =
      [rtp](std::uint32_t server,
            const std::vector<std::pair<storage::ObjectId,
                                        std::uint64_t>>& held) {
        for (auto& registry : rtp->replica_maps_) {
          registry->ReportHoldings(server, held);
        }
        for (auto& registry : rtp->standby_replica_maps_) {
          registry->ReportHoldings(server, held);
        }
      };

  std::vector<portals::Nid> storage_nids;
  for (int i = 0; i < options.storage_servers; ++i) {
    std::unique_ptr<storage::ObjectStore> store;
    switch (options.backend) {
      case RuntimeOptions::Backend::kMemory:
        store = std::make_unique<storage::MemObjectStore>();
        break;
      case RuntimeOptions::Backend::kNull:
        store = std::make_unique<storage::NullObjectStore>();
        break;
      case RuntimeOptions::Backend::kBlock:
        store = std::make_unique<storage::BlockObjectStore>(
            options.device_blocks, options.block_size);
        break;
      case RuntimeOptions::Backend::kFile: {
        auto opened = storage::FileObjectStore::Open(
            options.file_store_root + "/s" + std::to_string(i));
        if (!opened.ok()) return opened.status();
        store = std::move(*opened);
        break;
      }
    }
    rt->stores_.push_back(std::move(store));
    auto server = std::make_unique<StorageServer>(
        rt->fabric_.CreateNic(), static_cast<std::uint32_t>(i),
        rt->stores_.back().get(), rt->authz_server_->nid(),
        options.authz.now, storage_options);
    LWFS_RETURN_IF_ERROR(server->Start());
    storage_nids.push_back(server->nid());
    rt->storage_servers_.push_back(std::move(server));
  }
  rt->authz_server_->SetStorageNids(storage_nids);

  ChunkReplicatorOptions replicator_options;
  replicator_options.repair_mb_s = options.replication.repair_mb_s;
  replicator_options.repair_chunk_bytes = options.replication.repair_chunk_bytes;
  // One replicator sweeps every shard's registry (stripes are disjoint).
  // Standby registries are included: empty before a takeover, and the
  // authoritative copy after one.
  std::vector<naming::ReplicaMap*> registries;
  for (auto& registry : rt->replica_maps_) registries.push_back(registry.get());
  for (auto& registry : rt->standby_replica_maps_) {
    registries.push_back(registry.get());
  }
  rt->replicator_ = std::make_unique<ChunkReplicator>(
      rt->fabric_.CreateNic(), std::move(registries), storage_nids,
      replicator_options, options.client_options);

  if (!options.naming_snapshot_file.empty()) {
    std::ifstream in(options.naming_snapshot_file, std::ios::binary);
    if (in) {
      Buffer snapshot((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
      LWFS_RETURN_IF_ERROR(
          rt->naming_services_[0]->Restore(ByteSpan(snapshot)));
    }
  }

  rt->deployment_.authn = rt->authn_server_->nid();
  rt->deployment_.authz = rt->authz_server_->nid();
  rt->deployment_.naming = rt->naming_servers_[0]->nid();
  rt->deployment_.locks = rt->lock_server_->nid();
  rt->deployment_.storage = std::move(storage_nids);
  for (std::uint32_t i = 0; i < shards; ++i) {
    rt->deployment_.naming_shards.push_back(rt->naming_servers_[i]->nid());
    rt->deployment_.naming_standbys.push_back(
        options.naming_standby ? rt->standby_servers_[i]->nid()
                               : portals::kInvalidNid);
  }
  return rt;
}

ServiceRuntime::~ServiceRuntime() {
  // Stop order: storage first (they call into authz), then control services.
  for (auto& server : storage_servers_) server->Stop();
  if (lock_server_) lock_server_->Stop();
  for (auto& server : standby_servers_) server->Stop();
  for (auto& server : naming_servers_) server->Stop();
  if (authz_server_) authz_server_->Stop();
  if (authn_server_) authn_server_->Stop();
}

void ServiceRuntime::AddUser(const std::string& name, const std::string& secret,
                             security::Uid uid) {
  users_.AddPrincipal(name, secret, uid);
}

IoSchedulerStats ServiceRuntime::TotalSchedStats() const {
  IoSchedulerStats total;
  for (const auto& server : storage_servers_) {
    const IoSchedulerStats s = server->sched_stats();
    total.requests += s.requests;
    total.runs += s.runs;
    total.merges += s.merges;
    total.coalesced_bytes += s.coalesced_bytes;
    total.queue_depth_hwm = std::max(total.queue_depth_hwm, s.queue_depth_hwm);
  }
  return total;
}

void ServiceRuntime::ResetSchedStats() {
  for (const auto& server : storage_servers_) server->ResetSchedStats();
}

std::unique_ptr<Client> ServiceRuntime::MakeClient() {
  auto client = std::make_unique<Client>(fabric_.CreateNic(), deployment_,
                                         options_.client_options);
  client->SetHedgeAfterUs(options_.replication.hedge_after_us);
  return client;
}

ServiceRuntime::RobustnessStats ServiceRuntime::TotalRobustnessStats() {
  RobustnessStats total;
  auto add = [&total](const rpc::ServerStats& s) {
    total.rpc.served += s.served;
    total.rpc.dedup_hits += s.dedup_hits;
    total.rpc.crc_drops += s.crc_drops;
  };
  for (const auto& server : storage_servers_) {
    add(server->data_rpc_stats());
    add(server->control_rpc_stats());
  }
  add(authn_server_->rpc_stats());
  add(authz_server_->rpc_stats());
  for (const auto& server : naming_servers_) add(server->rpc_stats());
  for (const auto& server : standby_servers_) add(server->rpc_stats());
  add(lock_server_->rpc_stats());
  total.faults = fabric_.injector().TotalCounters();
  return total;
}

ServiceRuntime::TakeoverStats ServiceRuntime::TotalTakeoverStats() const {
  TakeoverStats total;
  auto add = [&total](const NamingServer& server) {
    total.takeovers += server.takeovers();
    total.replayed += server.takeover_replayed();
    total.replay_errors += server.takeover_replay_errors();
  };
  for (const auto& server : naming_servers_) add(*server);
  for (const auto& server : standby_servers_) add(*server);
  return total;
}

std::vector<rpc::OpStats> ServiceRuntime::TotalOpStats() const {
  std::vector<rpc::OpStats> total;
  for (const auto& server : storage_servers_) {
    rpc::MergeOpStats(total, server->op_stats());
  }
  rpc::MergeOpStats(total, authn_server_->op_stats());
  rpc::MergeOpStats(total, authz_server_->op_stats());
  for (const auto& server : naming_servers_) {
    rpc::MergeOpStats(total, server->op_stats());
  }
  for (const auto& server : standby_servers_) {
    rpc::MergeOpStats(total, server->op_stats());
  }
  rpc::MergeOpStats(total, lock_server_->op_stats());
  return total;
}

Status ServiceRuntime::SaveNamingSnapshot() {
  if (options_.naming_snapshot_file.empty()) {
    return FailedPrecondition("no naming_snapshot_file configured");
  }
  Buffer snapshot = naming_services_[0]->Serialize();
  std::ofstream out(options_.naming_snapshot_file,
                    std::ios::binary | std::ios::trunc);
  if (!out) return Internal("cannot open naming snapshot file");
  out.write(reinterpret_cast<const char*>(snapshot.data()),
            static_cast<std::streamsize>(snapshot.size()));
  return out ? OkStatus() : Internal("naming snapshot write failed");
}

}  // namespace lwfs::core
