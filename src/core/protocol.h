// Wire protocol of the LWFS services.
//
// One opcode space shared by every service; each service only registers the
// handlers it owns.  Request/reply bodies are Encoder/Decoder-framed; bulk
// object data never travels in a request — it moves through the
// server-directed bulk path (rpc::ServerContext::PullBulk/PushBulk).
#pragma once

#include <cstdint>

#include "rpc/rpc.h"
#include "rpc/service.h"
#include "security/types.h"
#include "storage/ids.h"
#include "storage/object_store.h"
#include "util/bytes.h"
#include "util/status.h"

namespace lwfs::core {

enum Op : rpc::Opcode {
  // Authentication service.
  kOpLogin = 1,
  kOpRevokeCred = 2,

  // Authorization service.
  kOpCreateContainer = 10,
  kOpGetCap = 11,
  kOpVerifyCap = 12,  // storage server -> authz
  kOpSetGrant = 13,
  kOpRevokeCapability = 14,
  kOpRefreshCap = 15,

  // Storage service (data plane).
  kOpObjCreate = 30,
  kOpObjWrite = 31,
  kOpObjRead = 32,
  kOpObjRemove = 33,
  kOpObjGetAttr = 34,
  kOpObjList = 35,
  kOpObjTruncate = 36,
  /// Active-storage filter: run a reduction at the server, ship the result.
  kOpObjFilter = 37,

  // Replication (storage data plane).  kOpObjCreateAt creates an object
  // under a registry-assigned id on every chain member; kOpReplicaWrite is
  // one chain hop: pull the chunk, apply locally, forward the same bytes to
  // the rest of the chain, reply only after the tail acked.
  kOpObjCreateAt = 38,
  kOpReplicaWrite = 39,

  // Storage service (control plane; sent to rpc::kControlPortal).
  kOpInvalidateCaps = 40,
  // Repair plane (control portal, service-to-service like InvalidateCaps):
  // the chunk replicator probes replica freshness and copies survivor bytes
  // onto stale members.
  kOpRepairProbe = 41,
  kOpRepairRead = 42,
  kOpRepairWrite = 43,

  // Storage service (data plane, cont.): slice read — the reply frame
  // itself carries the payload as store-owned slices (no client-registered
  // bulk-in region, no server push, no staging copy).
  kOpObjReadSlice = 44,

  // Two-phase-commit participant ops (storage and naming services).
  kOpTxnPrepare = 50,
  kOpTxnCommit = 51,
  kOpTxnAbort = 52,

  // Naming service.
  kOpNameMkdir = 60,
  kOpNameLink = 61,
  kOpNameLookup = 62,
  kOpNameUnlink = 63,
  kOpNameList = 64,
  kOpNameStageLink = 65,
  kOpNameRmdir = 66,
  kOpNameRename = 67,
  /// Stage an unlink inside a 2PC transaction (the source half of an
  /// atomic cross-shard rename; the destination shard stages the link).
  kOpNameStageUnlink = 68,
  /// Epoch-stamped shard-map snapshot; servable by any live shard, used by
  /// clients to refresh routing after a kWrongShard rejection.
  kOpNameShardMap = 69,

  // Replica registry (hosted by the naming server): placement, lookup,
  // staleness reports, and the replica-count audit.
  kOpReplicaPlace = 70,
  kOpReplicaLookup = 71,
  kOpReplicaReport = 72,
  kOpReplicaAudit = 73,

  // Lock service.
  kOpLockTry = 80,
  kOpLockRelease = 81,
};

// Every core opcode must stay inside the range the core family owns; the
// ranges themselves are proved disjoint in rpc/service.h.
static_assert(rpc::kCoreOpcodeRange.Contains(kOpLogin) &&
                  rpc::kCoreOpcodeRange.Contains(kOpRevokeCred) &&
                  rpc::kCoreOpcodeRange.Contains(kOpCreateContainer) &&
                  rpc::kCoreOpcodeRange.Contains(kOpGetCap) &&
                  rpc::kCoreOpcodeRange.Contains(kOpVerifyCap) &&
                  rpc::kCoreOpcodeRange.Contains(kOpSetGrant) &&
                  rpc::kCoreOpcodeRange.Contains(kOpRevokeCapability) &&
                  rpc::kCoreOpcodeRange.Contains(kOpRefreshCap) &&
                  rpc::kCoreOpcodeRange.Contains(kOpObjCreate) &&
                  rpc::kCoreOpcodeRange.Contains(kOpObjWrite) &&
                  rpc::kCoreOpcodeRange.Contains(kOpObjRead) &&
                  rpc::kCoreOpcodeRange.Contains(kOpObjRemove) &&
                  rpc::kCoreOpcodeRange.Contains(kOpObjGetAttr) &&
                  rpc::kCoreOpcodeRange.Contains(kOpObjList) &&
                  rpc::kCoreOpcodeRange.Contains(kOpObjTruncate) &&
                  rpc::kCoreOpcodeRange.Contains(kOpObjFilter) &&
                  rpc::kCoreOpcodeRange.Contains(kOpObjCreateAt) &&
                  rpc::kCoreOpcodeRange.Contains(kOpReplicaWrite) &&
                  rpc::kCoreOpcodeRange.Contains(kOpInvalidateCaps) &&
                  rpc::kCoreOpcodeRange.Contains(kOpRepairProbe) &&
                  rpc::kCoreOpcodeRange.Contains(kOpRepairRead) &&
                  rpc::kCoreOpcodeRange.Contains(kOpRepairWrite) &&
                  rpc::kCoreOpcodeRange.Contains(kOpObjReadSlice) &&
                  rpc::kCoreOpcodeRange.Contains(kOpTxnPrepare) &&
                  rpc::kCoreOpcodeRange.Contains(kOpTxnCommit) &&
                  rpc::kCoreOpcodeRange.Contains(kOpTxnAbort) &&
                  rpc::kCoreOpcodeRange.Contains(kOpNameMkdir) &&
                  rpc::kCoreOpcodeRange.Contains(kOpNameLink) &&
                  rpc::kCoreOpcodeRange.Contains(kOpNameLookup) &&
                  rpc::kCoreOpcodeRange.Contains(kOpNameUnlink) &&
                  rpc::kCoreOpcodeRange.Contains(kOpNameList) &&
                  rpc::kCoreOpcodeRange.Contains(kOpNameStageLink) &&
                  rpc::kCoreOpcodeRange.Contains(kOpNameRmdir) &&
                  rpc::kCoreOpcodeRange.Contains(kOpNameRename) &&
                  rpc::kCoreOpcodeRange.Contains(kOpNameStageUnlink) &&
                  rpc::kCoreOpcodeRange.Contains(kOpNameShardMap) &&
                  rpc::kCoreOpcodeRange.Contains(kOpReplicaPlace) &&
                  rpc::kCoreOpcodeRange.Contains(kOpReplicaLookup) &&
                  rpc::kCoreOpcodeRange.Contains(kOpReplicaReport) &&
                  rpc::kCoreOpcodeRange.Contains(kOpReplicaAudit) &&
                  rpc::kCoreOpcodeRange.Contains(kOpLockTry) &&
                  rpc::kCoreOpcodeRange.Contains(kOpLockRelease),
              "core opcode outside the core protocol family's range");

// ---- Shared encode/decode helpers -----------------------------------------

inline void EncodeObjAttr(Encoder& enc, const storage::ObjAttr& attr) {
  enc.PutU64(attr.cid.value);
  enc.PutU64(attr.size);
  enc.PutU64(attr.version);
}

inline Result<storage::ObjAttr> DecodeObjAttr(Decoder& dec) {
  auto cid = dec.GetU64();
  auto size = dec.GetU64();
  auto version = dec.GetU64();
  if (!cid.ok() || !size.ok() || !version.ok()) {
    return InvalidArgument("malformed object attributes");
  }
  return storage::ObjAttr{storage::ContainerId{*cid}, *size, *version};
}

inline void EncodeObjectRef(Encoder& enc, const storage::ObjectRef& ref) {
  enc.PutU64(ref.cid.value);
  enc.PutU32(ref.server_index);
  enc.PutU64(ref.oid.value);
}

inline Result<storage::ObjectRef> DecodeObjectRef(Decoder& dec) {
  auto cid = dec.GetU64();
  auto server = dec.GetU32();
  auto oid = dec.GetU64();
  if (!cid.ok() || !server.ok() || !oid.ok()) {
    return InvalidArgument("malformed object reference");
  }
  return storage::ObjectRef{storage::ContainerId{*cid}, *server,
                            storage::ObjectId{*oid}};
}

}  // namespace lwfs::core
