#include "portals/fault.h"

namespace lwfs::portals {

void FaultInjector::Seed(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  rng_ = Rng(seed);
}

void FaultInjector::SetDefault(const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  default_spec_ = spec;
  has_default_ = spec.any();
  RecomputeEnabledLocked();
}

void FaultInjector::SetLink(Nid src, Nid dst, const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  // A clean spec is stored, not erased: "this link is reliable" must be able
  // to override a lossy node/default spec (most specific wins).
  link_specs_[LinkKey(src, dst)] = spec;
  RecomputeEnabledLocked();
}

void FaultInjector::SetNode(Nid node, const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  node_specs_[node] = spec;
  RecomputeEnabledLocked();
}

void FaultInjector::ClearFaults() {
  std::lock_guard<std::mutex> lock(mutex_);
  has_default_ = false;
  default_spec_ = FaultSpec{};
  link_specs_.clear();
  node_specs_.clear();
  RecomputeEnabledLocked();
}

void FaultInjector::Partition(Nid a, Nid b, bool partitioned) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (partitioned) {
    partitions_.insert(PairKey(a, b));
  } else {
    partitions_.erase(PairKey(a, b));
  }
  RecomputeEnabledLocked();
}

void FaultInjector::CrashBeforeDelivery(Nid target) {
  std::lock_guard<std::mutex> lock(mutex_);
  crash_before_.insert(target);
  RecomputeEnabledLocked();
}

void FaultInjector::CrashAfterDelivery(Nid target) {
  std::lock_guard<std::mutex> lock(mutex_);
  crash_after_.insert(target);
  RecomputeEnabledLocked();
}

FaultCounters FaultInjector::LinkCounters(Nid src, Nid dst) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(LinkKey(src, dst));
  return it == counters_.end() ? FaultCounters{} : it->second;
}

FaultCounters FaultInjector::TotalCounters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  FaultCounters total;
  for (const auto& [key, c] : counters_) total += c;
  return total;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  has_default_ = false;
  default_spec_ = FaultSpec{};
  link_specs_.clear();
  node_specs_.clear();
  partitions_.clear();
  crash_before_.clear();
  crash_after_.clear();
  counters_.clear();
  RecomputeEnabledLocked();
}

void FaultInjector::RecomputeEnabledLocked() {
  enabled_.store(has_default_ || !link_specs_.empty() || !node_specs_.empty() ||
                     !partitions_.empty() || !crash_before_.empty() ||
                     !crash_after_.empty(),
                 std::memory_order_relaxed);
}

const FaultSpec* FaultInjector::SpecForLocked(Nid src, Nid dst) const {
  auto link = link_specs_.find(LinkKey(src, dst));
  if (link != link_specs_.end()) return &link->second;
  auto node = node_specs_.find(dst);
  if (node != node_specs_.end()) return &node->second;
  node = node_specs_.find(src);
  if (node != node_specs_.end()) return &node->second;
  if (has_default_) return &default_spec_;
  return nullptr;
}

FaultInjector::Plan FaultInjector::PlanOp(Nid src, Nid dst, bool is_put) {
  if (!enabled_.load(std::memory_order_relaxed)) return {};
  std::lock_guard<std::mutex> lock(mutex_);
  Plan plan;
  FaultCounters& counters = counters_[LinkKey(src, dst)];

  // Crash triggers fire regardless of link spec: they model the node dying,
  // not the wire misbehaving.
  if (crash_before_.erase(dst) > 0) {
    plan.crash_before = true;
    ++counters.crashes;
    RecomputeEnabledLocked();
    return plan;
  }
  if (crash_after_.erase(dst) > 0) {
    plan.crash_after = true;
    ++counters.crashes;
    RecomputeEnabledLocked();
  }

  if (partitions_.contains(PairKey(src, dst))) {
    plan.drop = true;
    ++counters.partition_drops;
    return plan;
  }

  const FaultSpec* spec = SpecForLocked(src, dst);
  if (spec == nullptr) return plan;
  if (spec->delay > 0 && rng_.NextDouble() < spec->delay) {
    plan.delay_us = spec->delay_us;
    ++counters.delays;
  }
  if (spec->drop > 0 && rng_.NextDouble() < spec->drop) {
    plan.drop = true;
    ++counters.drops;
    return plan;  // a lost message can't also be duplicated or corrupted
  }
  if (is_put && spec->duplicate > 0 && rng_.NextDouble() < spec->duplicate) {
    plan.duplicate = true;
    ++counters.duplicates;
  }
  if (spec->corrupt > 0 && rng_.NextDouble() < spec->corrupt) {
    plan.corrupt = true;
    ++counters.corruptions;
  }
  return plan;
}

void FaultInjector::CorruptSpan(MutableByteSpan data) {
  if (data.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t index = rng_.NextBelow(data.size());
  data[index] ^= static_cast<std::uint8_t>(1 + rng_.NextBelow(255));
}

}  // namespace lwfs::portals
