// In-process Portals-3-style one-sided messaging fabric.
//
// This module reproduces the transport semantics LWFS relies on (§3.2 of the
// paper): one-sided `Put`/`Get` against pre-registered memory, match-list
// demultiplexing, event queues, and *finite* receive resources.  The paper's
// server-directed I/O argument depends on exactly these properties:
//
//  * a server exposes a bounded request portal — when it overflows, new
//    requests are rejected and the client must resend (the failure mode of
//    client-pushed I/O);
//  * bulk data moves only when the *server* initiates a Get (write) or a
//    Put (read) against memory the client registered, so server buffers are
//    never overcommitted.
//
// Delivery is via in-memory queues between threads; a transfer is a memcpy
// performed by the initiating thread while holding the target NIC lock,
// which also models the serialization a real NIC DMA engine imposes.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "portals/fault.h"
#include "util/bytes.h"
#include "util/shared_buffer.h"
#include "util/status.h"
#include "util/sync_queue.h"

namespace lwfs::portals {

/// Node identifier.  Every service endpoint (client process, storage server,
/// authorization server, ...) owns one NIC and therefore one Nid.
using Nid = std::uint32_t;
inline constexpr Nid kInvalidNid = 0;

/// Match bits select a match entry within a portal table index, as in
/// Portals 3.0.  `ignore_bits` mask out don't-care bits at attach time.
using MatchBits = std::uint64_t;

/// Portal table index.  By convention (see rpc/), index 0 is the request
/// portal, index 1 the reply portal, and index 2 the bulk-data portal.
using PortalIndex = std::uint32_t;

enum class EventType : std::uint8_t {
  kPut,    // data arrived in an attached region / message entry (target side)
  kGet,    // data was read out of an attached region (target side)
  kReply,  // initiator-side completion of a Get
  kAck,    // initiator-side completion of a Put
};

/// Completion/delivery event.  For message-mode match entries the payload
/// travels inside the event; for region-mode entries the payload lands in
/// the registered memory and `payload` stays empty.
struct Event {
  EventType type = EventType::kPut;
  Nid initiator = kInvalidNid;
  PortalIndex portal = 0;
  MatchBits match_bits = 0;
  std::uint64_t hdr_data = 0;  // 64 piggy-backed header bits from initiator
  std::size_t offset = 0;
  std::size_t length = 0;
  std::uint64_t user_data = 0;  // from the match entry
  /// Message-mode only.  A ref-counted slice: when the sender Put an owned
  /// slice (or frame), this *is* the sender's buffer — zero-copy delivery —
  /// so receivers must treat it as immutable.
  util::SharedSlice payload;
  /// Message-mode, `deliver_parts` entries only.  A multi-part frame whose
  /// parts are all owned arrives as the sender's part list by reference
  /// (refcount bumps, no gather); `payload` stays empty.  Single-part and
  /// gathered messages use `payload` as before.
  std::vector<util::SharedSlice> parts;
};

/// Event queue handed to Attach(); bounded capacity models finite
/// receive-descriptor resources on an I/O node.
class EventQueue {
 public:
  explicit EventQueue(std::size_t capacity = 0, util::Clock* clock = nullptr)
      : queue_(capacity, clock) {}

  /// Blocking wait; nullopt after Close() drains.
  std::optional<Event> Wait() { return queue_.Pop(); }
  /// Blocking wait with deadline; nullopt on timeout/close.
  template <typename Rep, typename Period>
  std::optional<Event> WaitFor(std::chrono::duration<Rep, Period> timeout) {
    return queue_.PopFor(timeout);
  }
  /// Non-blocking poll.
  std::optional<Event> Poll() { return queue_.TryPop(); }

  /// Inject a locally generated event (e.g. an RPC engine wake-up).  This
  /// is not fabric traffic: it bypasses match lists and FabricStats.
  bool Inject(Event e) { return queue_.TryPush(std::move(e)); }

  void Close() { queue_.Close(); }
  [[nodiscard]] std::size_t Size() const { return queue_.Size(); }

 private:
  friend class Nic;
  bool Deliver(Event e) { return queue_.TryPush(std::move(e)); }

  SyncQueue<Event> queue_;
};

/// Behaviour of an attached match entry.
struct MeOptions {
  bool allow_put = false;
  bool allow_get = false;
  /// Remove the entry after it has been used once (single-use registered
  /// buffers, e.g. a per-request bulk region).
  bool unlink_on_use = false;
  /// Message mode: payload is copied into the event instead of a registered
  /// region (used for request/reply queues).  `region` must be empty.
  bool message_mode = false;
  /// Message mode only: a fully owned multi-part frame is delivered as the
  /// sender's part list (Event::parts) instead of being gathered into one
  /// contiguous payload.  Receivers opting in must parse across part
  /// boundaries; this is how reply frames carry bulk read slices without a
  /// delivery copy.
  bool deliver_parts = false;
};

/// Handle to an attached match entry; pass to Detach().
using MeHandle = std::uint64_t;
inline constexpr MeHandle kInvalidMeHandle = 0;

class Fabric;

/// A network interface bound to one Nid.  All member functions are
/// thread-safe.
class Nic {
 public:
  ~Nic();
  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  [[nodiscard]] Nid nid() const { return nid_; }

  /// Register a match entry.  `region` is the caller's memory and must
  /// outlive the entry (RAII wrapper: see RegisteredRegion below).
  Result<MeHandle> Attach(PortalIndex portal, MatchBits match_bits,
                          MatchBits ignore_bits, MutableByteSpan region,
                          const MeOptions& options, EventQueue* eq,
                          std::uint64_t user_data = 0);

  /// Register an *owned slice* as a get-only source region.  The entry
  /// holds a reference, so remote GetSlice() calls hand out zero-copy
  /// sub-slices that stay valid even after the entry is detached — the
  /// safety property the zero-copy pull path rests on.
  Result<MeHandle> AttachSlice(PortalIndex portal, MatchBits match_bits,
                               MatchBits ignore_bits, util::SharedSlice slice,
                               EventQueue* eq = nullptr,
                               std::uint64_t user_data = 0);

  /// Remove a match entry.  Succeeds (idempotently) even if the entry
  /// already auto-unlinked.
  Status Detach(MeHandle handle);

  // ---- Initiator-side one-sided operations -------------------------------

  /// Deposit `data` into the matching entry at `target`.  With a
  /// message-mode target entry, the data is delivered inside the event.
  /// Returns kResourceExhausted when the target has no matching resources
  /// (full event queue / no match entry): the caller must back off & resend.
  Status Put(Nid target, PortalIndex portal, MatchBits match_bits,
             ByteSpan data, std::size_t remote_offset = 0,
             std::uint64_t hdr_data = 0);

  /// Slice Put: an *owned* slice delivered to a message-mode entry rides by
  /// reference (zero-copy — receiver and sender share the bytes); external
  /// slices and region-mode targets behave like the span overload.
  Status Put(Nid target, PortalIndex portal, MatchBits match_bits,
             const util::SharedSlice& data, std::size_t remote_offset = 0,
             std::uint64_t hdr_data = 0);

  /// Scatter-gather Put: the frame's parts are transmitted as one message.
  /// The sender never flattens; a message-mode receiver gets the gathered
  /// bytes (single-part owned frames by reference), a region-mode receiver
  /// gets them placed contiguously at remote_offset.
  Status PutFrame(Nid target, PortalIndex portal, MatchBits match_bits,
                  const util::Frame& frame, std::size_t remote_offset = 0,
                  std::uint64_t hdr_data = 0);

  /// Read `out.size()` bytes from the matching registered region at
  /// `target` starting at `remote_offset`.
  Status Get(Nid target, PortalIndex portal, MatchBits match_bits,
             MutableByteSpan out, std::size_t remote_offset = 0);

  /// Slice Get: read `length` bytes from the matching region as a
  /// ref-counted slice.  Against a slice-backed entry (AttachSlice) this is
  /// zero-copy — a sub-slice sharing the registered slice's owner; against
  /// a raw region it stages one counted copy.  Injected corruption clones
  /// first (copy-on-write): the source bytes are never mutated.
  Result<util::SharedSlice> GetSlice(Nid target, PortalIndex portal,
                                     MatchBits match_bits, std::size_t length,
                                     std::size_t remote_offset = 0);

 private:
  friend class Fabric;
  Nic(Fabric* fabric, Nid nid) : fabric_(fabric), nid_(nid) {}

  struct MatchEntry {
    MeHandle handle;
    MatchBits match_bits;
    MatchBits ignore_bits;
    MutableByteSpan region;
    MeOptions options;
    EventQueue* eq;
    std::uint64_t user_data;
    /// Set by AttachSlice: the ref that makes zero-copy GetSlice safe.
    util::SharedSlice slice;
  };

  /// Common initiator-side Put path over a part list (fault plan, counters,
  /// duplicate delivery).  `total` is the summed part size.
  Status PutParts(Nid target, PortalIndex portal, MatchBits match_bits,
                  std::span<const util::SharedSlice> parts, std::size_t total,
                  std::size_t remote_offset, std::uint64_t hdr_data);

  // Target-side entry points, called by the initiating NIC.
  Status AcceptPut(Nid initiator, PortalIndex portal, MatchBits match_bits,
                   std::span<const util::SharedSlice> parts, std::size_t total,
                   std::size_t offset, std::uint64_t hdr_data);
  Status AcceptGet(Nid initiator, PortalIndex portal, MatchBits match_bits,
                   MutableByteSpan out, std::size_t offset);
  Result<util::SharedSlice> AcceptGetSlice(Nid initiator, PortalIndex portal,
                                           MatchBits match_bits,
                                           std::size_t length,
                                           std::size_t offset);

  /// Finds the first live entry matching (portal, bits); nullptr if none.
  MatchEntry* FindLocked(PortalIndex portal, MatchBits bits, bool want_put);
  void UnlinkLocked(PortalIndex portal, MeHandle handle);

  Fabric* const fabric_;
  const Nid nid_;
  std::mutex mutex_;
  std::uint64_t next_handle_ = 1;
  std::map<PortalIndex, std::vector<MatchEntry>> portal_table_;
};

/// Fabric statistics; used by tests that pin protocol message counts.
struct FabricStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t put_bytes = 0;
  std::uint64_t get_bytes = 0;
  std::uint64_t rejected = 0;  // Put/Get refused for lack of resources
};

/// The in-memory network.  Owns nothing but the routing table; NICs are
/// owned by their services via shared_ptr.
class Fabric {
 public:
  Fabric() = default;

  /// Create a NIC with a fresh Nid.
  std::shared_ptr<Nic> CreateNic();

  /// Simulated node failure: operations addressed to a down node fail with
  /// kUnavailable until the node is brought back up.
  void SetNodeDown(Nid nid, bool down);
  [[nodiscard]] bool IsNodeDown(Nid nid) const;

  /// Fault injection: every Put/Get consults this (pass-through until
  /// configured).  See portals/fault.h.
  [[nodiscard]] FaultInjector& injector() { return injector_; }

  /// Time source for injected delivery delays (nullptr = real time).  Set
  /// before traffic flows; ServiceRuntime wires its RuntimeOptions::clock
  /// here.
  void SetClock(util::Clock* clock) { clock_ = util::OrReal(clock); }
  [[nodiscard]] util::Clock* clock() const { return clock_; }

  [[nodiscard]] FabricStats Stats() const;
  void ResetStats();

 private:
  friend class Nic;
  std::shared_ptr<Nic> Route(Nid nid) const;
  void Unregister(Nid nid);
  void CountPut(std::size_t bytes);
  void UncountPut(std::size_t bytes);
  void CountGet(std::size_t bytes);
  void UncountGet(std::size_t bytes);
  void CountRejected();

  util::Clock* clock_ = util::RealClockInstance();
  mutable std::mutex mutex_;
  Nid next_nid_ = 1;
  std::unordered_map<Nid, std::weak_ptr<Nic>> nodes_;
  std::unordered_set<Nid> down_;
  FaultInjector injector_;

  std::atomic<std::uint64_t> puts_{0};
  std::atomic<std::uint64_t> gets_{0};
  std::atomic<std::uint64_t> put_bytes_{0};
  std::atomic<std::uint64_t> get_bytes_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

/// RAII wrapper that detaches a match entry on destruction.  Used for
/// per-operation bulk registrations on the client side.
class RegisteredRegion {
 public:
  RegisteredRegion() = default;
  RegisteredRegion(std::shared_ptr<Nic> nic, MeHandle handle)
      : nic_(std::move(nic)), handle_(handle) {}
  ~RegisteredRegion() { Release(); }

  RegisteredRegion(RegisteredRegion&& other) noexcept
      : nic_(std::move(other.nic_)), handle_(other.handle_) {
    other.handle_ = kInvalidMeHandle;
  }
  RegisteredRegion& operator=(RegisteredRegion&& other) noexcept {
    if (this != &other) {
      Release();
      nic_ = std::move(other.nic_);
      handle_ = other.handle_;
      other.handle_ = kInvalidMeHandle;
    }
    return *this;
  }
  RegisteredRegion(const RegisteredRegion&) = delete;
  RegisteredRegion& operator=(const RegisteredRegion&) = delete;

  [[nodiscard]] MeHandle handle() const { return handle_; }

  void Release() {
    if (nic_ && handle_ != kInvalidMeHandle) {
      (void)nic_->Detach(handle_);
      handle_ = kInvalidMeHandle;
    }
  }

 private:
  std::shared_ptr<Nic> nic_;
  MeHandle handle_ = kInvalidMeHandle;
};

}  // namespace lwfs::portals
