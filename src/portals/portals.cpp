#include "portals/portals.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "util/logging.h"

namespace lwfs::portals {

// ---------------------------------------------------------------------------
// Nic
// ---------------------------------------------------------------------------

Nic::~Nic() { fabric_->Unregister(nid_); }

Result<MeHandle> Nic::Attach(PortalIndex portal, MatchBits match_bits,
                             MatchBits ignore_bits, MutableByteSpan region,
                             const MeOptions& options, EventQueue* eq,
                             std::uint64_t user_data) {
  if (options.message_mode && !region.empty()) {
    return InvalidArgument("message-mode entry must not carry a region");
  }
  if (!options.message_mode && region.empty() && options.allow_put) {
    return InvalidArgument("region-mode put entry needs a region");
  }
  if (!options.allow_put && !options.allow_get) {
    return InvalidArgument("entry must allow put or get");
  }
  if (options.message_mode && eq == nullptr) {
    return InvalidArgument("message-mode entry needs an event queue");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  MeHandle handle = next_handle_++;
  portal_table_[portal].push_back(MatchEntry{handle, match_bits, ignore_bits,
                                             region, options, eq, user_data,
                                             util::SharedSlice{}});
  return handle;
}

Result<MeHandle> Nic::AttachSlice(PortalIndex portal, MatchBits match_bits,
                                  MatchBits ignore_bits,
                                  util::SharedSlice slice, EventQueue* eq,
                                  std::uint64_t user_data) {
  if (!slice.owned()) {
    return InvalidArgument("slice-backed entry needs an owned slice");
  }
  MeOptions options;
  options.allow_get = true;
  // The entry never writes: exposing the immutable bytes as the (mutable)
  // region keeps Get()/GetSlice() sharing one lookup path.
  MutableByteSpan region(const_cast<std::uint8_t*>(slice.data()),
                         slice.size());
  std::lock_guard<std::mutex> lock(mutex_);
  MeHandle handle = next_handle_++;
  portal_table_[portal].push_back(MatchEntry{handle, match_bits, ignore_bits,
                                             region, options, eq, user_data,
                                             std::move(slice)});
  return handle;
}

Status Nic::Detach(MeHandle handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [portal, entries] : portal_table_) {
    auto it = std::find_if(entries.begin(), entries.end(),
                           [&](const MatchEntry& e) { return e.handle == handle; });
    if (it != entries.end()) {
      entries.erase(it);
      return OkStatus();
    }
  }
  return OkStatus();  // already auto-unlinked: fine
}

Nic::MatchEntry* Nic::FindLocked(PortalIndex portal, MatchBits bits,
                                 bool want_put) {
  auto it = portal_table_.find(portal);
  if (it == portal_table_.end()) return nullptr;
  for (MatchEntry& e : it->second) {
    const bool op_ok = want_put ? e.options.allow_put : e.options.allow_get;
    if (!op_ok) continue;
    if ((e.match_bits & ~e.ignore_bits) == (bits & ~e.ignore_bits)) return &e;
  }
  return nullptr;
}

void Nic::UnlinkLocked(PortalIndex portal, MeHandle handle) {
  auto it = portal_table_.find(portal);
  if (it == portal_table_.end()) return;
  auto& entries = it->second;
  entries.erase(std::remove_if(entries.begin(), entries.end(),
                               [&](const MatchEntry& e) { return e.handle == handle; }),
                entries.end());
}

Status Nic::Put(Nid target, PortalIndex portal, MatchBits match_bits,
                ByteSpan data, std::size_t remote_offset,
                std::uint64_t hdr_data) {
  // External (borrowed) view: a message-mode receiver copies it at
  // delivery, exactly like the old Buffer path.
  const util::SharedSlice part = util::SharedSlice::External(data);
  return PutParts(target, portal, match_bits, {&part, 1}, data.size(),
                  remote_offset, hdr_data);
}

Status Nic::Put(Nid target, PortalIndex portal, MatchBits match_bits,
                const util::SharedSlice& data, std::size_t remote_offset,
                std::uint64_t hdr_data) {
  return PutParts(target, portal, match_bits, {&data, 1}, data.size(),
                  remote_offset, hdr_data);
}

Status Nic::PutFrame(Nid target, PortalIndex portal, MatchBits match_bits,
                     const util::Frame& frame, std::size_t remote_offset,
                     std::uint64_t hdr_data) {
  return PutParts(target, portal, match_bits,
                  {frame.parts.data(), frame.parts.size()}, frame.total_bytes,
                  remote_offset, hdr_data);
}

Status Nic::PutParts(Nid target, PortalIndex portal, MatchBits match_bits,
                     std::span<const util::SharedSlice> parts,
                     std::size_t total, std::size_t remote_offset,
                     std::uint64_t hdr_data) {
  if (fabric_->IsNodeDown(target) || fabric_->IsNodeDown(nid_)) {
    return Unavailable("node down");
  }
  FaultInjector::Plan plan = fabric_->injector_.PlanOp(nid_, target,
                                                       /*is_put=*/true);
  if (plan.crash_before) {
    // The target died before delivery: the message is lost with it, and the
    // initiator — one-sided Put, no ack protocol — sees success.
    fabric_->SetNodeDown(target, true);
    return OkStatus();
  }
  if (plan.delay_us > 0) {
    fabric_->clock()->SleepFor(std::chrono::microseconds(plan.delay_us));
  }
  if (plan.drop) {
    // Silent loss: only the caller's reply timeout will reveal it.
    return OkStatus();
  }
  std::shared_ptr<Nic> dest = fabric_->Route(target);
  if (!dest) return Unavailable("no such node");
  util::SharedSlice corrupted;
  if (plan.corrupt && total > 0) {
    // Copy-on-write: the parts may be shared with (or *be*) the sender's
    // live buffers, so corruption flips a byte of a private clone — never
    // the delivered originals.
    Buffer clone;
    clone.reserve(total);
    for (const util::SharedSlice& p : parts) {
      clone.insert(clone.end(), p.data(), p.data() + p.size());
    }
    LWFS_COUNT_COPY(util::CopyKind::kInjected, total);
    fabric_->injector_.CorruptSpan(MutableByteSpan(clone));
    corrupted = util::SharedSlice::FromBuffer(std::move(clone));
    parts = {&corrupted, 1};
  }
  // Count optimistically before delivery: the receiver may wake up on the
  // event and inspect fabric stats before this thread runs again, so the
  // count must already be visible.  Undone on failure.
  fabric_->CountPut(total);
  Status s = dest->AcceptPut(nid_, portal, match_bits, parts, total,
                             remote_offset, hdr_data);
  if (!s.ok()) {
    fabric_->UncountPut(total);
    if (s.code() == ErrorCode::kResourceExhausted) fabric_->CountRejected();
  } else if (plan.duplicate) {
    fabric_->CountPut(total);
    Status dup = dest->AcceptPut(nid_, portal, match_bits, parts, total,
                                 remote_offset, hdr_data);
    if (!dup.ok()) fabric_->UncountPut(total);
  }
  if (plan.crash_after) fabric_->SetNodeDown(target, true);
  return s;
}

Status Nic::Get(Nid target, PortalIndex portal, MatchBits match_bits,
                MutableByteSpan out, std::size_t remote_offset) {
  if (fabric_->IsNodeDown(target) || fabric_->IsNodeDown(nid_)) {
    return Unavailable("node down");
  }
  FaultInjector::Plan plan = fabric_->injector_.PlanOp(nid_, target,
                                                       /*is_put=*/false);
  if (plan.crash_before) {
    fabric_->SetNodeDown(target, true);
    return Timeout("injected fault: node crashed before get");
  }
  if (plan.delay_us > 0) {
    fabric_->clock()->SleepFor(std::chrono::microseconds(plan.delay_us));
  }
  if (plan.drop) {
    // A lost Get (request or response leg) looks like no response at all:
    // retryable kTimeout, unlike the kUnavailable of a known-down node.
    return Timeout("injected fault: get lost");
  }
  std::shared_ptr<Nic> dest = fabric_->Route(target);
  if (!dest) return Unavailable("no such node");
  fabric_->CountGet(out.size());
  Status s = dest->AcceptGet(nid_, portal, match_bits, out, remote_offset);
  if (!s.ok()) {
    fabric_->UncountGet(out.size());
    if (s.code() == ErrorCode::kResourceExhausted) fabric_->CountRejected();
  } else if (plan.corrupt) {
    // `out` is the initiator's private destination copy, so flipping it in
    // place mutates nothing shared.
    fabric_->injector_.CorruptSpan(out);
  }
  if (plan.crash_after) fabric_->SetNodeDown(target, true);
  return s;
}

Result<util::SharedSlice> Nic::GetSlice(Nid target, PortalIndex portal,
                                        MatchBits match_bits,
                                        std::size_t length,
                                        std::size_t remote_offset) {
  if (fabric_->IsNodeDown(target) || fabric_->IsNodeDown(nid_)) {
    return Unavailable("node down");
  }
  FaultInjector::Plan plan = fabric_->injector_.PlanOp(nid_, target,
                                                       /*is_put=*/false);
  if (plan.crash_before) {
    fabric_->SetNodeDown(target, true);
    return Timeout("injected fault: node crashed before get");
  }
  if (plan.delay_us > 0) {
    fabric_->clock()->SleepFor(std::chrono::microseconds(plan.delay_us));
  }
  if (plan.drop) {
    return Timeout("injected fault: get lost");
  }
  std::shared_ptr<Nic> dest = fabric_->Route(target);
  if (!dest) return Unavailable("no such node");
  fabric_->CountGet(length);
  Result<util::SharedSlice> got =
      dest->AcceptGetSlice(nid_, portal, match_bits, length, remote_offset);
  if (!got.ok()) {
    fabric_->UncountGet(length);
    if (got.status().code() == ErrorCode::kResourceExhausted) {
      fabric_->CountRejected();
    }
    return got;
  }
  if (plan.corrupt && !got->empty()) {
    // The slice may alias the *source's* registered memory (zero-copy
    // pull): corrupt a private clone, copy-on-write.
    Buffer clone = got->ToBuffer(util::CopyKind::kInjected);
    fabric_->injector_.CorruptSpan(MutableByteSpan(clone));
    *got = util::SharedSlice::FromBuffer(std::move(clone));
  }
  if (plan.crash_after) fabric_->SetNodeDown(target, true);
  return got;
}

Status Nic::AcceptPut(Nid initiator, PortalIndex portal, MatchBits match_bits,
                      std::span<const util::SharedSlice> parts,
                      std::size_t total, std::size_t offset,
                      std::uint64_t hdr_data) {
  std::lock_guard<std::mutex> lock(mutex_);
  MatchEntry* me = FindLocked(portal, match_bits, /*want_put=*/true);
  if (me == nullptr) {
    return ResourceExhausted("no matching put entry");
  }

  Event ev;
  ev.type = EventType::kPut;
  ev.initiator = initiator;
  ev.portal = portal;
  ev.match_bits = match_bits;
  ev.hdr_data = hdr_data;
  ev.offset = offset;
  ev.length = total;
  ev.user_data = me->user_data;

  if (me->options.message_mode) {
    const bool all_owned =
        std::all_of(parts.begin(), parts.end(),
                    [](const util::SharedSlice& p) { return p.owned(); });
    if (parts.size() == 1 && parts.front().owned()) {
      // Zero-copy delivery: the event references the sender's bytes.
      ev.payload = parts.front();
    } else if (me->options.deliver_parts && parts.size() > 1 && all_owned) {
      // Zero-copy scatter delivery: the event carries the sender's part
      // list by reference.  Each part bumps a refcount, so a bulk slice
      // riding a reply frame reaches the receiver still backed by the
      // store's (or reply cache's) memory.
      ev.parts.assign(parts.begin(), parts.end());
    } else {
      // Gather (or borrow-copy) at the delivery point — the one host copy
      // a scattered or externally owned message pays.
      Buffer flat;
      flat.reserve(total);
      for (const util::SharedSlice& p : parts) {
        flat.insert(flat.end(), p.data(), p.data() + p.size());
      }
      LWFS_COUNT_COPY(util::CopyKind::kDeliver, total);
      ev.payload = util::SharedSlice::FromBuffer(std::move(flat));
    }
    if (!me->eq->Deliver(std::move(ev))) {
      // Bounded event queue full: the I/O node's request buffer overflowed.
      return ResourceExhausted("event queue full");
    }
  } else {
    if (offset + total > me->region.size()) {
      return OutOfRange("put beyond registered region");
    }
    // Placement into the registered destination region is the modeled DMA
    // (the wire transfer itself), not a host copy — uncounted.
    std::size_t at = offset;
    for (const util::SharedSlice& p : parts) {
      if (!p.empty()) {
        std::memcpy(me->region.data() + at, p.data(), p.size());
      }
      at += p.size();
    }
    if (me->eq != nullptr && !me->eq->Deliver(std::move(ev))) {
      return ResourceExhausted("event queue full");
    }
  }
  if (me->options.unlink_on_use) UnlinkLocked(portal, me->handle);
  return OkStatus();
}

Status Nic::AcceptGet(Nid initiator, PortalIndex portal, MatchBits match_bits,
                      MutableByteSpan out, std::size_t offset) {
  std::lock_guard<std::mutex> lock(mutex_);
  MatchEntry* me = FindLocked(portal, match_bits, /*want_put=*/false);
  if (me == nullptr) {
    return ResourceExhausted("no matching get entry");
  }
  if (me->options.message_mode) {
    return InvalidArgument("cannot Get from a message-mode entry");
  }
  if (offset + out.size() > me->region.size()) {
    return OutOfRange("get beyond registered region");
  }
  if (!out.empty()) {
    std::memcpy(out.data(), me->region.data() + offset, out.size());
  }
  if (me->eq != nullptr) {
    Event ev;
    ev.type = EventType::kGet;
    ev.initiator = initiator;
    ev.portal = portal;
    ev.match_bits = match_bits;
    ev.offset = offset;
    ev.length = out.size();
    ev.user_data = me->user_data;
    (void)me->eq->Deliver(std::move(ev));  // best-effort notification
  }
  if (me->options.unlink_on_use) UnlinkLocked(portal, me->handle);
  return OkStatus();
}

Result<util::SharedSlice> Nic::AcceptGetSlice(Nid initiator,
                                              PortalIndex portal,
                                              MatchBits match_bits,
                                              std::size_t length,
                                              std::size_t offset) {
  std::lock_guard<std::mutex> lock(mutex_);
  MatchEntry* me = FindLocked(portal, match_bits, /*want_put=*/false);
  if (me == nullptr) {
    return ResourceExhausted("no matching get entry");
  }
  if (me->options.message_mode) {
    return InvalidArgument("cannot Get from a message-mode entry");
  }
  if (offset + length > me->region.size()) {
    return OutOfRange("get beyond registered region");
  }
  util::SharedSlice out;
  if (me->slice.owned()) {
    // Zero-copy pull: a sub-slice sharing the registered slice's owner —
    // valid even after the source detaches, because the ref holds the
    // bytes alive.
    out = me->slice.Slice(offset, length);
  } else {
    // Raw region (borrowed caller memory): the puller gets a private
    // staged copy, since the region's lifetime ends at Detach.
    out = util::SharedSlice::Copy(
        ByteSpan(me->region.data() + offset, length), util::CopyKind::kStage);
  }
  if (me->eq != nullptr) {
    Event ev;
    ev.type = EventType::kGet;
    ev.initiator = initiator;
    ev.portal = portal;
    ev.match_bits = match_bits;
    ev.offset = offset;
    ev.length = length;
    ev.user_data = me->user_data;
    (void)me->eq->Deliver(std::move(ev));  // best-effort notification
  }
  if (me->options.unlink_on_use) UnlinkLocked(portal, me->handle);
  return out;
}

// ---------------------------------------------------------------------------
// Fabric
// ---------------------------------------------------------------------------

std::shared_ptr<Nic> Fabric::CreateNic() {
  std::lock_guard<std::mutex> lock(mutex_);
  Nid nid = next_nid_++;
  auto nic = std::shared_ptr<Nic>(new Nic(this, nid));
  nodes_[nid] = nic;
  return nic;
}

std::shared_ptr<Nic> Fabric::Route(Nid nid) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = nodes_.find(nid);
  if (it == nodes_.end()) return nullptr;
  return it->second.lock();
}

void Fabric::Unregister(Nid nid) {
  std::lock_guard<std::mutex> lock(mutex_);
  nodes_.erase(nid);
}

void Fabric::SetNodeDown(Nid nid, bool down) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (down) {
    down_.insert(nid);
  } else {
    down_.erase(nid);
  }
}

bool Fabric::IsNodeDown(Nid nid) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return down_.contains(nid);
}

FabricStats Fabric::Stats() const {
  FabricStats s;
  s.puts = puts_.load(std::memory_order_relaxed);
  s.gets = gets_.load(std::memory_order_relaxed);
  s.put_bytes = put_bytes_.load(std::memory_order_relaxed);
  s.get_bytes = get_bytes_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  return s;
}

void Fabric::ResetStats() {
  puts_.store(0);
  gets_.store(0);
  put_bytes_.store(0);
  get_bytes_.store(0);
  rejected_.store(0);
}

void Fabric::CountPut(std::size_t bytes) {
  puts_.fetch_add(1, std::memory_order_relaxed);
  put_bytes_.fetch_add(bytes, std::memory_order_relaxed);
}
void Fabric::UncountPut(std::size_t bytes) {
  puts_.fetch_sub(1, std::memory_order_relaxed);
  put_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
}
void Fabric::CountGet(std::size_t bytes) {
  gets_.fetch_add(1, std::memory_order_relaxed);
  get_bytes_.fetch_add(bytes, std::memory_order_relaxed);
}
void Fabric::UncountGet(std::size_t bytes) {
  gets_.fetch_sub(1, std::memory_order_relaxed);
  get_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
}
void Fabric::CountRejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }

}  // namespace lwfs::portals
