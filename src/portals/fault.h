// Deterministic fault injection for the portals fabric.
//
// The paper's robustness story (§3.2, §3.4) is that LWFS pays for failures
// in *small* messages — resends, two-phase commit, journal replay — instead
// of bulk data.  The FaultInjector makes that story testable: every Put/Get
// crossing the fabric consults it and may be dropped, duplicated, delayed,
// or payload-corrupted with per-link seeded probabilities; links can be
// partitioned outright; and one-shot "crash before/after delivery" triggers
// let tests kill a node at a precise protocol step.
//
// Semantics (chosen to exercise the *recovery* paths, not just fail fast):
//  * a dropped or partitioned Put is SILENT — the initiator sees success and
//    only the RPC reply timeout reveals the loss (lost request, lost reply,
//    and lost bulk push all look like this on a real wire);
//  * a dropped Get returns kTimeout, the retryable "no response" outcome,
//    distinct from the kUnavailable of a known-down node;
//  * corruption flips one byte of the delivered copy; wire/bulk checksums
//    in the RPC layer must turn it into kDataLoss or a retransmit;
//  * crash triggers mark the target down via Fabric::SetNodeDown, so the
//    node stays dead until a Restart() path brings it back.
//
// Default-constructed state is pass-through with zero per-message overhead
// beyond one relaxed atomic load, so the fabric's wire-pin tests see an
// unchanged message stream.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "util/bytes.h"
#include "util/rng.h"

namespace lwfs::portals {

using Nid = std::uint32_t;  // same alias as portals.h (kept include-free)

/// Fault probabilities for one link (or node, or the whole fabric), each
/// rolled independently per message, in [0, 1].
struct FaultSpec {
  double drop = 0;       // message silently lost (Put) / times out (Get)
  double duplicate = 0;  // Put delivered twice (meaningless for Get)
  double corrupt = 0;    // one byte of the delivered payload flipped
  double delay = 0;      // delivery delayed by delay_us
  int delay_us = 200;

  [[nodiscard]] bool any() const {
    return drop > 0 || duplicate > 0 || corrupt > 0 || delay > 0;
  }
};

/// What the injector did, per link and in total.
struct FaultCounters {
  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t delays = 0;
  std::uint64_t partition_drops = 0;
  std::uint64_t crashes = 0;

  FaultCounters& operator+=(const FaultCounters& o) {
    drops += o.drops;
    duplicates += o.duplicates;
    corruptions += o.corruptions;
    delays += o.delays;
    partition_drops += o.partition_drops;
    crashes += o.crashes;
    return *this;
  }
};

class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Re-seed the fault stream (same seed + same message order => same
  /// fault sequence).
  void Seed(std::uint64_t seed);

  /// Faults for every link without a more specific spec.
  void SetDefault(const FaultSpec& spec);
  /// Faults for the directed link src -> dst (most specific, wins; a clean
  /// spec marks the link explicitly reliable under a lossy node/default).
  void SetLink(Nid src, Nid dst, const FaultSpec& spec);
  /// Faults for every link touching `node` in either direction (used by the
  /// chaos tests to make all *service* traffic lossy while app-internal
  /// communicators stay clean).
  void SetNode(Nid node, const FaultSpec& spec);
  /// Remove every configured spec (partitions and pending crash triggers
  /// stay; counters stay).
  void ClearFaults();

  /// Symmetric partition: while on, nothing crosses between a and b (Puts
  /// vanish silently, Gets time out).
  void Partition(Nid a, Nid b, bool partitioned);

  /// One-shot: the next message addressed to `target` finds it crashed —
  /// the message is lost and the node is marked down (caller restores it
  /// with Fabric::SetNodeDown(nid, false) after a Restart()).
  void CrashBeforeDelivery(Nid target);
  /// One-shot: the next message addressed to `target` is delivered, then
  /// the node crashes.
  void CrashAfterDelivery(Nid target);

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] FaultCounters LinkCounters(Nid src, Nid dst) const;
  [[nodiscard]] FaultCounters TotalCounters() const;

  /// Back to pass-through: clears specs, partitions, crash triggers, and
  /// counters.
  void Reset();

 private:
  friend class Nic;

  struct Plan {
    bool drop = false;
    bool duplicate = false;
    bool corrupt = false;
    bool crash_before = false;
    bool crash_after = false;
    int delay_us = 0;
  };

  /// Roll the dice for one message on src -> dst.  Cheap no-op while no
  /// fault is configured.
  Plan PlanOp(Nid src, Nid dst, bool is_put);
  /// Flip one seeded byte of `data` (the corruption payload).
  void CorruptSpan(MutableByteSpan data);

  void RecomputeEnabledLocked();
  [[nodiscard]] const FaultSpec* SpecForLocked(Nid src, Nid dst) const;
  static std::uint64_t LinkKey(Nid src, Nid dst) {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }
  static std::uint64_t PairKey(Nid a, Nid b) {
    return a < b ? LinkKey(a, b) : LinkKey(b, a);
  }

  mutable std::mutex mutex_;
  std::atomic<bool> enabled_{false};
  Rng rng_{0x1EAF5EEDULL};
  bool has_default_ = false;
  FaultSpec default_spec_;
  std::unordered_map<std::uint64_t, FaultSpec> link_specs_;
  std::unordered_map<Nid, FaultSpec> node_specs_;
  std::unordered_set<std::uint64_t> partitions_;
  std::unordered_set<Nid> crash_before_;
  std::unordered_set<Nid> crash_after_;
  std::map<std::uint64_t, FaultCounters> counters_;  // by LinkKey
};

}  // namespace lwfs::portals
