// Error model for the LWFS reproduction.
//
// All fallible public APIs return `Status` (no payload) or `Result<T>`
// (payload or error).  Exceptions are reserved for programming errors
// (precondition violations) and are never used for I/O-path control flow,
// which keeps the hot path allocation-free on success.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace lwfs {

/// Canonical error codes, shared by every service in the system.  The set is
/// deliberately small: services map their domain failures onto these so that
/// clients can write uniform retry/abort logic.
enum class ErrorCode : int {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,   // authorization failure (bad/revoked capability)
  kUnauthenticated,    // authentication failure (bad/expired credential)
  kResourceExhausted,  // buffers full, quota exceeded
  kFailedPrecondition, // e.g. transaction not in prepared state
  kAborted,            // transaction aborted
  kOutOfRange,         // read/write beyond object extent rules
  kUnavailable,        // server unreachable / shut down
  kTimeout,
  kDataLoss,           // journal/object corruption detected
  kInternal,
  kWrongShard,         // request routed to a server that does not own the key
};

/// Human-readable name for an error code (stable, used in logs and tests).
constexpr std::string_view ErrorCodeName(ErrorCode c) {
  switch (c) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kPermissionDenied: return "PERMISSION_DENIED";
    case ErrorCode::kUnauthenticated: return "UNAUTHENTICATED";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kAborted: return "ABORTED";
    case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kDataLoss: return "DATA_LOSS";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kWrongShard: return "WRONG_SHARD";
  }
  return "UNKNOWN";
}

/// A status is an error code plus an optional context message.  `Status` is
/// cheap to copy on the OK path (empty string).
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  [[nodiscard]] bool ok() const { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string ToString() const {
    std::string s{ErrorCodeName(code_)};
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgument(std::string m) {
  return {ErrorCode::kInvalidArgument, std::move(m)};
}
inline Status NotFound(std::string m) {
  return {ErrorCode::kNotFound, std::move(m)};
}
inline Status AlreadyExists(std::string m) {
  return {ErrorCode::kAlreadyExists, std::move(m)};
}
inline Status PermissionDenied(std::string m) {
  return {ErrorCode::kPermissionDenied, std::move(m)};
}
inline Status Unauthenticated(std::string m) {
  return {ErrorCode::kUnauthenticated, std::move(m)};
}
inline Status ResourceExhausted(std::string m) {
  return {ErrorCode::kResourceExhausted, std::move(m)};
}
inline Status FailedPrecondition(std::string m) {
  return {ErrorCode::kFailedPrecondition, std::move(m)};
}
inline Status Aborted(std::string m) {
  return {ErrorCode::kAborted, std::move(m)};
}
inline Status OutOfRange(std::string m) {
  return {ErrorCode::kOutOfRange, std::move(m)};
}
inline Status Unavailable(std::string m) {
  return {ErrorCode::kUnavailable, std::move(m)};
}
inline Status Timeout(std::string m) {
  return {ErrorCode::kTimeout, std::move(m)};
}
inline Status DataLoss(std::string m) {
  return {ErrorCode::kDataLoss, std::move(m)};
}
inline Status Internal(std::string m) {
  return {ErrorCode::kInternal, std::move(m)};
}
inline Status WrongShard(std::string m) {
  return {ErrorCode::kWrongShard, std::move(m)};
}

/// Result<T>: either a value or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from values and from error statuses keeps call
  // sites readable (`return obj;` / `return NotFound("...")`).
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(rep_).ok() && "Result built from OK status");
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(rep_); }

  [[nodiscard]] const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

  /// Value if present, otherwise `fallback`.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> rep_;
};

// Propagate a non-OK status from an expression.  Usage:
//   LWFS_RETURN_IF_ERROR(DoThing());
#define LWFS_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::lwfs::Status lwfs_status_ = (expr);            \
    if (!lwfs_status_.ok()) return lwfs_status_;     \
  } while (0)

// Assign the value of a Result or propagate its error.  Usage:
//   LWFS_ASSIGN_OR_RETURN(auto obj, CreateObject(...));
#define LWFS_ASSIGN_OR_RETURN(decl, expr)            \
  decl = ({                                          \
    auto lwfs_result_ = (expr);                      \
    if (!lwfs_result_.ok()) return lwfs_result_.status(); \
    std::move(lwfs_result_).value();                 \
  })

}  // namespace lwfs
