#include "util/shared_buffer.h"

namespace lwfs::util {

CopyStats& CopyStats::Instance() {
  static CopyStats stats;
  return stats;
}

}  // namespace lwfs::util
