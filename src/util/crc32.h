// CRC32 (IEEE 802.3 polynomial, reflected) for wire and journal integrity.
//
// Every RPC frame and journal record carries a CRC so that corruption —
// injected by the fault fabric or real in a deployment — surfaces as a
// clean kDataLoss/retransmit instead of a garbage decode.  Slicing-by-8
// keeps the checksum cheap relative to the memcpy the fabric already pays
// per transfer; tables are built once at first use.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "util/bytes.h"

namespace lwfs {

namespace detail {

struct Crc32Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t;

  Crc32Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      for (std::size_t slice = 1; slice < 8; ++slice) {
        t[slice][i] = (t[slice - 1][i] >> 8) ^ t[0][t[slice - 1][i] & 0xFFu];
      }
    }
  }
};

inline const Crc32Tables& Crc32T() {
  static const Crc32Tables tables;
  return tables;
}

}  // namespace detail

/// Incrementally extend `crc` (state form, no final inversion applied yet)
/// over `data`.  Start from Crc32Init(), finish with Crc32Final().
inline std::uint32_t Crc32Update(std::uint32_t crc, const std::uint8_t* data,
                                 std::size_t size) {
  const auto& t = detail::Crc32T().t;
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(data[i]) |
                                    static_cast<std::uint32_t>(data[i + 1]) << 8 |
                                    static_cast<std::uint32_t>(data[i + 2]) << 16 |
                                    static_cast<std::uint32_t>(data[i + 3]) << 24);
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
          t[4][lo >> 24] ^ t[3][data[i + 4]] ^ t[2][data[i + 5]] ^
          t[1][data[i + 6]] ^ t[0][data[i + 7]];
  }
  for (; i < size; ++i) {
    crc = (crc >> 8) ^ t[0][(crc ^ data[i]) & 0xFFu];
  }
  return crc;
}

inline constexpr std::uint32_t Crc32Init() { return 0xFFFFFFFFu; }
inline constexpr std::uint32_t Crc32Final(std::uint32_t crc) { return ~crc; }

/// One-shot CRC32 of a byte span.
inline std::uint32_t Crc32(ByteSpan data) {
  return Crc32Final(Crc32Update(Crc32Init(), data.data(), data.size()));
}

/// Streaming accumulator for data that arrives in ordered chunks (the
/// server's sequential bulk pulls/pushes).
class Crc32Accumulator {
 public:
  void Update(ByteSpan data) {
    crc_ = Crc32Update(crc_, data.data(), data.size());
    bytes_ += data.size();
  }
  [[nodiscard]] std::uint32_t value() const { return Crc32Final(crc_); }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  void Reset() {
    crc_ = Crc32Init();
    bytes_ = 0;
  }

 private:
  std::uint32_t crc_ = Crc32Init();
  std::uint64_t bytes_ = 0;
};

}  // namespace lwfs
