// CRC32-C (Castagnoli polynomial, reflected) for wire and journal
// integrity.
//
// Every RPC frame and journal record carries a CRC so that corruption —
// injected by the fault fabric or real in a deployment — surfaces as a
// clean kDataLoss/retransmit instead of a garbage decode.  On x86-64 the
// checksum uses the SSE4.2 crc32 instruction (runtime-detected), which
// keeps the per-byte cost well under the memcpy the fabric already pays
// per transfer; elsewhere a slicing-by-8 table fallback computes the same
// polynomial.  Checksums never leave the process (frames and journals are
// written and read by this code), so the polynomial is an internal choice.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "util/bytes.h"

namespace lwfs {

namespace detail {

// Reflected CRC32-C polynomial (bit-reversed 0x1EDC6F41) — the same one
// the SSE4.2 crc32 instruction implements, so the table fallback and the
// hardware path agree bit-for-bit.
constexpr std::uint32_t kCrc32cPoly = 0x82F63B78u;

struct Crc32Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t;

  Crc32Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kCrc32cPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      for (std::size_t slice = 1; slice < 8; ++slice) {
        t[slice][i] = (t[slice - 1][i] >> 8) ^ t[0][t[slice - 1][i] & 0xFFu];
      }
    }
  }
};

inline const Crc32Tables& Crc32T() {
  static const Crc32Tables tables;
  return tables;
}

inline std::uint32_t Crc32UpdateSw(std::uint32_t crc, const std::uint8_t* data,
                                   std::size_t size) {
  const auto& t = Crc32T().t;
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(data[i]) |
                                    static_cast<std::uint32_t>(data[i + 1]) << 8 |
                                    static_cast<std::uint32_t>(data[i + 2]) << 16 |
                                    static_cast<std::uint32_t>(data[i + 3]) << 24);
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
          t[4][lo >> 24] ^ t[3][data[i + 4]] ^ t[2][data[i + 5]] ^
          t[1][data[i + 6]] ^ t[0][data[i + 7]];
  }
  for (; i < size; ++i) {
    crc = (crc >> 8) ^ t[0][(crc ^ data[i]) & 0xFFu];
  }
  return crc;
}

#if defined(__x86_64__) && defined(__GNUC__)
#define LWFS_CRC32_HW 1

__attribute__((target("sse4.2"))) inline std::uint32_t Crc32UpdateHw(
    std::uint32_t crc, const std::uint8_t* data, std::size_t size) {
  std::uint64_t c = crc;
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t v;
    std::memcpy(&v, data + i, 8);
    c = __builtin_ia32_crc32di(c, v);
  }
  std::uint32_t c32 = static_cast<std::uint32_t>(c);
  for (; i < size; ++i) {
    c32 = __builtin_ia32_crc32qi(c32, data[i]);
  }
  return c32;
}

inline bool Crc32HwAvailable() {
  static const bool ok = __builtin_cpu_supports("sse4.2");
  return ok;
}
#endif  // __x86_64__ && __GNUC__

/// Multiply a 32x32 GF(2) matrix (rows = images of basis vectors) by a
/// column vector.
inline std::uint32_t Gf2MatrixTimes(const std::uint32_t* mat,
                                    std::uint32_t vec) {
  std::uint32_t sum = 0;
  while (vec != 0) {
    if (vec & 1u) sum ^= *mat;
    vec >>= 1;
    ++mat;
  }
  return sum;
}

inline void Gf2MatrixSquare(std::uint32_t* dst, const std::uint32_t* src) {
  for (int n = 0; n < 32; ++n) dst[n] = Gf2MatrixTimes(src, src[n]);
}

/// Operators that advance a CRC register past 2^k zero bytes, k = 0..63,
/// built once by repeated squaring of the one-zero-bit operator.
struct Crc32ZeroOps {
  std::uint32_t op[64][32];

  Crc32ZeroOps() {
    std::uint32_t odd[32];
    std::uint32_t even[32];
    odd[0] = kCrc32cPoly;  // operator for one zero bit
    std::uint32_t row = 1;
    for (int n = 1; n < 32; ++n) {
      odd[n] = row;
      row <<= 1;
    }
    Gf2MatrixSquare(even, odd);   // two zero bits
    Gf2MatrixSquare(odd, even);   // four zero bits
    Gf2MatrixSquare(op[0], odd);  // eight zero bits: one zero byte
    for (int k = 1; k < 64; ++k) Gf2MatrixSquare(op[k], op[k - 1]);
  }
};

inline const Crc32ZeroOps& Crc32Zero() {
  static const Crc32ZeroOps ops;
  return ops;
}

}  // namespace detail

/// Incrementally extend `crc` (state form, no final inversion applied yet)
/// over `data`.  Start from Crc32Init(), finish with Crc32Final().
inline std::uint32_t Crc32Update(std::uint32_t crc, const std::uint8_t* data,
                                 std::size_t size) {
#ifdef LWFS_CRC32_HW
  if (detail::Crc32HwAvailable()) {
    return detail::Crc32UpdateHw(crc, data, size);
  }
#endif
  return detail::Crc32UpdateSw(crc, data, size);
}

inline constexpr std::uint32_t Crc32Init() { return 0xFFFFFFFFu; }
inline constexpr std::uint32_t Crc32Final(std::uint32_t crc) { return ~crc; }

/// One-shot CRC32 of a byte span.
inline std::uint32_t Crc32(ByteSpan data) {
  return Crc32Final(Crc32Update(Crc32Init(), data.data(), data.size()));
}

/// CRC32 of the concatenation A||B given only the CRCs of A and of B:
/// shift `crc_a` through `len_b` zero bytes with O(log len_b) GF(2) matrix
/// applications and xor in `crc_b` (the init/final-inversion constants
/// cancel, as in zlib's crc32_combine).  This is what lets a frame
/// checksum reuse a payload slice's producer-cached CRC instead of
/// re-streaming megabytes through the CRC unit.
inline std::uint32_t Crc32Combine(std::uint32_t crc_a, std::uint32_t crc_b,
                                  std::uint64_t len_b) {
  const detail::Crc32ZeroOps& ops = detail::Crc32Zero();
  for (int k = 0; len_b != 0 && k < 64; ++k, len_b >>= 1) {
    if (len_b & 1u) crc_a = detail::Gf2MatrixTimes(ops.op[k], crc_a);
  }
  return crc_a ^ crc_b;
}

/// Streaming accumulator for data that arrives in ordered chunks (the
/// server's sequential bulk pulls/pushes).
class Crc32Accumulator {
 public:
  void Update(ByteSpan data) {
    crc_ = Crc32Update(crc_, data.data(), data.size());
    bytes_ += data.size();
  }
  [[nodiscard]] std::uint32_t value() const { return Crc32Final(crc_); }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  void Reset() {
    crc_ = Crc32Init();
    bytes_ = 0;
  }

 private:
  std::uint32_t crc_ = Crc32Init();
  std::uint64_t bytes_ = 0;
};

}  // namespace lwfs
