// Summary statistics used by the benchmark harnesses.
//
// The paper reports "the average and standard deviation over a minimum of 5
// trials"; RunningStats provides exactly that (Welford's algorithm), and
// Percentiles supports latency-distribution reporting for the ablations.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace lwfs {

/// Single-pass mean/variance accumulator (Welford).  Numerically stable; no
/// storage of samples.
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  [[nodiscard]] double stddev() const;

  /// Merge another accumulator into this one (parallel reduction).
  void Merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores samples and answers percentile queries.  Suitable for the bench
/// harness sample counts (thousands), not for unbounded telemetry.
class Percentiles {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  /// p in [0,100].  Nearest-rank on the sorted samples; returns 0 when empty.
  [[nodiscard]] double Get(double p) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace lwfs
