// Byte buffers and a compact little-endian wire format.
//
// Every RPC payload in the system is encoded with Encoder/Decoder.  The
// format is fixed-width little-endian integers and length-prefixed byte
// strings; no varints, no alignment padding.  Decoding is bounds-checked and
// never reads past the underlying buffer.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace lwfs {

namespace util {
class SharedSlice;  // util/shared_buffer.h
}  // namespace util

/// The universal transfer buffer type.
using Buffer = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;
using MutableByteSpan = std::span<std::uint8_t>;

/// Appends fixed-width little-endian fields to a Buffer.
class Encoder {
 public:
  Encoder() = default;
  explicit Encoder(Buffer initial) : buf_(std::move(initial)) {}

  void PutU8(std::uint8_t v) { buf_.push_back(v); }
  void PutU16(std::uint16_t v) { PutLe(v); }
  void PutU32(std::uint32_t v) { PutLe(v); }
  void PutU64(std::uint64_t v) { PutLe(v); }
  void PutI64(std::int64_t v) { PutLe(static_cast<std::uint64_t>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutDouble(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  /// Pre-size for `n` more bytes.  The typed codecs call this before a
  /// bulk append so multi-MB payloads land in one allocation instead of
  /// reallocating through the doubling schedule.
  void Reserve(std::size_t n) { buf_.reserve(buf_.size() + n); }

  /// Length-prefixed (u32) byte string.
  void PutBytes(ByteSpan data) {
    PutU32(static_cast<std::uint32_t>(data.size()));
    Reserve(data.size());
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  void PutString(std::string_view s) {
    PutBytes(ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()),
                      s.size()));
  }

  /// Length-prefixed slice append.  Encoding into a contiguous buffer
  /// necessarily copies; the zero-copy counterpart is Decoder::TakeSlice
  /// (and FrameBuilder for send-side scatter-gather).  Defined in
  /// util/shared_buffer.h.
  void PutSlice(const util::SharedSlice& s);

  /// Raw append with no length prefix (caller knows the framing).
  void PutRaw(ByteSpan data) {
    Reserve(data.size());
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  [[nodiscard]] const Buffer& buffer() const { return buf_; }
  [[nodiscard]] Buffer Take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void PutLe(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  Buffer buf_;
};

/// Bounds-checked reader over an immutable byte span.  All getters return a
/// Result so malformed wire data surfaces as kInvalidArgument, never UB.
class Decoder {
 public:
  explicit Decoder(ByteSpan data) : data_(data) {}
  explicit Decoder(const Buffer& b) : data_(b.data(), b.size()) {}
  /// Decode over a shared slice: TakeSlice() results alias the slice's
  /// bytes and keep its owner alive — zero-copy decode.  Defined in
  /// util/shared_buffer.h.
  explicit Decoder(const util::SharedSlice& s);

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

  Result<std::uint8_t> GetU8() { return GetLe<std::uint8_t>(); }
  Result<std::uint16_t> GetU16() { return GetLe<std::uint16_t>(); }
  Result<std::uint32_t> GetU32() { return GetLe<std::uint32_t>(); }
  Result<std::uint64_t> GetU64() { return GetLe<std::uint64_t>(); }
  Result<std::int64_t> GetI64() {
    auto r = GetLe<std::uint64_t>();
    if (!r.ok()) return r.status();
    return static_cast<std::int64_t>(*r);
  }
  Result<bool> GetBool() {
    auto r = GetU8();
    if (!r.ok()) return r.status();
    return *r != 0;
  }
  Result<double> GetDouble() {
    auto r = GetU64();
    if (!r.ok()) return r.status();
    double v;
    std::uint64_t bits = *r;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Result<Buffer> GetBytes() {
    auto len = GetU32();
    if (!len.ok()) return len.status();
    if (remaining() < *len) return InvalidArgument("truncated byte string");
    Buffer out(data_.begin() + pos_, data_.begin() + pos_ + *len);
    pos_ += *len;
    return out;
  }

  Result<std::string> GetString() {
    auto b = GetBytes();
    if (!b.ok()) return b.status();
    return std::string(b->begin(), b->end());
  }

  /// Length-prefixed slice.  When this Decoder was constructed from a
  /// SharedSlice the result is a zero-copy sub-slice sharing the frame's
  /// owner (safe to hold past the Decoder); otherwise it is one counted
  /// copy.  Defined in util/shared_buffer.h.
  Result<util::SharedSlice> TakeSlice();

  /// View of the rest of the buffer without consuming it.
  [[nodiscard]] ByteSpan Rest() const { return data_.subspan(pos_); }

  /// Consume `n` raw bytes.
  Result<ByteSpan> GetRaw(std::size_t n) {
    if (remaining() < n) return InvalidArgument("truncated raw bytes");
    ByteSpan out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

 private:
  template <typename T>
  Result<T> GetLe() {
    if (remaining() < sizeof(T)) return InvalidArgument("truncated integer");
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  ByteSpan data_;
  std::size_t pos_ = 0;
  /// Keeps the decoded frame alive when constructed from a SharedSlice,
  /// and lets TakeSlice() hand out aliasing sub-slices.
  std::shared_ptr<const void> owner_;
};

/// Convenience: build a Buffer holding `n` bytes of a repeating fill pattern
/// derived from `seed` (used by tests and checkpoint payload generators).
inline Buffer PatternBuffer(std::size_t n, std::uint64_t seed) {
  Buffer b(n);
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ULL + 1;
  for (std::size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b[i] = static_cast<std::uint8_t>(x);
  }
  return b;
}

}  // namespace lwfs
