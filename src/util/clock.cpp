#include "util/clock.h"

#include <algorithm>

namespace lwfs::util {

Clock::ThreadGuard::ThreadGuard(Clock* clock) : clock_(OrReal(clock)) {
  clock_->RegisterCurrentThread();
}

Clock::ThreadGuard::~ThreadGuard() { clock_->UnregisterCurrentThread(); }

// ---------------------------------------------------------------------------
// RealClock
// ---------------------------------------------------------------------------

RealClock::RealClock()
    : base_steady_(std::chrono::steady_clock::now()),
      base_wall_(std::chrono::duration_cast<Duration>(
          std::chrono::system_clock::now().time_since_epoch())) {}

Clock::TimePoint RealClock::Now() {
  return base_wall_ + std::chrono::duration_cast<Duration>(
                          std::chrono::steady_clock::now() - base_steady_);
}

void RealClock::SleepFor(Duration d) {
  if (d > Duration::zero()) std::this_thread::sleep_for(d);
}

std::cv_status RealClock::WaitUntil(std::condition_variable& cv,
                                    std::unique_lock<std::mutex>& lk,
                                    TimePoint deadline) {
  // Translate the epoch-based deadline back onto the steady timeline so a
  // wall-clock step cannot stretch or shrink the wait.
  const auto steady_deadline =
      base_steady_ + std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         deadline - base_wall_);
  return cv.wait_until(lk, steady_deadline);
}

void RealClock::Wait(std::condition_variable& cv,
                     std::unique_lock<std::mutex>& lk) {
  cv.wait(lk);
}

void RealClock::NotifyAll(std::condition_variable& cv) { cv.notify_all(); }
void RealClock::NotifyOne(std::condition_variable& cv) { cv.notify_one(); }

std::thread RealClock::SpawnThread(std::function<void()> fn) {
  return std::thread(std::move(fn));
}

void RealClock::Join(std::thread& t) { t.join(); }

RealClock* RealClockInstance() {
  // Leaked on purpose: threads may consult the clock during static
  // destruction, so the instance must outlive everything.
  static RealClock* const instance = new RealClock();
  return instance;
}

// ---------------------------------------------------------------------------
// VirtualClock
//
// Invariants (all state guarded by mu_):
//  - At most one ThreadRec has the token (owner_); only the token holder
//    executes user code.  Everyone else is blocked on its own grant_cv,
//    which is paired with mu_ — the clock never blocks on, or notifies,
//    a caller-owned condition variable, so there is no lost-wakeup window
//    between caller mutexes and mu_.
//  - A blocking call releases the caller's lock *under mu_* (atomic with
//    respect to Notify*, which must take mu_) and reacquires it after mu_
//    is dropped, so no thread ever waits for the token while holding a
//    caller lock.
//  - Virtual time advances only inside ScheduleLocked when no thread is
//    runnable: one jump to the earliest pending deadline — a timed thread
//    wait or an armed logical waiter (a carrier thread's proxy for the
//    earliest deadline among its parked state machines).  Every wake-up is
//    ordered by (deadline, registration id) — timed thread waits before
//    logical fires at the same instant — and every grant by ready_order,
//    so a run's interleaving is a pure function of the program, not of OS
//    scheduling.
//  - Scheduling is indexed, never scanned: ready_ (by ready_order), timed_
//    (by (deadline, id)), cv_waiters_ (per-cv, by id) and logical_armed_
//    (by (deadline, id)) mirror the ThreadRec states exactly.  Every
//    transition out of a waiting state must go through
//    RemoveWaitIndicesLocked/NotifyAllLocked and every transition into
//    kReady through MarkReadyLocked, or an index dangles.
// ---------------------------------------------------------------------------

VirtualClock::VirtualClock(TimePoint origin) { now_ = origin; }

VirtualClock::~VirtualClock() = default;

Clock::TimePoint VirtualClock::Now() {
  std::lock_guard<std::mutex> g(mu_);
  return now_;
}

VirtualClock::ThreadRec* VirtualClock::FindCurrentLocked() {
  auto it = current_.find(std::this_thread::get_id());
  return it == current_.end() ? nullptr : it->second;
}

VirtualClock::ThreadRec* VirtualClock::EnsureRegisteredLocked(
    std::unique_lock<std::mutex>& g) {
  if (ThreadRec* rec = FindCurrentLocked()) return rec;
  auto owned = std::make_unique<ThreadRec>();
  ThreadRec* rec = owned.get();
  rec->id = next_id_++;
  rec->os_id = std::this_thread::get_id();
  threads_[rec->id] = std::move(owned);
  current_[rec->os_id] = rec;
  MarkReadyLocked(rec);
  ScheduleLocked();
  AwaitGrantLocked(g, rec);
  return rec;
}

void VirtualClock::MarkReadyLocked(ThreadRec* rec) {
  rec->state = State::kReady;
  rec->ready_order = ready_seq_++;
  ready_.insert({rec->ready_order, rec});
}

void VirtualClock::RemoveWaitIndicesLocked(ThreadRec* rec) {
  if (rec->state == State::kWaitingTimed) {
    timed_.erase({rec->deadline, rec->id, rec});
  }
  if (rec->wait_cv != nullptr) {
    auto it = cv_waiters_.find(rec->wait_cv);
    if (it != cv_waiters_.end()) {
      it->second.erase(rec->id);
      if (it->second.empty()) cv_waiters_.erase(it);
    }
  }
}

void VirtualClock::NotifyAllLocked(const std::condition_variable* cv) {
  auto it = cv_waiters_.find(cv);
  if (it == cv_waiters_.end()) return;
  std::map<std::uint64_t, ThreadRec*> waiters = std::move(it->second);
  cv_waiters_.erase(it);
  // Ascending registration id — the deterministic wake order.
  for (auto& [id, rec] : waiters) {
    if (rec->state == State::kWaitingTimed) {
      timed_.erase({rec->deadline, rec->id, rec});
    }
    rec->notified = true;
    MarkReadyLocked(rec);
  }
}

void VirtualClock::ReleaseTokenLocked(ThreadRec* rec) {
  rec->has_token = false;
  if (owner_ == rec) owner_ = nullptr;
}

void VirtualClock::AwaitGrantLocked(std::unique_lock<std::mutex>& g,
                                    ThreadRec* rec) {
  rec->grant_cv.wait(g, [rec] { return rec->has_token; });
  rec->state = State::kRunning;
}

void VirtualClock::ScheduleLocked() {
  if (owner_ != nullptr) return;
  for (;;) {
    // Grant to the longest-ready runnable thread.
    if (!ready_.empty()) {
      ThreadRec* best = ready_.begin()->second;
      ready_.erase(ready_.begin());
      owner_ = best;
      best->has_token = true;
      best->grant_cv.notify_one();  // grant_cv pairs with mu_ — safe here
      return;
    }
    // Nothing runnable: advance to the earliest pending deadline — a timed
    // thread wait or an armed logical (carrier) deadline.
    TimePoint min_deadline = TimePoint::max();
    if (!timed_.empty()) min_deadline = std::get<0>(*timed_.begin());
    if (!logical_armed_.empty()) {
      min_deadline = std::min(min_deadline, logical_armed_.begin()->first);
    }
    if (min_deadline == TimePoint::max()) {
      return;  // fully quiescent — an external event must come
    }
    if (min_deadline > now_) now_ = min_deadline;
    // Expire timed thread waits in (deadline, id) order — the set's order.
    while (!timed_.empty() && std::get<0>(*timed_.begin()) <= now_) {
      ThreadRec* rec = std::get<2>(*timed_.begin());
      RemoveWaitIndicesLocked(rec);
      rec->timed_out = true;
      MarkReadyLocked(rec);
    }
    // Then fire expired logical waiters, also in (deadline, id) order.
    // Each fire is one-shot — the waiter disarms until its carrier re-arms
    // it — so an unconsumed wake can never stall the advance loop.
    while (!logical_armed_.empty() &&
           logical_armed_.begin()->first <= now_) {
      const std::uint64_t id = logical_armed_.begin()->second;
      logical_armed_.erase(logical_armed_.begin());
      auto it = logical_.find(id);
      if (it == logical_.end()) continue;
      it->second.deadline = TimePoint::max();
      NotifyAllLocked(it->second.cv);
    }
    // Loop: grant to the first expired waiter.
  }
}

std::cv_status VirtualClock::BlockLocked(std::unique_lock<std::mutex>& g,
                                         std::unique_lock<std::mutex>& lk,
                                         ThreadRec* rec) {
  ReleaseTokenLocked(rec);
  ScheduleLocked();
  // Releasing the caller's lock under mu_ makes "stop running, start
  // waiting" atomic with respect to Notify*, which must take mu_.
  lk.unlock();
  AwaitGrantLocked(g, rec);
  const std::cv_status result = rec->timed_out && !rec->notified
                                    ? std::cv_status::timeout
                                    : std::cv_status::no_timeout;
  rec->notified = false;
  rec->timed_out = false;
  rec->wait_cv = nullptr;
  g.unlock();
  lk.lock();  // reacquire the caller's mutex outside mu_
  return result;
}

void VirtualClock::Wait(std::condition_variable& cv,
                        std::unique_lock<std::mutex>& lk) {
  std::unique_lock<std::mutex> g(mu_);
  ThreadRec* rec = EnsureRegisteredLocked(g);
  rec->state = State::kWaiting;
  rec->wait_cv = &cv;
  rec->notified = false;
  rec->timed_out = false;
  cv_waiters_[&cv][rec->id] = rec;
  (void)BlockLocked(g, lk, rec);
}

std::cv_status VirtualClock::WaitUntil(std::condition_variable& cv,
                                       std::unique_lock<std::mutex>& lk,
                                       TimePoint deadline) {
  std::unique_lock<std::mutex> g(mu_);
  ThreadRec* rec = EnsureRegisteredLocked(g);
  rec->state = State::kWaitingTimed;
  rec->deadline = deadline;  // past deadlines expire on the next advance
  rec->wait_cv = &cv;
  rec->notified = false;
  rec->timed_out = false;
  cv_waiters_[&cv][rec->id] = rec;
  timed_.insert({deadline, rec->id, rec});
  return BlockLocked(g, lk, rec);
}

void VirtualClock::SleepFor(Duration d) {
  // A sleep is a timed wait on a private condition variable nobody
  // notifies; non-positive durations still yield the token once.
  std::mutex m;
  std::condition_variable cv;
  std::unique_lock<std::mutex> lk(m);
  (void)WaitUntil(cv, lk, Now() + std::max(d, Duration::zero()));
}

void VirtualClock::NotifyAll(std::condition_variable& cv) {
  std::lock_guard<std::mutex> g(mu_);
  NotifyAllLocked(&cv);
  ScheduleLocked();
}

void VirtualClock::NotifyOne(std::condition_variable& cv) {
  // Deterministically wake everyone; predicate loops decide who consumes.
  // (Picking "one" would bake scheduler policy into wake order without
  // helping correctness — every call site loops on its predicate.)
  NotifyAll(cv);
}

std::thread VirtualClock::SpawnThread(std::function<void()> fn) {
  ThreadRec* rec = nullptr;
  {
    std::lock_guard<std::mutex> g(mu_);
    auto owned = std::make_unique<ThreadRec>();
    rec = owned.get();
    rec->id = next_id_++;
    threads_[rec->id] = std::move(owned);
    MarkReadyLocked(rec);  // runnable from birth, runs when granted
  }
  return std::thread([this, rec, fn = std::move(fn)]() mutable {
    {
      std::unique_lock<std::mutex> g(mu_);
      rec->os_id = std::this_thread::get_id();
      current_[rec->os_id] = rec;
      AwaitGrantLocked(g, rec);
    }
    fn();
    DetachImpl(/*record_finished=*/true);
  });
}

void VirtualClock::Join(std::thread& t) {
  const std::thread::id target = t.get_id();
  std::unique_lock<std::mutex> g(mu_);
  ThreadRec* rec = FindCurrentLocked();
  if (rec == nullptr) {
    g.unlock();
    t.join();  // unregistered caller holds no token
    return;
  }
  auto finished = finished_unjoined_.find(target);
  if (finished != finished_unjoined_.end()) {
    // The child already left the clock; the raw join returns promptly and
    // the caller keeps the token.
    finished_unjoined_.erase(finished);
    g.unlock();
    t.join();
    return;
  }
  rec->state = State::kJoining;
  rec->join_target = target;
  ReleaseTokenLocked(rec);
  ScheduleLocked();
  g.unlock();
  t.join();  // child's exit marks us kReady (its detach runs under mu_)
  g.lock();
  AwaitGrantLocked(g, rec);
  g.unlock();
}

void VirtualClock::RegisterCurrentThread() {
  std::unique_lock<std::mutex> g(mu_);
  (void)EnsureRegisteredLocked(g);
}

void VirtualClock::UnregisterCurrentThread() {
  DetachImpl(/*record_finished=*/false);
}

void VirtualClock::DetachImpl(bool record_finished) {
  std::lock_guard<std::mutex> g(mu_);
  ThreadRec* rec = FindCurrentLocked();
  if (rec == nullptr) return;
  const std::thread::id os = rec->os_id;
  bool woke_joiner = false;
  for (auto& [id, other] : threads_) {
    if (other->state == State::kJoining && other->join_target == os) {
      MarkReadyLocked(other.get());
      woke_joiner = true;
      break;  // at most one joiner per thread
    }
  }
  // Only spawned threads are recorded: a std::thread id stays reserved
  // until join, so set membership cannot alias a recycled id.
  if (record_finished && !woke_joiner) finished_unjoined_.insert(os);
  current_.erase(os);
  if (owner_ == rec) owner_ = nullptr;
  rec->has_token = false;
  // A detaching thread is normally running (in no index), but scrub the
  // indices defensively so a stale entry can never dangle.
  RemoveWaitIndicesLocked(rec);
  ready_.erase({rec->ready_order, rec});
  threads_.erase(rec->id);
  ScheduleLocked();
}

std::uint64_t VirtualClock::RegisterLogicalWaiter(std::condition_variable* cv) {
  std::lock_guard<std::mutex> g(mu_);
  const std::uint64_t id = next_id_++;
  logical_[id] = LogicalWaiter{cv, TimePoint::max()};
  return id;
}

void VirtualClock::SetLogicalDeadline(std::uint64_t waiter,
                                      TimePoint deadline) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = logical_.find(waiter);
  if (it == logical_.end()) return;
  if (it->second.deadline != TimePoint::max()) {
    logical_armed_.erase({it->second.deadline, waiter});
  }
  it->second.deadline = deadline;
  if (deadline != TimePoint::max()) {
    logical_armed_.insert({deadline, waiter});
  }
}

void VirtualClock::UnregisterLogicalWaiter(std::uint64_t waiter) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = logical_.find(waiter);
  if (it == logical_.end()) return;
  if (it->second.deadline != TimePoint::max()) {
    logical_armed_.erase({it->second.deadline, waiter});
  }
  logical_.erase(it);
}

std::size_t VirtualClock::participants() {
  std::lock_guard<std::mutex> g(mu_);
  return threads_.size();
}

}  // namespace lwfs::util
