#include "util/clock.h"

#include <algorithm>

namespace lwfs::util {

Clock::ThreadGuard::ThreadGuard(Clock* clock) : clock_(OrReal(clock)) {
  clock_->RegisterCurrentThread();
}

Clock::ThreadGuard::~ThreadGuard() { clock_->UnregisterCurrentThread(); }

// ---------------------------------------------------------------------------
// RealClock
// ---------------------------------------------------------------------------

RealClock::RealClock()
    : base_steady_(std::chrono::steady_clock::now()),
      base_wall_(std::chrono::duration_cast<Duration>(
          std::chrono::system_clock::now().time_since_epoch())) {}

Clock::TimePoint RealClock::Now() {
  return base_wall_ + std::chrono::duration_cast<Duration>(
                          std::chrono::steady_clock::now() - base_steady_);
}

void RealClock::SleepFor(Duration d) {
  if (d > Duration::zero()) std::this_thread::sleep_for(d);
}

std::cv_status RealClock::WaitUntil(std::condition_variable& cv,
                                    std::unique_lock<std::mutex>& lk,
                                    TimePoint deadline) {
  // Translate the epoch-based deadline back onto the steady timeline so a
  // wall-clock step cannot stretch or shrink the wait.
  const auto steady_deadline =
      base_steady_ + std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         deadline - base_wall_);
  return cv.wait_until(lk, steady_deadline);
}

void RealClock::Wait(std::condition_variable& cv,
                     std::unique_lock<std::mutex>& lk) {
  cv.wait(lk);
}

void RealClock::NotifyAll(std::condition_variable& cv) { cv.notify_all(); }
void RealClock::NotifyOne(std::condition_variable& cv) { cv.notify_one(); }

std::thread RealClock::SpawnThread(std::function<void()> fn) {
  return std::thread(std::move(fn));
}

void RealClock::Join(std::thread& t) { t.join(); }

RealClock* RealClockInstance() {
  // Leaked on purpose: threads may consult the clock during static
  // destruction, so the instance must outlive everything.
  static RealClock* const instance = new RealClock();
  return instance;
}

// ---------------------------------------------------------------------------
// VirtualClock
//
// Invariants (all state guarded by mu_):
//  - At most one ThreadRec has the token (owner_); only the token holder
//    executes user code.  Everyone else is blocked on its own grant_cv,
//    which is paired with mu_ — the clock never blocks on, or notifies,
//    a caller-owned condition variable, so there is no lost-wakeup window
//    between caller mutexes and mu_.
//  - A blocking call releases the caller's lock *under mu_* (atomic with
//    respect to Notify*, which must take mu_) and reacquires it after mu_
//    is dropped, so no thread ever waits for the token while holding a
//    caller lock.
//  - Virtual time advances only inside ScheduleLocked when no thread is
//    runnable: one jump to the earliest pending deadline.  Every wake-up
//    is ordered by (deadline, registration id) and every grant by
//    ready_order, so a run's interleaving is a pure function of the
//    program, not of OS scheduling.
// ---------------------------------------------------------------------------

VirtualClock::VirtualClock(TimePoint origin) { now_ = origin; }

VirtualClock::~VirtualClock() = default;

Clock::TimePoint VirtualClock::Now() {
  std::lock_guard<std::mutex> g(mu_);
  return now_;
}

VirtualClock::ThreadRec* VirtualClock::FindCurrentLocked() {
  auto it = current_.find(std::this_thread::get_id());
  return it == current_.end() ? nullptr : it->second;
}

VirtualClock::ThreadRec* VirtualClock::EnsureRegisteredLocked(
    std::unique_lock<std::mutex>& g) {
  if (ThreadRec* rec = FindCurrentLocked()) return rec;
  auto owned = std::make_unique<ThreadRec>();
  ThreadRec* rec = owned.get();
  rec->id = next_id_++;
  rec->os_id = std::this_thread::get_id();
  rec->state = State::kReady;
  rec->ready_order = ready_seq_++;
  threads_[rec->id] = std::move(owned);
  current_[rec->os_id] = rec;
  ScheduleLocked();
  AwaitGrantLocked(g, rec);
  return rec;
}

void VirtualClock::ReleaseTokenLocked(ThreadRec* rec) {
  rec->has_token = false;
  if (owner_ == rec) owner_ = nullptr;
}

void VirtualClock::AwaitGrantLocked(std::unique_lock<std::mutex>& g,
                                    ThreadRec* rec) {
  rec->grant_cv.wait(g, [rec] { return rec->has_token; });
  rec->state = State::kRunning;
}

void VirtualClock::ScheduleLocked() {
  if (owner_ != nullptr) return;
  for (;;) {
    // Grant to the longest-ready runnable thread.
    ThreadRec* best = nullptr;
    for (auto& [id, rec] : threads_) {
      if (rec->state == State::kReady &&
          (best == nullptr || rec->ready_order < best->ready_order)) {
        best = rec.get();
      }
    }
    if (best != nullptr) {
      owner_ = best;
      best->has_token = true;
      best->grant_cv.notify_one();  // grant_cv pairs with mu_ — safe here
      return;
    }
    // Nothing runnable: advance to the earliest pending deadline.
    TimePoint min_deadline = TimePoint::max();
    bool any_timed = false;
    for (auto& [id, rec] : threads_) {
      if (rec->state == State::kWaitingTimed) {
        any_timed = true;
        min_deadline = std::min(min_deadline, rec->deadline);
      }
    }
    if (!any_timed) return;  // fully quiescent — an external event must come
    if (min_deadline > now_) now_ = min_deadline;
    std::vector<ThreadRec*> expired;
    for (auto& [id, rec] : threads_) {
      if (rec->state == State::kWaitingTimed && rec->deadline <= now_) {
        expired.push_back(rec.get());
      }
    }
    std::sort(expired.begin(), expired.end(),
              [](const ThreadRec* a, const ThreadRec* b) {
                return a->deadline != b->deadline ? a->deadline < b->deadline
                                                  : a->id < b->id;
              });
    for (ThreadRec* rec : expired) {
      rec->state = State::kReady;
      rec->timed_out = true;
      rec->ready_order = ready_seq_++;
    }
    // Loop: grant to the first expired waiter.
  }
}

std::cv_status VirtualClock::BlockLocked(std::unique_lock<std::mutex>& g,
                                         std::unique_lock<std::mutex>& lk,
                                         ThreadRec* rec) {
  ReleaseTokenLocked(rec);
  ScheduleLocked();
  // Releasing the caller's lock under mu_ makes "stop running, start
  // waiting" atomic with respect to Notify*, which must take mu_.
  lk.unlock();
  AwaitGrantLocked(g, rec);
  const std::cv_status result = rec->timed_out && !rec->notified
                                    ? std::cv_status::timeout
                                    : std::cv_status::no_timeout;
  rec->notified = false;
  rec->timed_out = false;
  rec->wait_cv = nullptr;
  g.unlock();
  lk.lock();  // reacquire the caller's mutex outside mu_
  return result;
}

void VirtualClock::Wait(std::condition_variable& cv,
                        std::unique_lock<std::mutex>& lk) {
  std::unique_lock<std::mutex> g(mu_);
  ThreadRec* rec = EnsureRegisteredLocked(g);
  rec->state = State::kWaiting;
  rec->wait_cv = &cv;
  rec->notified = false;
  rec->timed_out = false;
  (void)BlockLocked(g, lk, rec);
}

std::cv_status VirtualClock::WaitUntil(std::condition_variable& cv,
                                       std::unique_lock<std::mutex>& lk,
                                       TimePoint deadline) {
  std::unique_lock<std::mutex> g(mu_);
  ThreadRec* rec = EnsureRegisteredLocked(g);
  rec->state = State::kWaitingTimed;
  rec->deadline = deadline;  // past deadlines expire on the next advance
  rec->wait_cv = &cv;
  rec->notified = false;
  rec->timed_out = false;
  return BlockLocked(g, lk, rec);
}

void VirtualClock::SleepFor(Duration d) {
  // A sleep is a timed wait on a private condition variable nobody
  // notifies; non-positive durations still yield the token once.
  std::mutex m;
  std::condition_variable cv;
  std::unique_lock<std::mutex> lk(m);
  (void)WaitUntil(cv, lk, Now() + std::max(d, Duration::zero()));
}

void VirtualClock::NotifyAll(std::condition_variable& cv) {
  std::lock_guard<std::mutex> g(mu_);
  for (auto& [id, rec] : threads_) {
    if ((rec->state == State::kWaiting ||
         rec->state == State::kWaitingTimed) &&
        rec->wait_cv == &cv) {
      rec->state = State::kReady;
      rec->notified = true;
      rec->ready_order = ready_seq_++;
    }
  }
  ScheduleLocked();
}

void VirtualClock::NotifyOne(std::condition_variable& cv) {
  // Deterministically wake everyone; predicate loops decide who consumes.
  // (Picking "one" would bake scheduler policy into wake order without
  // helping correctness — every call site loops on its predicate.)
  NotifyAll(cv);
}

std::thread VirtualClock::SpawnThread(std::function<void()> fn) {
  ThreadRec* rec = nullptr;
  {
    std::lock_guard<std::mutex> g(mu_);
    auto owned = std::make_unique<ThreadRec>();
    rec = owned.get();
    rec->id = next_id_++;
    rec->state = State::kReady;  // runnable from birth, runs when granted
    rec->ready_order = ready_seq_++;
    threads_[rec->id] = std::move(owned);
  }
  return std::thread([this, rec, fn = std::move(fn)]() mutable {
    {
      std::unique_lock<std::mutex> g(mu_);
      rec->os_id = std::this_thread::get_id();
      current_[rec->os_id] = rec;
      AwaitGrantLocked(g, rec);
    }
    fn();
    DetachImpl(/*record_finished=*/true);
  });
}

void VirtualClock::Join(std::thread& t) {
  const std::thread::id target = t.get_id();
  std::unique_lock<std::mutex> g(mu_);
  ThreadRec* rec = FindCurrentLocked();
  if (rec == nullptr) {
    g.unlock();
    t.join();  // unregistered caller holds no token
    return;
  }
  auto finished = finished_unjoined_.find(target);
  if (finished != finished_unjoined_.end()) {
    // The child already left the clock; the raw join returns promptly and
    // the caller keeps the token.
    finished_unjoined_.erase(finished);
    g.unlock();
    t.join();
    return;
  }
  rec->state = State::kJoining;
  rec->join_target = target;
  ReleaseTokenLocked(rec);
  ScheduleLocked();
  g.unlock();
  t.join();  // child's exit marks us kReady (its detach runs under mu_)
  g.lock();
  AwaitGrantLocked(g, rec);
  g.unlock();
}

void VirtualClock::RegisterCurrentThread() {
  std::unique_lock<std::mutex> g(mu_);
  (void)EnsureRegisteredLocked(g);
}

void VirtualClock::UnregisterCurrentThread() {
  DetachImpl(/*record_finished=*/false);
}

void VirtualClock::DetachImpl(bool record_finished) {
  std::lock_guard<std::mutex> g(mu_);
  ThreadRec* rec = FindCurrentLocked();
  if (rec == nullptr) return;
  const std::thread::id os = rec->os_id;
  bool woke_joiner = false;
  for (auto& [id, other] : threads_) {
    if (other->state == State::kJoining && other->join_target == os) {
      other->state = State::kReady;
      other->ready_order = ready_seq_++;
      woke_joiner = true;
      break;  // at most one joiner per thread
    }
  }
  // Only spawned threads are recorded: a std::thread id stays reserved
  // until join, so set membership cannot alias a recycled id.
  if (record_finished && !woke_joiner) finished_unjoined_.insert(os);
  current_.erase(os);
  if (owner_ == rec) owner_ = nullptr;
  rec->has_token = false;
  threads_.erase(rec->id);
  ScheduleLocked();
}

std::size_t VirtualClock::participants() {
  std::lock_guard<std::mutex> g(mu_);
  return threads_.size();
}

}  // namespace lwfs::util
