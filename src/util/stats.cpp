#include "util/stats.h"

#include <cmath>

namespace lwfs {

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double n = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  mean_ += delta * n2 / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double Percentiles::Get(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (p <= 0) return samples_.front();
  if (p >= 100) return samples_.back();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

}  // namespace lwfs
