#include "util/logging.h"

#include <cstdio>
#include <mutex>

namespace lwfs {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_emit_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    default: return "?";
  }
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }
void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

namespace internal {

void EmitLogLine(LogLevel level, const std::string& text) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[lwfs:%s] %s\n", LevelTag(level), text.c_str());
}

}  // namespace internal
}  // namespace lwfs
