// Recycled destination buffers for slice reads.
//
// A store-owned read slice is allocated fresh per read and freed on
// whatever thread drops the last client reference.  At checkpoint-restore
// payload sizes that means a steady stream of multi-megabyte allocations
// whose pages are faulted in, written once, and unmapped — the fresh-page
// cost shows up as a full extra pass over the payload and erases most of
// what the zero-copy reply saves.  ReadBufferPool keeps a bounded set of
// retired blocks and hands them back out, so steady-state reads memcpy
// onto warm, already-faulted pages.
//
// Blocks return to the pool from the *releasing* thread (usually a client
// dropping its slice) via the owner deleter, which also keeps the pool
// itself alive until the last outstanding slice dies.
#pragma once

#include <cstring>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "util/bytes.h"
#include "util/crc32.h"
#include "util/shared_buffer.h"

namespace lwfs::util {

class ReadBufferPool : public std::enable_shared_from_this<ReadBufferPool> {
 public:
  /// `max_retained_bytes` bounds how much retired memory the pool holds;
  /// blocks released beyond the bound are simply freed.
  static std::shared_ptr<ReadBufferPool> Create(
      std::size_t max_retained_bytes = 64u << 20) {
    return std::shared_ptr<ReadBufferPool>(
        new ReadBufferPool(max_retained_bytes));
  }

  /// Copy `src` into pooled storage and return an owned slice, charging the
  /// copy as `kind`.  When the last reference drops — on any thread — the
  /// block returns to the pool.
  ///
  /// The copy is fused with a CRC pass in cache-sized chunks: the checksum
  /// reads bytes the memcpy just wrote while they are still warm, and the
  /// result is attached to the slice (SetCachedCrc) so the reply frame's
  /// trailer can Crc32Combine it instead of re-streaming the payload from
  /// DRAM — the read path then touches each payload byte exactly once on
  /// the server.
  [[nodiscard]] SharedSlice CopyOut(ByteSpan src, CopyKind kind) {
    (void)kind;
    Block blk = Take(src.size());
    std::uint32_t crc = Crc32Init();
    constexpr std::size_t kFuseChunk = 128u << 10;  // well inside L2
    for (std::size_t off = 0; off < src.size(); off += kFuseChunk) {
      const std::size_t n = std::min(kFuseChunk, src.size() - off);
      std::memcpy(blk.mem.get() + off, src.data() + off, n);
      crc = Crc32Update(crc, blk.mem.get() + off, n);
    }
    LWFS_COUNT_COPY(kind, src.size());
    const std::uint8_t* data = blk.mem.get();
    auto carrier = std::make_shared<Block>(std::move(blk));
    std::shared_ptr<const void> owner(
        static_cast<const void*>(data),
        [self = shared_from_this(), carrier](const void*) {
          self->Put(std::move(*carrier));
        });
    SharedSlice out =
        SharedSlice::Wrap(ByteSpan(data, src.size()), std::move(owner));
    out.SetCachedCrc(Crc32Final(crc));
    return out;
  }

  /// Bytes currently retained (free blocks only) — test/introspection hook.
  [[nodiscard]] std::size_t retained_bytes() {
    std::lock_guard<std::mutex> lock(mutex_);
    return retained_;
  }

 private:
  struct Block {
    std::unique_ptr<std::uint8_t[]> mem;
    std::size_t cap = 0;
  };

  explicit ReadBufferPool(std::size_t max_retained_bytes)
      : max_retained_(max_retained_bytes) {}

  Block Take(std::size_t n) {
    if (n > 0) {
      std::lock_guard<std::mutex> lock(mutex_);
      // Smallest retained block that fits, so one huge block does not get
      // pinned under a stream of small reads.
      std::size_t best = free_.size();
      for (std::size_t i = 0; i < free_.size(); ++i) {
        if (free_[i].cap >= n &&
            (best == free_.size() || free_[i].cap < free_[best].cap)) {
          best = i;
        }
      }
      if (best != free_.size()) {
        Block out = std::move(free_[best]);
        free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(best));
        retained_ -= out.cap;
        return out;
      }
    }
    Block out;
    out.cap = n;
    // Uninitialized on purpose: CopyOut overwrites the first n bytes.
    if (n > 0) out.mem.reset(new std::uint8_t[n]);
    return out;
  }

  void Put(Block blk) {
    if (blk.cap == 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (retained_ + blk.cap > max_retained_) return;  // over bound: free it
    retained_ += blk.cap;
    free_.push_back(std::move(blk));
  }

  const std::size_t max_retained_;
  std::mutex mutex_;
  std::size_t retained_ = 0;
  std::vector<Block> free_;
};

}  // namespace lwfs::util
