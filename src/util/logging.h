// Minimal leveled logger.
//
// Services log at most a handful of lines per run at the default level
// (kWarn), so logging never perturbs benchmark timing.  Thread-safe: each
// statement formats into a local buffer and issues a single atomic write.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace lwfs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded before formatting.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

void EmitLogLine(LogLevel level, const std::string& text);

/// RAII line builder: collects `<<` pieces, emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { EmitLogLine(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace lwfs

// Level check happens before any formatting work.
#define LWFS_LOG(level)                                       \
  if (static_cast<int>(level) < static_cast<int>(::lwfs::GetLogLevel())) {} \
  else ::lwfs::internal::LogLine(level)

#define LWFS_DEBUG LWFS_LOG(::lwfs::LogLevel::kDebug)
#define LWFS_INFO LWFS_LOG(::lwfs::LogLevel::kInfo)
#define LWFS_WARN LWFS_LOG(::lwfs::LogLevel::kWarn)
#define LWFS_ERROR LWFS_LOG(::lwfs::LogLevel::kError)
