// Deterministic, splittable pseudo-random number generation.
//
// Everything stochastic in the repository (workload generation, simulator
// jitter, security nonces in the mock authenticator) derives from SplitMix64
// so experiments replay bit-identically from a seed.
#pragma once

#include <cstdint>
#include <limits>

namespace lwfs {

/// SplitMix64: tiny, fast, and good enough for workload generation.  Not a
/// cryptographic generator; the security module layers an HMAC on top for
/// unforgeable tokens.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t NextU64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound).  bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound) {
    // Multiply-shift reduction; bias is negligible for our bounds.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(NextU64()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Exponentially distributed value with the given mean (inter-arrival
  /// times for bursty I/O workloads).
  double NextExponential(double mean) {
    double u = NextDouble();
    if (u <= 0.0) u = 1e-18;
    // -mean * ln(u); ln via std would pull <cmath>; keep it here.
    return -mean * Log(u);
  }

  /// Derive an independent stream (for per-client generators).
  Rng Split() { return Rng(NextU64() ^ 0xA5A5A5A55A5A5A5AULL); }

 private:
  static double Log(double x);

  std::uint64_t state_;
};

}  // namespace lwfs
