// Pluggable time source for the whole stack.
//
// Every layer that sleeps, waits with a deadline, or reads the current
// time does so through a `Clock*` so a deployment can run on either:
//
//  - `RealClock` — wall time.  `Now()` is a steady (monotonic) reading
//    anchored to the Unix epoch at process start, so durations are immune
//    to wall-clock steps while absolute values (credential issue/expiry
//    stamps) still live on an explicit, restart-meaningful epoch.
//
//  - `VirtualClock` — coordinated virtual time.  Registered threads are
//    serialized onto a single run token (the same idea as the cooperative
//    scheduler in sim/engine, applied to real OS threads): exactly one
//    registered thread executes at a time, and the clock advances — in one
//    jump, to the earliest pending deadline — only when every registered
//    thread is blocked in a virtual wait.  Modeled sleeps therefore cost
//    zero wall-clock, and because every wake-up and token hand-off is
//    ordered by deterministic bookkeeping (registration order, notify
//    order, deadline order) rather than OS scheduling, a run is
//    bit-deterministic given a seed.
//
// Waiting through the clock follows the std::condition_variable shape:
// callers hold a `std::unique_lock` on their own mutex and loop on a
// predicate.  The usual discipline applies and is load-bearing for
// VirtualClock: notifiers must mutate the predicate state under the same
// mutex before calling Notify*, and waiters must use predicate loops
// (VirtualClock::NotifyOne wakes every waiter of the condition variable —
// deterministically — and relies on the predicates to sort out who
// proceeds).
//
// Threads that participate in a VirtualClock must be registered: spawn
// workers with `clock->SpawnThread()` / join with `clock->Join()`, and
// wrap external entry threads (main, test body) in a `Clock::ThreadGuard`.
// Unregistered threads may still call Now()/Notify*; a blocking call from
// an unregistered thread auto-registers it.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace lwfs::util {

class Clock {
 public:
  /// Durations and time points are nanosecond counts; a TimePoint is the
  /// duration since the clock's epoch (Unix epoch for RealClock, zero or
  /// the constructor-supplied origin for VirtualClock).
  using Duration = std::chrono::nanoseconds;
  using TimePoint = std::chrono::nanoseconds;

  virtual ~Clock() = default;

  [[nodiscard]] virtual TimePoint Now() = 0;
  virtual void SleepFor(Duration d) = 0;

  /// Block on `cv` (caller holds `lk`) until notified via this clock or
  /// `deadline` passes.  Returns std::cv_status::timeout on deadline.
  virtual std::cv_status WaitUntil(std::condition_variable& cv,
                                   std::unique_lock<std::mutex>& lk,
                                   TimePoint deadline) = 0;
  /// Block on `cv` until notified via this clock.
  virtual void Wait(std::condition_variable& cv,
                    std::unique_lock<std::mutex>& lk) = 0;

  /// Notify waiters blocked on `cv` *through this clock*.  The notifier
  /// must have mutated the waiters' predicate state under their mutex
  /// first (standard condition-variable discipline).
  virtual void NotifyAll(std::condition_variable& cv) = 0;
  virtual void NotifyOne(std::condition_variable& cv) = 0;

  /// Spawn a thread that participates in this clock (registered before it
  /// runs `fn`); join must go through Join() on the same clock.
  [[nodiscard]] virtual std::thread SpawnThread(std::function<void()> fn) = 0;
  virtual void Join(std::thread& t) = 0;

  /// Register/unregister the calling thread as a participant.  No-ops for
  /// RealClock.  Prefer the ThreadGuard RAII wrapper.
  virtual void RegisterCurrentThread() {}
  virtual void UnregisterCurrentThread() {}

  // ---- Logical waiters (event-driven carrier support) ---------------
  //
  // A carrier thread multiplexing many parked state machines has *one* OS
  // thread but thousands of logical deadlines.  Registering a logical
  // waiter tells a VirtualClock "even while this thread is blocked, there
  // is pending work at this deadline": the advance step treats the armed
  // deadline like a timed thread wait, and on expiry disarms it (one-shot)
  // and notifies `cv` so the carrier wakes and fires its due timers.  The
  // carrier must keep the armed deadline equal to the earliest deadline of
  // its parked machines and re-arm after every wake.  For RealClock these
  // are no-ops — real time advances by itself, so carriers must also pass
  // the earliest deadline to WaitUntil (which they do; on VirtualClock
  // that is belt-and-braces with the logical waiter).

  /// Register a logical waiter that notifies `cv` on expiry; returns its
  /// id (0 from clocks that do not track logical waiters).
  virtual std::uint64_t RegisterLogicalWaiter(std::condition_variable* cv) {
    (void)cv;
    return 0;
  }
  /// Arm (or move) the waiter's deadline; TimePoint::max() disarms.
  virtual void SetLogicalDeadline(std::uint64_t waiter, TimePoint deadline) {
    (void)waiter;
    (void)deadline;
  }
  virtual void UnregisterLogicalWaiter(std::uint64_t waiter) { (void)waiter; }

  // ---- Non-virtual conveniences -------------------------------------

  /// Microseconds since the clock's epoch (credential stamps, metrics).
  [[nodiscard]] std::int64_t NowUs() {
    return std::chrono::duration_cast<std::chrono::microseconds>(Now())
        .count();
  }

  template <class Rep, class Period>
  void SleepFor(std::chrono::duration<Rep, Period> d) {
    SleepFor(std::chrono::duration_cast<Duration>(d));
  }

  void SleepUntil(TimePoint tp) {
    const TimePoint now = Now();
    if (tp > now) SleepFor(tp - now);
  }

  /// Predicate-loop forms, mirroring std::condition_variable semantics:
  /// the timed forms return the predicate's value (false == timed out with
  /// the predicate still unsatisfied).
  template <class Pred>
  bool WaitUntil(std::condition_variable& cv, std::unique_lock<std::mutex>& lk,
                 TimePoint deadline, Pred pred) {
    while (!pred()) {
      if (WaitUntil(cv, lk, deadline) == std::cv_status::timeout) {
        return pred();
      }
    }
    return true;
  }

  template <class Rep, class Period, class Pred>
  bool WaitFor(std::condition_variable& cv, std::unique_lock<std::mutex>& lk,
               std::chrono::duration<Rep, Period> d, Pred pred) {
    return WaitUntil(cv, lk,
                     Now() + std::chrono::duration_cast<Duration>(d),
                     std::move(pred));
  }

  template <class Pred>
  void Wait(std::condition_variable& cv, std::unique_lock<std::mutex>& lk,
            Pred pred) {
    while (!pred()) Wait(cv, lk);
  }

  /// RAII participant registration for externally created threads.
  class ThreadGuard {
   public:
    explicit ThreadGuard(Clock* clock);
    ~ThreadGuard();
    ThreadGuard(const ThreadGuard&) = delete;
    ThreadGuard& operator=(const ThreadGuard&) = delete;

   private:
    Clock* clock_;
  };
};

/// Wall time.  Monotonic readings anchored to the Unix epoch captured at
/// construction; all waits translate to steady_clock deadlines.
class RealClock final : public Clock {
 public:
  using Clock::SleepFor;
  using Clock::Wait;
  using Clock::WaitUntil;

  RealClock();

  TimePoint Now() override;
  void SleepFor(Duration d) override;
  std::cv_status WaitUntil(std::condition_variable& cv,
                           std::unique_lock<std::mutex>& lk,
                           TimePoint deadline) override;
  void Wait(std::condition_variable& cv,
            std::unique_lock<std::mutex>& lk) override;
  void NotifyAll(std::condition_variable& cv) override;
  void NotifyOne(std::condition_variable& cv) override;
  std::thread SpawnThread(std::function<void()> fn) override;
  void Join(std::thread& t) override;

 private:
  std::chrono::steady_clock::time_point base_steady_;
  Duration base_wall_{};  // Unix-epoch offset of base_steady_
};

/// The process-wide RealClock (shared epoch anchor).
RealClock* RealClockInstance();

/// Null-tolerant selector: configuration knobs default to nullptr meaning
/// "real time".
inline Clock* OrReal(Clock* clock) {
  return clock != nullptr ? clock
                          : static_cast<Clock*>(RealClockInstance());
}

/// Coordinated virtual time (see file comment for the model).
class VirtualClock final : public Clock {
 public:
  using Clock::SleepFor;
  using Clock::Wait;
  using Clock::WaitUntil;

  explicit VirtualClock(TimePoint origin = {});
  ~VirtualClock() override;

  TimePoint Now() override;
  void SleepFor(Duration d) override;
  std::cv_status WaitUntil(std::condition_variable& cv,
                           std::unique_lock<std::mutex>& lk,
                           TimePoint deadline) override;
  void Wait(std::condition_variable& cv,
            std::unique_lock<std::mutex>& lk) override;
  void NotifyAll(std::condition_variable& cv) override;
  void NotifyOne(std::condition_variable& cv) override;
  std::thread SpawnThread(std::function<void()> fn) override;
  void Join(std::thread& t) override;
  void RegisterCurrentThread() override;
  void UnregisterCurrentThread() override;
  std::uint64_t RegisterLogicalWaiter(std::condition_variable* cv) override;
  void SetLogicalDeadline(std::uint64_t waiter, TimePoint deadline) override;
  void UnregisterLogicalWaiter(std::uint64_t waiter) override;

  /// Number of currently registered participant threads (tests).
  [[nodiscard]] std::size_t participants();

 private:
  enum class State {
    kRunning,       // holds the run token
    kReady,         // runnable, waiting for the token
    kWaiting,       // blocked on a condition variable, untimed
    kWaitingTimed,  // blocked with a deadline
    kJoining,       // blocked in Join() on a child thread
  };

  struct ThreadRec {
    std::uint64_t id = 0;  // registration sequence — the deterministic key
    std::thread::id os_id;
    State state = State::kReady;
    bool has_token = false;
    bool notified = false;   // woken by Notify* (vs. deadline)
    bool timed_out = false;  // woken by deadline expiry
    std::uint64_t ready_order = 0;
    TimePoint deadline{};
    const std::condition_variable* wait_cv = nullptr;
    std::thread::id join_target;
    std::condition_variable grant_cv;  // paired with VirtualClock::mu_
  };

  /// An armed carrier deadline: fires like a timed wait, then disarms.
  struct LogicalWaiter {
    const std::condition_variable* cv = nullptr;
    TimePoint deadline = TimePoint::max();  // max == disarmed
  };

  ThreadRec* EnsureRegisteredLocked(std::unique_lock<std::mutex>& g);
  ThreadRec* FindCurrentLocked();
  void ReleaseTokenLocked(ThreadRec* rec);
  void ScheduleLocked();
  void AwaitGrantLocked(std::unique_lock<std::mutex>& g, ThreadRec* rec);
  std::cv_status BlockLocked(std::unique_lock<std::mutex>& g,
                             std::unique_lock<std::mutex>& lk, ThreadRec* rec);
  void DetachImpl(bool record_finished);
  /// Move `rec` to kReady with a fresh ready_order and index it.
  void MarkReadyLocked(ThreadRec* rec);
  /// Drop `rec` from the timed and per-cv wait indices (call before the
  /// rec leaves a waiting state).
  void RemoveWaitIndicesLocked(ThreadRec* rec);
  /// Wake every thread waiting on `cv`, in ascending registration id.
  void NotifyAllLocked(const std::condition_variable* cv);

  std::mutex mu_;
  TimePoint now_{};
  std::uint64_t next_id_ = 1;
  std::uint64_t ready_seq_ = 1;
  ThreadRec* owner_ = nullptr;
  // Keyed by deterministic id, which is what makes grant/advance order
  // reproducible.  Scheduling never scans this map: the index structures
  // below keep every ScheduleLocked/Notify step O(log n) so thousands of
  // registered threads (2k modeled servers ≈ 6k threads) stay cheap.
  std::map<std::uint64_t, std::unique_ptr<ThreadRec>> threads_;
  std::unordered_map<std::thread::id, ThreadRec*> current_;  // lookup only
  std::unordered_set<std::thread::id> finished_unjoined_;
  // Scheduling indices.  Orderings are over deterministic keys only
  // (ready_order / (deadline, id)); the trailing pointer is payload and is
  // never reached by a comparison, so pointer values cannot perturb order.
  std::set<std::pair<std::uint64_t, ThreadRec*>> ready_;
  std::set<std::tuple<TimePoint, std::uint64_t, ThreadRec*>> timed_;
  std::unordered_map<const std::condition_variable*,
                     std::map<std::uint64_t, ThreadRec*>>
      cv_waiters_;
  // Logical waiters (ids share next_id_ with threads).
  std::map<std::uint64_t, LogicalWaiter> logical_;
  std::set<std::pair<TimePoint, std::uint64_t>> logical_armed_;
};

}  // namespace lwfs::util
