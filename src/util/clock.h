// Pluggable time source for the whole stack.
//
// Every layer that sleeps, waits with a deadline, or reads the current
// time does so through a `Clock*` so a deployment can run on either:
//
//  - `RealClock` — wall time.  `Now()` is a steady (monotonic) reading
//    anchored to the Unix epoch at process start, so durations are immune
//    to wall-clock steps while absolute values (credential issue/expiry
//    stamps) still live on an explicit, restart-meaningful epoch.
//
//  - `VirtualClock` — coordinated virtual time.  Registered threads are
//    serialized onto a single run token (the same idea as the cooperative
//    scheduler in sim/engine, applied to real OS threads): exactly one
//    registered thread executes at a time, and the clock advances — in one
//    jump, to the earliest pending deadline — only when every registered
//    thread is blocked in a virtual wait.  Modeled sleeps therefore cost
//    zero wall-clock, and because every wake-up and token hand-off is
//    ordered by deterministic bookkeeping (registration order, notify
//    order, deadline order) rather than OS scheduling, a run is
//    bit-deterministic given a seed.
//
// Waiting through the clock follows the std::condition_variable shape:
// callers hold a `std::unique_lock` on their own mutex and loop on a
// predicate.  The usual discipline applies and is load-bearing for
// VirtualClock: notifiers must mutate the predicate state under the same
// mutex before calling Notify*, and waiters must use predicate loops
// (VirtualClock::NotifyOne wakes every waiter of the condition variable —
// deterministically — and relies on the predicates to sort out who
// proceeds).
//
// Threads that participate in a VirtualClock must be registered: spawn
// workers with `clock->SpawnThread()` / join with `clock->Join()`, and
// wrap external entry threads (main, test body) in a `Clock::ThreadGuard`.
// Unregistered threads may still call Now()/Notify*; a blocking call from
// an unregistered thread auto-registers it.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace lwfs::util {

class Clock {
 public:
  /// Durations and time points are nanosecond counts; a TimePoint is the
  /// duration since the clock's epoch (Unix epoch for RealClock, zero or
  /// the constructor-supplied origin for VirtualClock).
  using Duration = std::chrono::nanoseconds;
  using TimePoint = std::chrono::nanoseconds;

  virtual ~Clock() = default;

  [[nodiscard]] virtual TimePoint Now() = 0;
  virtual void SleepFor(Duration d) = 0;

  /// Block on `cv` (caller holds `lk`) until notified via this clock or
  /// `deadline` passes.  Returns std::cv_status::timeout on deadline.
  virtual std::cv_status WaitUntil(std::condition_variable& cv,
                                   std::unique_lock<std::mutex>& lk,
                                   TimePoint deadline) = 0;
  /// Block on `cv` until notified via this clock.
  virtual void Wait(std::condition_variable& cv,
                    std::unique_lock<std::mutex>& lk) = 0;

  /// Notify waiters blocked on `cv` *through this clock*.  The notifier
  /// must have mutated the waiters' predicate state under their mutex
  /// first (standard condition-variable discipline).
  virtual void NotifyAll(std::condition_variable& cv) = 0;
  virtual void NotifyOne(std::condition_variable& cv) = 0;

  /// Spawn a thread that participates in this clock (registered before it
  /// runs `fn`); join must go through Join() on the same clock.
  [[nodiscard]] virtual std::thread SpawnThread(std::function<void()> fn) = 0;
  virtual void Join(std::thread& t) = 0;

  /// Register/unregister the calling thread as a participant.  No-ops for
  /// RealClock.  Prefer the ThreadGuard RAII wrapper.
  virtual void RegisterCurrentThread() {}
  virtual void UnregisterCurrentThread() {}

  // ---- Non-virtual conveniences -------------------------------------

  /// Microseconds since the clock's epoch (credential stamps, metrics).
  [[nodiscard]] std::int64_t NowUs() {
    return std::chrono::duration_cast<std::chrono::microseconds>(Now())
        .count();
  }

  template <class Rep, class Period>
  void SleepFor(std::chrono::duration<Rep, Period> d) {
    SleepFor(std::chrono::duration_cast<Duration>(d));
  }

  void SleepUntil(TimePoint tp) {
    const TimePoint now = Now();
    if (tp > now) SleepFor(tp - now);
  }

  /// Predicate-loop forms, mirroring std::condition_variable semantics:
  /// the timed forms return the predicate's value (false == timed out with
  /// the predicate still unsatisfied).
  template <class Pred>
  bool WaitUntil(std::condition_variable& cv, std::unique_lock<std::mutex>& lk,
                 TimePoint deadline, Pred pred) {
    while (!pred()) {
      if (WaitUntil(cv, lk, deadline) == std::cv_status::timeout) {
        return pred();
      }
    }
    return true;
  }

  template <class Rep, class Period, class Pred>
  bool WaitFor(std::condition_variable& cv, std::unique_lock<std::mutex>& lk,
               std::chrono::duration<Rep, Period> d, Pred pred) {
    return WaitUntil(cv, lk,
                     Now() + std::chrono::duration_cast<Duration>(d),
                     std::move(pred));
  }

  template <class Pred>
  void Wait(std::condition_variable& cv, std::unique_lock<std::mutex>& lk,
            Pred pred) {
    while (!pred()) Wait(cv, lk);
  }

  /// RAII participant registration for externally created threads.
  class ThreadGuard {
   public:
    explicit ThreadGuard(Clock* clock);
    ~ThreadGuard();
    ThreadGuard(const ThreadGuard&) = delete;
    ThreadGuard& operator=(const ThreadGuard&) = delete;

   private:
    Clock* clock_;
  };
};

/// Wall time.  Monotonic readings anchored to the Unix epoch captured at
/// construction; all waits translate to steady_clock deadlines.
class RealClock final : public Clock {
 public:
  using Clock::SleepFor;
  using Clock::Wait;
  using Clock::WaitUntil;

  RealClock();

  TimePoint Now() override;
  void SleepFor(Duration d) override;
  std::cv_status WaitUntil(std::condition_variable& cv,
                           std::unique_lock<std::mutex>& lk,
                           TimePoint deadline) override;
  void Wait(std::condition_variable& cv,
            std::unique_lock<std::mutex>& lk) override;
  void NotifyAll(std::condition_variable& cv) override;
  void NotifyOne(std::condition_variable& cv) override;
  std::thread SpawnThread(std::function<void()> fn) override;
  void Join(std::thread& t) override;

 private:
  std::chrono::steady_clock::time_point base_steady_;
  Duration base_wall_{};  // Unix-epoch offset of base_steady_
};

/// The process-wide RealClock (shared epoch anchor).
RealClock* RealClockInstance();

/// Null-tolerant selector: configuration knobs default to nullptr meaning
/// "real time".
inline Clock* OrReal(Clock* clock) {
  return clock != nullptr ? clock
                          : static_cast<Clock*>(RealClockInstance());
}

/// Coordinated virtual time (see file comment for the model).
class VirtualClock final : public Clock {
 public:
  using Clock::SleepFor;
  using Clock::Wait;
  using Clock::WaitUntil;

  explicit VirtualClock(TimePoint origin = {});
  ~VirtualClock() override;

  TimePoint Now() override;
  void SleepFor(Duration d) override;
  std::cv_status WaitUntil(std::condition_variable& cv,
                           std::unique_lock<std::mutex>& lk,
                           TimePoint deadline) override;
  void Wait(std::condition_variable& cv,
            std::unique_lock<std::mutex>& lk) override;
  void NotifyAll(std::condition_variable& cv) override;
  void NotifyOne(std::condition_variable& cv) override;
  std::thread SpawnThread(std::function<void()> fn) override;
  void Join(std::thread& t) override;
  void RegisterCurrentThread() override;
  void UnregisterCurrentThread() override;

  /// Number of currently registered participant threads (tests).
  [[nodiscard]] std::size_t participants();

 private:
  enum class State {
    kRunning,       // holds the run token
    kReady,         // runnable, waiting for the token
    kWaiting,       // blocked on a condition variable, untimed
    kWaitingTimed,  // blocked with a deadline
    kJoining,       // blocked in Join() on a child thread
  };

  struct ThreadRec {
    std::uint64_t id = 0;  // registration sequence — the deterministic key
    std::thread::id os_id;
    State state = State::kReady;
    bool has_token = false;
    bool notified = false;   // woken by Notify* (vs. deadline)
    bool timed_out = false;  // woken by deadline expiry
    std::uint64_t ready_order = 0;
    TimePoint deadline{};
    const std::condition_variable* wait_cv = nullptr;
    std::thread::id join_target;
    std::condition_variable grant_cv;  // paired with VirtualClock::mu_
  };

  ThreadRec* EnsureRegisteredLocked(std::unique_lock<std::mutex>& g);
  ThreadRec* FindCurrentLocked();
  void ReleaseTokenLocked(ThreadRec* rec);
  void ScheduleLocked();
  void AwaitGrantLocked(std::unique_lock<std::mutex>& g, ThreadRec* rec);
  std::cv_status BlockLocked(std::unique_lock<std::mutex>& g,
                             std::unique_lock<std::mutex>& lk, ThreadRec* rec);
  void DetachImpl(bool record_finished);

  std::mutex mu_;
  TimePoint now_{};
  std::uint64_t next_id_ = 1;
  std::uint64_t ready_seq_ = 1;
  ThreadRec* owner_ = nullptr;
  // Keyed by deterministic id: every scheduling scan iterates this map in
  // id order, which is what makes grant/advance order reproducible.
  std::map<std::uint64_t, std::unique_ptr<ThreadRec>> threads_;
  std::unordered_map<std::thread::id, ThreadRec*> current_;  // lookup only
  std::unordered_set<std::thread::id> finished_unjoined_;
};

}  // namespace lwfs::util
