// Bounded, blocking multi-producer/multi-consumer queue.
//
// This is the delivery mechanism of the in-process Portals fabric and of
// every service request queue.  A bounded capacity matters: the paper's
// argument for server-directed I/O rests on I/O-node buffers being finite,
// and `TryPush` models the "reject when full" behaviour of an overloaded
// I/O node (§3.2).
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/clock.h"

namespace lwfs {

template <typename T>
class SyncQueue {
 public:
  /// `capacity == 0` means unbounded.  All blocking and wake-ups go
  /// through `clock` (nullptr = real time) so a queue participates in
  /// virtual-time runs.
  explicit SyncQueue(std::size_t capacity = 0, util::Clock* clock = nullptr)
      : capacity_(capacity), clock_(util::OrReal(clock)) {}

  SyncQueue(const SyncQueue&) = delete;
  SyncQueue& operator=(const SyncQueue&) = delete;

  /// Blocks until there is room (or the queue is closed).  Returns false if
  /// the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    clock_->Wait(not_full_, lock, [&] { return closed_ || HasRoomLocked(); });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    clock_->NotifyOne(not_empty_);
    return true;
  }

  /// Non-blocking push; returns false when full or closed (caller must
  /// retry — this is the "resend" path of client-pushed I/O).
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || !HasRoomLocked()) return false;
      items_.push_back(std::move(item));
    }
    clock_->NotifyOne(not_empty_);
    return true;
  }

  /// Blocks until an item is available; std::nullopt when closed and empty.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    clock_->Wait(not_empty_, lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    clock_->NotifyOne(not_full_);
    return item;
  }

  /// Blocking pop with a deadline; nullopt on timeout or when closed and
  /// empty.
  template <typename Rep, typename Period>
  std::optional<T> PopFor(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!clock_->WaitFor(not_empty_, lock, timeout,
                         [&] { return closed_ || !items_.empty(); })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    clock_->NotifyOne(not_full_);
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::optional<T> out;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (items_.empty()) return std::nullopt;
      out = std::move(items_.front());
      items_.pop_front();
    }
    clock_->NotifyOne(not_full_);
    return out;
  }

  /// Wakes all waiters; subsequent pushes fail, pops drain then return
  /// nullopt.  Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    clock_->NotifyAll(not_empty_);
    clock_->NotifyAll(not_full_);
  }

  [[nodiscard]] std::size_t Size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] bool Closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  [[nodiscard]] bool HasRoomLocked() const {
    return capacity_ == 0 || items_.size() < capacity_;
  }

  const std::size_t capacity_;
  util::Clock* const clock_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace lwfs
