#include "util/machines.h"

#include <array>

namespace lwfs {
namespace {

constexpr std::array<MachineInventory, 4> kTable1 = {{
    {"SNL Intel Paragon", 1990, 1840, 32},
    {"ASCI Red", 1990, 4510, 73},
    {"Cray Red Storm", 2004, 10'368, 256},
    {"BlueGene/L", 2005, 65'536, 1024},
}};

}  // namespace

std::span<const MachineInventory> Table1Machines() { return kTable1; }

const RedStormSpec& RedStorm() {
  static const RedStormSpec spec;
  return spec;
}

const DevClusterSpec& DevCluster() {
  static const DevClusterSpec spec;
  return spec;
}

const PetaflopSpec& Petaflop() {
  static const PetaflopSpec spec;
  return spec;
}

}  // namespace lwfs
