// Machine descriptions from the paper.
//
// Table 1 lists compute/I-O node counts for four DOE MPPs; Table 2 gives the
// Red Storm interconnect and I/O envelope; §4 describes the Sandia
// I/O-development cluster the experiments ran on.  These records drive the
// simulator calibration and the Table 1/Table 2 reproduction benches.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace lwfs {

/// One row of Table 1.
struct MachineInventory {
  std::string_view name;
  int year;  // as given in the table ("1990s" rows use the decade start)
  std::uint64_t compute_nodes;
  std::uint64_t io_nodes;

  [[nodiscard]] double Ratio() const {
    return static_cast<double>(compute_nodes) / static_cast<double>(io_nodes);
  }
};

/// The four machines of Table 1, in table order.
std::span<const MachineInventory> Table1Machines();

/// Table 2: Red Storm communication and I/O performance.
struct RedStormSpec {
  // I/O performance.
  int io_mesh_rows = 8;          // I/O node topology (per end): 8x16 mesh
  int io_mesh_cols = 16;
  double aggregate_io_bw = 50e9;  // bytes/sec per end
  double io_node_raid_bw = 400e6; // bytes/sec, I/O node to RAID

  // Interconnect performance.
  double mpi_latency_1hop = 2.0e-6;   // seconds
  double mpi_latency_max = 5.0e-6;    // seconds
  double link_bw = 6.0e9;             // bytes/sec, bi-directional link
  double bisection_bw = 2.3e12;       // bytes/sec, minimum bi-section
};

const RedStormSpec& RedStorm();

/// The Sandia I/O-development cluster of §4 (the testbed for Figures 9-10).
struct DevClusterSpec {
  int total_nodes = 40;       // 2-way SMP 2.0 GHz Opterons
  int metadata_nodes = 1;     // metadata/authorization server
  int storage_nodes = 8;      // each hosting 2 OSTs / 2 LWFS servers
  int servers_per_storage_node = 2;
  int compute_nodes = 31;     // larger runs host multiple clients per node
  std::uint64_t bytes_per_client = 512ull << 20;  // 512 MB dumped per client

  // Calibrated model constants (chosen so the simulated cluster reproduces
  // the absolute scale of Figures 9-10; see EXPERIMENTS.md for the fit).
  double nic_bw = 245e6;          // Myrinet-2000 effective per-node bytes/sec
  double nic_latency = 8e-6;      // seconds, one-way small message
  double server_disk_bw = 95e6;   // effective per-server RAID share, bytes/sec
  double disk_op_overhead = 0.25e-3;  // seconds per storage op (object create etc.)
  double mds_create_time = 1.45e-3;   // seconds of MDS service per file create
  double mds_open_time = 0.6e-3;      // seconds of MDS service per open/lookup
  double lock_service_time = 0.25e-3; // seconds per extent-lock grant (shared file)
  double client_overhead = 30e-6;     // client-side per-request software overhead
  double shared_file_efficiency = 0.5;  // consistency tax measured by the paper
};

const DevClusterSpec& DevCluster();

/// The theoretical petaflop machine from the §4 extrapolation.
struct PetaflopSpec {
  std::uint64_t compute_nodes = 100'000;
  std::uint64_t io_nodes = 2'000;
};

const PetaflopSpec& Petaflop();

}  // namespace lwfs
