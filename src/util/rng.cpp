#include "util/rng.h"

#include <cmath>

namespace lwfs {

double Rng::Log(double x) { return std::log(x); }

}  // namespace lwfs
