// Ref-counted immutable byte buffers and scatter-gather frames — the
// zero-copy data path.
//
// A `SharedSlice` is a view (pointer + length) into an immutable byte array
// kept alive by a shared owner.  Sub-slicing is O(1) and shares the owner,
// so a payload pulled off the wire can be carved up, queued behind an I/O
// scheduler, cached for retransmission, and handed to an object store
// without ever being copied: the last reference frees the bytes.
//
// `FrameBuilder` assembles a wire frame from small encoded header segments
// plus payload slices *without flattening*: the frame travels as a part
// list and is gathered exactly once — by the fabric, at delivery — which is
// the wire transfer itself, not an extra host copy.
//
// `CopyStats` counts every payload memcpy the process performs, by
// category, so tests can assert the paper's "at most one copy" budget and
// the bench-regression smoke can fail when a copy sneaks back in.  Call
// sites compile to nothing unless LWFS_COUNT_COPIES is defined (the default
// build defines it; see the top-level CMakeLists option).
#pragma once

#include <atomic>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "util/bytes.h"
#include "util/crc32.h"
#include "util/status.h"

namespace lwfs::util {

// ---------------------------------------------------------------------------
// CopyStats
// ---------------------------------------------------------------------------

/// Why a payload byte got memcpy'd.  The bulk-path budget (both directions)
/// charges kStage + kStore: a write stages into server memory and lands in
/// the medium, a read leaves the medium and (legacy path only) stages into
/// a push buffer.  kEncode/kDeliver cover (small) frame assembly and
/// message-mode delivery; kInjected copies exist only so the fault injector
/// can corrupt a delivery without mutating the sender's shared bytes.
enum class CopyKind : int {
  kEncode = 0,   // flattening parts into a contiguous frame
  kDeliver = 1,  // message-mode delivery / multi-part gather at the NIC
  kStage = 2,    // bulk payload staged into an intermediate server buffer
  kStore = 3,    // to or from an object store's own medium
  kInjected = 4, // copy-on-write clone made to corrupt a delivery
};
inline constexpr int kCopyKinds = 5;

/// Snapshot of the process-global copy counters.
struct CopySnapshot {
  std::uint64_t copies[kCopyKinds] = {};
  std::uint64_t bytes[kCopyKinds] = {};

  [[nodiscard]] std::uint64_t copies_of(CopyKind k) const {
    return copies[static_cast<int>(k)];
  }
  [[nodiscard]] std::uint64_t bytes_of(CopyKind k) const {
    return bytes[static_cast<int>(k)];
  }
  /// Bytes charged against the bulk-path copy budget: staging + store
  /// copies.  (Encode/deliver cover small control frames; injected copies
  /// are deliberate fault-injection clones.)
  [[nodiscard]] std::uint64_t budget_bytes() const {
    return bytes_of(CopyKind::kStage) + bytes_of(CopyKind::kStore);
  }
  /// Difference since `base` (counter-wise).
  [[nodiscard]] CopySnapshot Since(const CopySnapshot& base) const {
    CopySnapshot d;
    for (int i = 0; i < kCopyKinds; ++i) {
      d.copies[i] = copies[i] - base.copies[i];
      d.bytes[i] = bytes[i] - base.bytes[i];
    }
    return d;
  }
};

/// Process-global relaxed counters; cheap enough to leave on everywhere the
/// build enables them.
class CopyStats {
 public:
  static void Count(CopyKind kind, std::size_t bytes) {
    auto& s = Instance();
    s.copies_[static_cast<int>(kind)].fetch_add(1, std::memory_order_relaxed);
    s.bytes_[static_cast<int>(kind)].fetch_add(bytes,
                                               std::memory_order_relaxed);
  }

  [[nodiscard]] static CopySnapshot Snapshot() {
    auto& s = Instance();
    CopySnapshot out;
    for (int i = 0; i < kCopyKinds; ++i) {
      out.copies[i] = s.copies_[i].load(std::memory_order_relaxed);
      out.bytes[i] = s.bytes_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

  static void Reset() {
    auto& s = Instance();
    for (int i = 0; i < kCopyKinds; ++i) {
      s.copies_[i].store(0, std::memory_order_relaxed);
      s.bytes_[i].store(0, std::memory_order_relaxed);
    }
  }

  /// True when the build counts copies (LWFS_COUNT_COPIES).
  [[nodiscard]] static constexpr bool Enabled() {
#ifdef LWFS_COUNT_COPIES
    return true;
#else
    return false;
#endif
  }

 private:
  static CopyStats& Instance();
  std::atomic<std::uint64_t> copies_[kCopyKinds] = {};
  std::atomic<std::uint64_t> bytes_[kCopyKinds] = {};
};

#ifdef LWFS_COUNT_COPIES
#define LWFS_COUNT_COPY(kind, n) ::lwfs::util::CopyStats::Count((kind), (n))
#else
#define LWFS_COUNT_COPY(kind, n) \
  do {                           \
  } while (false)
#endif

// ---------------------------------------------------------------------------
// SharedBuffer / SharedSlice
// ---------------------------------------------------------------------------

/// The immutable ref-counted byte array slices point into.  Held by
/// shared_ptr; never mutated after construction.
class SharedBuffer {
 public:
  explicit SharedBuffer(Buffer data) : data_(std::move(data)) {}
  SharedBuffer(const SharedBuffer&) = delete;
  SharedBuffer& operator=(const SharedBuffer&) = delete;

  [[nodiscard]] ByteSpan span() const { return ByteSpan(data_); }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

 private:
  Buffer data_;
};

/// An immutable view into ref-counted bytes.  Copying a slice bumps a
/// refcount; Slice() shares the owner.  A slice may also be *external*
/// (owner == nullptr): a borrowed view whose lifetime the caller manages,
/// used to funnel legacy ByteSpan paths through the same plumbing.  The
/// fabric never delivers an external slice by reference — it copies, like
/// the old Buffer path did — so only owned slices get zero-copy treatment.
class SharedSlice {
 public:
  SharedSlice() = default;

  /// Adopt `data` (no copy): the buffer moves into a fresh SharedBuffer.
  static SharedSlice FromBuffer(Buffer&& data) {
    auto owner = std::make_shared<SharedBuffer>(std::move(data));
    ByteSpan s = owner->span();
    return SharedSlice(std::move(owner), s);
  }

  /// Copy `data` into a fresh owned buffer, charging `kind`.
  static SharedSlice Copy(ByteSpan data, CopyKind kind) {
    (void)kind;
    LWFS_COUNT_COPY(kind, data.size());
    return FromBuffer(Buffer(data.begin(), data.end()));
  }

  /// View into memory kept alive by `owner` (e.g. a sub-object).
  static SharedSlice Wrap(ByteSpan data, std::shared_ptr<const void> owner) {
    return SharedSlice(std::move(owner), data);
  }

  /// Borrowed, non-owning view; see the class comment for the contract.
  static SharedSlice External(ByteSpan data) {
    return SharedSlice(nullptr, data);
  }

  /// O(1) sub-slice sharing the owner; bounds are clamped to the slice.
  [[nodiscard]] SharedSlice Slice(std::size_t offset,
                                  std::size_t length) const {
    if (offset > size_) offset = size_;
    if (length > size_ - offset) length = size_ - offset;
    SharedSlice out(owner_, ByteSpan(data_ + offset, length));
    // A full-range sub-slice is the same bytes, so the cached CRC (if
    // any) stays valid; a proper sub-range drops it.
    if (offset == 0 && length == size_ && has_cached_crc_) {
      out.SetCachedCrc(cached_crc_);
    }
    return out;
  }

  [[nodiscard]] const std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] ByteSpan span() const { return ByteSpan(data_, size_); }
  /// True when the slice keeps its bytes alive (safe to hold indefinitely).
  [[nodiscard]] bool owned() const { return owner_ != nullptr; }
  [[nodiscard]] const std::shared_ptr<const void>& owner() const {
    return owner_;
  }
  [[nodiscard]] long use_count() const { return owner_.use_count(); }

  /// Producer-attached CRC32 of exactly this slice's bytes.  Frame
  /// checksums Crc32Combine() a cached value instead of re-streaming the
  /// payload, which is safe because slices are immutable — and because
  /// every path that rewrites delivered bytes (the fault injector's
  /// corruption clone, gather copies) builds a *new* slice that carries no
  /// cached CRC, so tampered bytes always get re-checksummed for real.
  /// Sub-slices drop the cache: it covers the full range only.
  [[nodiscard]] bool has_cached_crc() const { return has_cached_crc_; }
  [[nodiscard]] std::uint32_t cached_crc() const { return cached_crc_; }
  void SetCachedCrc(std::uint32_t crc) {
    cached_crc_ = crc;
    has_cached_crc_ = true;
  }

  /// Materialize as an owned Buffer (counted as `kind`).
  [[nodiscard]] Buffer ToBuffer(CopyKind kind) const {
    (void)kind;
    LWFS_COUNT_COPY(kind, size_);
    return Buffer(data_, data_ + size_);
  }

 private:
  SharedSlice(std::shared_ptr<const void> owner, ByteSpan view)
      : owner_(std::move(owner)), data_(view.data()), size_(view.size()) {}

  std::shared_ptr<const void> owner_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::uint32_t cached_crc_ = 0;
  bool has_cached_crc_ = false;
};

// ---------------------------------------------------------------------------
// Frame / FrameBuilder
// ---------------------------------------------------------------------------

/// A wire frame as an ordered part list.  Semantically the concatenation of
/// the parts; physically never flattened on the send side.
struct Frame {
  std::vector<SharedSlice> parts;
  std::size_t total_bytes = 0;

  [[nodiscard]] bool empty() const { return total_bytes == 0; }

  /// CRC32 of the concatenated parts (no flatten).  Parts carrying a
  /// producer-cached CRC are folded in with Crc32Combine — O(log n) per
  /// part instead of a second full pass over a bulk payload.
  [[nodiscard]] std::uint32_t Crc() const {
    std::uint32_t crc = 0;  // CRC32 of the empty prefix
    for (const SharedSlice& p : parts) {
      crc = Crc32Combine(
          crc, p.has_cached_crc() ? p.cached_crc() : lwfs::Crc32(p.span()),
          p.size());
    }
    return crc;
  }

  /// Materialize the concatenation (one counted encode copy) — tests and
  /// the rare consumer that needs contiguous bytes.
  [[nodiscard]] Buffer Flatten() const {
    LWFS_COUNT_COPY(CopyKind::kEncode, total_bytes);
    Buffer out;
    out.reserve(total_bytes);
    for (const SharedSlice& p : parts) {
      out.insert(out.end(), p.data(), p.data() + p.size());
    }
    return out;
  }
};

/// Builds a Frame by interleaving encoded header segments with payload
/// slices.  header() hands out the current segment's Encoder; appending a
/// payload slice seals the segment.  Small header bytes are copied (they
/// are built here anyway); payload slices ride by reference.
class FrameBuilder {
 public:
  /// Encoder for the current header segment (sealed by the next Append).
  [[nodiscard]] Encoder& header() { return cur_; }

  /// Append a payload slice by reference (zero-copy).
  void Append(SharedSlice payload) {
    SealCurrent();
    if (!payload.empty()) {
      frame_.total_bytes += payload.size();
      frame_.parts.push_back(std::move(payload));
    }
  }

  /// Seal the trailing segment, optionally append a 4-byte CRC32 trailer
  /// computed across every part, and return the finished frame.  The
  /// builder is left empty.
  [[nodiscard]] Frame Build(bool with_crc_trailer = false) {
    SealCurrent();
    if (with_crc_trailer) {
      const std::uint32_t crc = frame_.Crc();
      Buffer trailer(4);
      trailer[0] = static_cast<std::uint8_t>(crc & 0xFFu);
      trailer[1] = static_cast<std::uint8_t>((crc >> 8) & 0xFFu);
      trailer[2] = static_cast<std::uint8_t>((crc >> 16) & 0xFFu);
      trailer[3] = static_cast<std::uint8_t>((crc >> 24) & 0xFFu);
      frame_.total_bytes += trailer.size();
      frame_.parts.push_back(SharedSlice::FromBuffer(std::move(trailer)));
    }
    Frame out = std::move(frame_);
    frame_ = Frame{};
    return out;
  }

 private:
  void SealCurrent() {
    if (cur_.size() == 0) return;
    Buffer seg = std::move(cur_).Take();
    cur_ = Encoder{};
    frame_.total_bytes += seg.size();
    frame_.parts.push_back(SharedSlice::FromBuffer(std::move(seg)));
  }

  Encoder cur_;
  Frame frame_;
};

}  // namespace lwfs::util

namespace lwfs {

// Out-of-line slice hooks declared in util/bytes.h — defined here so
// bytes.h needs only a forward declaration of SharedSlice.

inline void Encoder::PutSlice(const util::SharedSlice& s) {
  PutU32(static_cast<std::uint32_t>(s.size()));
  Reserve(s.size());
  buf_.insert(buf_.end(), s.data(), s.data() + s.size());
}

inline Decoder::Decoder(const util::SharedSlice& s)
    : data_(s.span()), owner_(s.owner()) {}

inline Result<util::SharedSlice> Decoder::TakeSlice() {
  auto len = GetU32();
  if (!len.ok()) return len.status();
  if (remaining() < *len) return InvalidArgument("truncated byte slice");
  ByteSpan view = data_.subspan(pos_, *len);
  pos_ += *len;
  if (owner_ != nullptr) {
    // Zero-copy: the returned slice shares the decoded frame's owner and
    // may outlive this Decoder.
    return util::SharedSlice::Wrap(view, owner_);
  }
  // Un-owned input (plain span): fall back to one counted copy so the
  // result is still safe to hold.
  return util::SharedSlice::Copy(view, util::CopyKind::kDeliver);
}

}  // namespace lwfs
