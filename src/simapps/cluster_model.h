// Simulated cluster for the paper's experiments.
//
// Models exactly the resources the paper's argument hinges on (§2.2, §4):
// per-client/server NIC links (bandwidth + latency), a per-server storage
// drain (the "I/O node to RAID" path, 400 MB/s on Red Storm, ~95 MB/s
// effective per server on the dev cluster), and a single centralized
// metadata/authorization node.  Service times carry a small multiplicative
// jitter so repeated trials produce the mean-and-stddev error bars the
// paper reports.
//
// Calibration constants come from util/machines.h (DevClusterSpec); see
// EXPERIMENTS.md for how they were fitted and which shapes they are *not*
// allowed to influence.
#pragma once

#include <memory>
#include <vector>

#include "sim/engine.h"
#include "sim/resources.h"
#include "util/machines.h"
#include "util/rng.h"

namespace lwfs::simapps {

struct ClusterParams {
  int num_clients = 8;
  int num_servers = 8;

  double nic_bw = 245e6;        // bytes/s per node link
  double nic_latency = 8e-6;    // s one-way
  double server_disk_bw = 95e6; // bytes/s per server (sequential)
  double disk_op_overhead = 0.25e-3;  // s per object create/remove
  double mds_create_time = 1.45e-3;   // s of MDS service per file create
  double mds_stripe_create_time = 0.25e-3;  // extra MDS->OST time per stripe
  double mds_open_time = 0.6e-3;
  double lock_service_time = 0.25e-3;
  double client_overhead = 30e-6;     // client software time per request
  double shared_file_efficiency = 0.5;  // consistency tax (paper-measured)
  std::uint64_t lock_granularity = 64ull << 20;

  double jitter = 0.03;          // +/- relative service-time jitter
  std::uint64_t chunk_bytes = 4ull << 20;  // bulk transfer granularity
  std::uint64_t request_bytes = 256;       // small-request wire size

  /// Build dev-cluster-calibrated parameters with the given server count.
  static ClusterParams DevCluster(int num_clients, int num_servers);
};

/// The resource set of one simulated run.  Create fresh per trial.
class SimCluster {
 public:
  SimCluster(const ClusterParams& params, std::uint64_t seed);

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] const ClusterParams& params() const { return params_; }

  /// Ingress link of storage server `s` (shared by all clients writing to
  /// it: this is where bursts queue).
  [[nodiscard]] sim::Pipe& server_link(int s) { return *server_links_[static_cast<std::size_t>(s)]; }
  /// Storage drain of server `s`.
  [[nodiscard]] sim::FifoResource& disk(int s) { return *disks_[static_cast<std::size_t>(s)]; }
  /// The centralized metadata/lock node (MDS CPU).
  [[nodiscard]] sim::FifoResource& mds() { return mds_; }
  /// The authorization service CPU (LWFS control plane).
  [[nodiscard]] sim::FifoResource& authz() { return authz_; }

  /// Multiplicative jitter around `base` (deterministic per seed).
  double J(double base) {
    if (params_.jitter <= 0) return base;
    return base * (1.0 + params_.jitter * (2.0 * rng_.NextDouble() - 1.0));
  }

 private:
  ClusterParams params_;
  sim::Engine engine_;
  Rng rng_;
  std::vector<std::unique_ptr<sim::Pipe>> server_links_;
  std::vector<std::unique_ptr<sim::FifoResource>> disks_;
  sim::FifoResource mds_;
  sim::FifoResource authz_;
};

}  // namespace lwfs::simapps
