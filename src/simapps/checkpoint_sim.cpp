#include "simapps/checkpoint_sim.h"

#include <algorithm>
#include <vector>

namespace lwfs::simapps {

namespace {

/// Pipelined bulk dump of `bytes` to server `s`: the next chunk moves over
/// the server's ingress link while the previous one drains to the RAID —
/// the overlap server-directed transfers give you (Figure 6).
/// `disk_efficiency` scales the drain rate (the shared-file consistency
/// tax).  Drain tasks are spawned detached; RunUntilIdle covers them.
sim::Task DumpToServer(SimCluster& c, int s, std::uint64_t bytes,
                       double disk_efficiency) {
  const ClusterParams& p = c.params();
  std::uint64_t remaining = bytes;
  while (remaining > 0) {
    const std::uint64_t chunk = std::min(p.chunk_bytes, remaining);
    co_await c.server_link(s).Transfer(chunk);
    // Drain to storage proceeds concurrently with the next chunk's
    // transfer; completion is tracked through the latch.
    const double drain =
        c.J(static_cast<double>(chunk) / (p.server_disk_bw * disk_efficiency));
    c.engine().Spawn([](SimCluster& cc, int srv, double d) -> sim::Task {
      co_await cc.disk(srv).Use(d);
    }(c, s, drain));
    remaining -= chunk;
  }
}

/// One LWFS checkpoint rank: create its object on server rank%m directly,
/// then dump (Figure 8 lines 2-3).
sim::Task LwfsRank(SimCluster& c, int rank, std::uint64_t bytes,
                   std::vector<double>& create_done) {
  const ClusterParams& p = c.params();
  const int s = rank % p.num_servers;
  co_await c.engine().Delay(c.J(p.client_overhead));
  co_await c.server_link(s).Transfer(p.request_bytes);  // small create req
  co_await c.disk(s).Use(c.J(p.disk_op_overhead));      // object create
  co_await c.engine().Delay(p.nic_latency);             // reply
  create_done[static_cast<std::size_t>(rank)] = c.engine().Now();
  co_await DumpToServer(c, s, bytes, 1.0);
}

/// One file-per-process rank: create its file through the centralized MDS,
/// then dump to the single OST holding its (1-stripe) file.
sim::Task FppRank(SimCluster& c, int rank, std::uint64_t bytes,
                  std::vector<double>& create_done) {
  const ClusterParams& p = c.params();
  const int s = rank % p.num_servers;
  co_await c.engine().Delay(c.J(p.client_overhead));
  co_await c.engine().Delay(p.nic_latency);  // request to MDS
  // The MDS serializes: namespace update plus the stripe-object create it
  // performs on the client's behalf.
  co_await c.mds().Use(
      c.J(p.mds_create_time + p.mds_stripe_create_time));
  co_await c.engine().Delay(p.nic_latency);  // reply
  create_done[static_cast<std::size_t>(rank)] = c.engine().Now();
  co_await DumpToServer(c, s, bytes, 1.0);
}

/// One shared-file rank: wait for rank 0's create, then write its disjoint
/// slice of the striped file, taking MDS extent locks per lock-granularity
/// region and paying the interleaved-stream drain penalty on every OST.
sim::Task SharedRank(SimCluster& c, int rank, std::uint64_t bytes,
                     sim::Latch& file_created) {
  const ClusterParams& p = c.params();
  co_await file_created.Wait();
  const std::uint64_t slice_start =
      static_cast<std::uint64_t>(rank) * bytes;
  std::uint64_t offset = slice_start;
  const std::uint64_t slice_end = slice_start + bytes;
  std::uint64_t next_lock_boundary = slice_start;
  while (offset < slice_end) {
    if (offset >= next_lock_boundary) {
      // Acquire the extent lock covering the next granule: two MDS round
      // trips (enqueue + grant) through the centralized lock manager.
      co_await c.engine().Delay(p.nic_latency);
      co_await c.mds().Use(c.J(p.lock_service_time));
      co_await c.engine().Delay(p.nic_latency);
      next_lock_boundary += p.lock_granularity;
    }
    const std::uint64_t chunk = std::min<std::uint64_t>(
        {p.chunk_bytes, slice_end - offset, next_lock_boundary - offset});
    // Stripe placement: chunk lands on server (offset / chunk) mod m.
    const int s = static_cast<int>((offset / p.chunk_bytes) %
                                   static_cast<std::uint64_t>(p.num_servers));
    co_await c.server_link(s).Transfer(chunk);
    const double drain = c.J(static_cast<double>(chunk) /
                             (p.server_disk_bw * p.shared_file_efficiency));
    c.engine().Spawn([](SimCluster& cc, int srv, double d) -> sim::Task {
      co_await cc.disk(srv).Use(d);
    }(c, s, drain));
    offset += chunk;
  }
}

sim::Task SharedFileCreate(SimCluster& c, std::vector<double>& create_done,
                           sim::Latch& file_created) {
  const ClusterParams& p = c.params();
  co_await c.engine().Delay(c.J(p.client_overhead));
  co_await c.engine().Delay(p.nic_latency);
  // One create, but the MDS allocates a stripe object on every OST.
  co_await c.mds().Use(c.J(p.mds_create_time +
                           p.num_servers * p.mds_stripe_create_time));
  co_await c.engine().Delay(p.nic_latency);
  create_done[0] = c.engine().Now();
  file_created.CountDown();
}

}  // namespace

SimCheckpointResult SimulateCheckpoint(CheckpointKind kind,
                                       const ClusterParams& params,
                                       std::uint64_t bytes_per_client,
                                       std::uint64_t seed) {
  SimCluster cluster(params, seed);
  const int n = params.num_clients;
  std::vector<double> create_done(static_cast<std::size_t>(n), 0.0);
  sim::Latch file_created(&cluster.engine(), 1);

  for (int r = 0; r < n; ++r) {
    switch (kind) {
      case CheckpointKind::kLwfsObjectPerProcess:
        cluster.engine().Spawn(
            LwfsRank(cluster, r, bytes_per_client, create_done));
        break;
      case CheckpointKind::kPfsFilePerProcess:
        cluster.engine().Spawn(
            FppRank(cluster, r, bytes_per_client, create_done));
        break;
      case CheckpointKind::kPfsSharedFile:
        cluster.engine().Spawn(
            SharedRank(cluster, r, bytes_per_client, file_created));
        break;
    }
  }
  if (kind == CheckpointKind::kPfsSharedFile) {
    cluster.engine().Spawn(SharedFileCreate(cluster, create_done, file_created));
  }

  cluster.engine().RunUntilIdle();

  SimCheckpointResult result;
  result.total_time = cluster.engine().Now();
  result.create_time = *std::max_element(create_done.begin(), create_done.end());
  result.dump_time = result.total_time - result.create_time;
  result.bytes = static_cast<std::uint64_t>(n) * bytes_per_client;
  return result;
}

namespace {

sim::Task LwfsCreateLoop(SimCluster& c, int rank, std::uint64_t count) {
  const ClusterParams& p = c.params();
  for (std::uint64_t i = 0; i < count; ++i) {
    const int s = static_cast<int>(
        (static_cast<std::uint64_t>(rank) + i) %
        static_cast<std::uint64_t>(p.num_servers));
    co_await c.engine().Delay(c.J(p.client_overhead));
    co_await c.server_link(s).Transfer(p.request_bytes);
    co_await c.disk(s).Use(c.J(p.disk_op_overhead));
    co_await c.engine().Delay(p.nic_latency);
  }
}

sim::Task MdsCreateLoop(SimCluster& c, std::uint64_t count) {
  const ClusterParams& p = c.params();
  for (std::uint64_t i = 0; i < count; ++i) {
    co_await c.engine().Delay(c.J(p.client_overhead));
    co_await c.engine().Delay(p.nic_latency);
    co_await c.mds().Use(c.J(p.mds_create_time + p.mds_stripe_create_time));
    co_await c.engine().Delay(p.nic_latency);
  }
}

}  // namespace

SimCreateResult SimulateCreates(CheckpointKind kind,
                                const ClusterParams& params,
                                std::uint64_t creates_per_client,
                                std::uint64_t seed) {
  SimCluster cluster(params, seed);
  for (int r = 0; r < params.num_clients; ++r) {
    if (kind == CheckpointKind::kLwfsObjectPerProcess) {
      cluster.engine().Spawn(LwfsCreateLoop(cluster, r, creates_per_client));
    } else {
      cluster.engine().Spawn(MdsCreateLoop(cluster, creates_per_client));
    }
  }
  cluster.engine().RunUntilIdle();
  SimCreateResult result;
  result.total_time = cluster.engine().Now();
  result.creates =
      static_cast<std::uint64_t>(params.num_clients) * creates_per_client;
  return result;
}

}  // namespace lwfs::simapps
