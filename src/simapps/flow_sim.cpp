#include "simapps/flow_sim.h"

#include <algorithm>

#include "sim/engine.h"
#include "sim/resources.h"
#include "util/rng.h"

namespace lwfs::simapps {

namespace {

/// Shared state of one flow-control run.
struct FlowWorld {
  FlowWorld(const FlowParams& p, std::uint64_t seed)
      : params(p),
        rng(seed),
        link(&engine, p.link_bw, p.link_latency),
        drain(&engine, 1),
        buffer_permits(&engine, std::max<std::uint64_t>(
                                    1, p.buffer_bytes / p.message_bytes)) {}

  const FlowParams& params;
  sim::Engine engine;
  Rng rng;
  sim::Pipe link;           // node ingress
  sim::FifoResource drain;  // node -> RAID
  sim::Semaphore buffer_permits;  // buffer slots (message_bytes each)
  std::uint64_t buffered_bytes = 0;
  FlowResult result;

  double Jitter(double base) {
    return base * (0.75 + 0.5 * rng.NextDouble());
  }
};

/// Eager push: every attempt crosses the wire; the node only accepts what
/// fits in its buffer, rejecting the rest back to the sender.
sim::Task EagerClient(FlowWorld& w) {
  const FlowParams& p = w.params;
  std::uint64_t remaining = p.bytes_per_client;
  while (remaining > 0) {
    const std::uint64_t msg = std::min(p.message_bytes, remaining);
    for (;;) {
      co_await w.link.Transfer(msg);  // the wire is consumed either way
      if (w.buffered_bytes + msg <= p.buffer_bytes) {
        w.buffered_bytes += msg;
        w.result.goodput_bytes += msg;
        w.engine.Spawn([](FlowWorld& ww, std::uint64_t m) -> sim::Task {
          co_await ww.drain.Use(static_cast<double>(m) / ww.params.drain_bw);
          ww.buffered_bytes -= m;
        }(w, msg));
        break;
      }
      // Rejected: buffer full.  Resend after a backoff.
      ++w.result.resends;
      w.result.wasted_bytes += msg;
      co_await w.engine.Delay(w.Jitter(p.retry_delay));
    }
    remaining -= msg;
  }
}

/// Server-directed: the client sends one tiny request; the node pulls
/// chunks only when it holds a buffer permit, so nothing is ever dropped.
sim::Task DirectedRequest(FlowWorld& w) {
  const FlowParams& p = w.params;
  co_await w.link.Transfer(p.request_bytes);  // the small request
  std::uint64_t remaining = p.bytes_per_client;
  while (remaining > 0) {
    const std::uint64_t chunk = std::min(p.message_bytes, remaining);
    co_await w.buffer_permits.Acquire();
    co_await w.link.Transfer(chunk);  // server-initiated get
    w.result.goodput_bytes += chunk;
    w.engine.Spawn([](FlowWorld& ww, std::uint64_t m) -> sim::Task {
      co_await ww.drain.Use(static_cast<double>(m) / ww.params.drain_bw);
      ww.buffer_permits.Release();
    }(w, chunk));
    remaining -= chunk;
  }
}

}  // namespace

FlowResult SimulateEagerPush(const FlowParams& params, std::uint64_t seed) {
  FlowWorld world(params, seed);
  for (int i = 0; i < params.num_clients; ++i) {
    world.engine.Spawn(EagerClient(world));
  }
  world.engine.RunUntilIdle();
  world.result.total_time = world.engine.Now();
  return world.result;
}

FlowResult SimulateServerDirected(const FlowParams& params,
                                  std::uint64_t seed) {
  FlowWorld world(params, seed);
  for (int i = 0; i < params.num_clients; ++i) {
    world.engine.Spawn(DirectedRequest(world));
  }
  world.engine.RunUntilIdle();
  world.result.total_time = world.engine.Now();
  return world.result;
}

}  // namespace lwfs::simapps
