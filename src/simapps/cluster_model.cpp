#include "simapps/cluster_model.h"

namespace lwfs::simapps {

ClusterParams ClusterParams::DevCluster(int num_clients, int num_servers) {
  const DevClusterSpec& spec = lwfs::DevCluster();
  ClusterParams p;
  p.num_clients = num_clients;
  p.num_servers = num_servers;
  p.nic_bw = spec.nic_bw;
  p.nic_latency = spec.nic_latency;
  p.server_disk_bw = spec.server_disk_bw;
  p.disk_op_overhead = spec.disk_op_overhead;
  p.mds_create_time = spec.mds_create_time;
  p.mds_open_time = spec.mds_open_time;
  p.lock_service_time = spec.lock_service_time;
  p.client_overhead = spec.client_overhead;
  p.shared_file_efficiency = spec.shared_file_efficiency;
  return p;
}

SimCluster::SimCluster(const ClusterParams& params, std::uint64_t seed)
    : params_(params), rng_(seed), mds_(&engine_, 1), authz_(&engine_, 1) {
  server_links_.reserve(static_cast<std::size_t>(params.num_servers));
  disks_.reserve(static_cast<std::size_t>(params.num_servers));
  for (int s = 0; s < params.num_servers; ++s) {
    server_links_.push_back(std::make_unique<sim::Pipe>(
        &engine_, params.nic_bw, params.nic_latency));
    disks_.push_back(std::make_unique<sim::FifoResource>(&engine_, 1));
  }
}

}  // namespace lwfs::simapps
