// Simulator actors for the three checkpoint implementations (§4).
//
// Each function plays out the same message/resource sequence as the real
// stack in src/checkpoint (the correspondence is pinned by
// tests/simapps_protocol_test.cpp) on a SimCluster and reports phase
// timings.  These drive the Figure 9 / Figure 10 benches and the petaflop
// extrapolation.
#pragma once

#include <cstdint>

#include "simapps/cluster_model.h"

namespace lwfs::simapps {

struct SimCheckpointResult {
  double create_time = 0;  // time until the last create completed
  double dump_time = 0;    // total - create
  double total_time = 0;
  std::uint64_t bytes = 0;

  [[nodiscard]] double throughput_mb_s() const {
    return total_time > 0 ? static_cast<double>(bytes) / 1e6 / total_time : 0;
  }
};

enum class CheckpointKind {
  kLwfsObjectPerProcess,
  kPfsFilePerProcess,
  kPfsSharedFile,
};

/// Full checkpoint: create phase + dump of `bytes_per_client` per client.
SimCheckpointResult SimulateCheckpoint(CheckpointKind kind,
                                       const ClusterParams& params,
                                       std::uint64_t bytes_per_client,
                                       std::uint64_t seed);

struct SimCreateResult {
  double total_time = 0;
  std::uint64_t creates = 0;
  [[nodiscard]] double ops_per_sec() const {
    return total_time > 0 ? static_cast<double>(creates) / total_time : 0;
  }
};

/// Create-only phase (Figure 10): every client performs
/// `creates_per_client` file/object creations back to back.
SimCreateResult SimulateCreates(CheckpointKind kind,
                                const ClusterParams& params,
                                std::uint64_t creates_per_client,
                                std::uint64_t seed);

}  // namespace lwfs::simapps
