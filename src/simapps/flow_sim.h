// Flow-control ablation (E7): server-directed vs. client-pushed bursts.
//
// §2.2/§3.2: a Red Storm I/O node can *receive* ~6 GB/s but drain only
// 400 MB/s to its RAID, so an uncoordinated burst overruns its buffers;
// rejected messages must be resent, wasting network bandwidth and client
// time.  Server-directed transfers queue tiny requests instead and pull
// data only into available buffer space, so nothing is ever resent.
#pragma once

#include <cstdint>

#include "simapps/cluster_model.h"

namespace lwfs::simapps {

struct FlowParams {
  int num_clients = 32;
  std::uint64_t bytes_per_client = 512ull << 20;
  std::uint64_t message_bytes = 1ull << 20;  // eager-push message size
  std::uint64_t request_bytes = 256;         // server-directed request size
  double link_bw = 6e9;        // I/O-node ingress (Table 2 link bandwidth)
  double link_latency = 5e-6;  // max MPI latency from Table 2
  double drain_bw = 400e6;     // I/O node -> RAID (Table 2)
  std::uint64_t buffer_bytes = 256ull << 20;  // I/O-node buffer pool
  double retry_delay = 2e-3;   // client backoff before resending
};

struct FlowResult {
  double total_time = 0;
  std::uint64_t goodput_bytes = 0;   // application bytes landed
  std::uint64_t resends = 0;         // rejected messages resent
  std::uint64_t wasted_bytes = 0;    // bytes moved over the wire and dropped
  [[nodiscard]] double goodput_mb_s() const {
    return total_time > 0 ? static_cast<double>(goodput_bytes) / 1e6 / total_time
                          : 0;
  }
  [[nodiscard]] double wire_overhead() const {
    return goodput_bytes > 0
               ? static_cast<double>(wasted_bytes) /
                     static_cast<double>(goodput_bytes)
               : 0;
  }
};

/// Clients push eagerly; the node rejects messages that do not fit its
/// buffer and the clients resend after a backoff.
FlowResult SimulateEagerPush(const FlowParams& params, std::uint64_t seed);

/// Clients enqueue one small request each; the node pulls chunks only into
/// free buffer space (Figure 6).
FlowResult SimulateServerDirected(const FlowParams& params,
                                  std::uint64_t seed);

}  // namespace lwfs::simapps
