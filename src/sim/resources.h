// Queued resources for the cluster simulator.
//
// FifoResource models anything that serves requests one-at-a-time per slot:
// a metadata-server CPU, a RAID controller, a NIC DMA engine.  Pipe adds a
// store-and-forward latency to a bandwidth-serialized link.  Semaphore and
// Latch provide coroutine-friendly synchronization between sim processes.
#pragma once

#include <algorithm>
#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "sim/engine.h"

namespace lwfs::sim {

/// Multi-slot FIFO queueing resource.  `co_await r.Use(d)` suspends until a
/// slot has finished `d` seconds of service for this caller, with FIFO
/// ordering across callers.
class FifoResource {
 public:
  FifoResource(Engine* engine, int slots)
      : engine_(engine), free_at_(static_cast<std::size_t>(slots), 0.0) {
    assert(slots > 0);
  }

  struct UseAwaiter {
    FifoResource* res;
    Time duration;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      const Time done = res->ReserveSlot(duration);
      res->engine_->At(done, [h] { h.resume(); });
    }
    void await_resume() noexcept {}
  };

  /// Queue `duration` seconds of service; resume when it completes.
  UseAwaiter Use(Time duration) { return UseAwaiter{this, duration}; }

  /// Earliest completion time a request issued now would see (no queueing
  /// side effects) — used by admission-control models.
  [[nodiscard]] Time EstimateCompletion(Time duration) const {
    Time best = free_at_[0];
    for (Time t : free_at_) best = std::min(best, t);
    return std::max(best, engine_->Now()) + duration;
  }

  [[nodiscard]] std::uint64_t served() const { return served_; }
  [[nodiscard]] Time busy_time() const { return busy_; }
  [[nodiscard]] Time last_completion() const { return last_completion_; }

  /// Mean utilization of the slots over [0, horizon].
  [[nodiscard]] double Utilization(Time horizon) const {
    if (horizon <= 0) return 0.0;
    return busy_ / (horizon * static_cast<double>(free_at_.size()));
  }

 private:
  /// Reserves the earliest-free slot; returns the completion time.
  Time ReserveSlot(Time duration) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < free_at_.size(); ++i) {
      if (free_at_[i] < free_at_[best]) best = i;
    }
    const Time start = std::max(free_at_[best], engine_->Now());
    const Time done = start + duration;
    free_at_[best] = done;
    busy_ += duration;
    ++served_;
    last_completion_ = std::max(last_completion_, done);
    return done;
  }

  Engine* engine_;
  std::vector<Time> free_at_;
  Time busy_ = 0;
  Time last_completion_ = 0;
  std::uint64_t served_ = 0;
};

/// A network link: bandwidth serialization followed by propagation latency.
class Pipe {
 public:
  Pipe(Engine* engine, double bytes_per_sec, Time latency, int lanes = 1)
      : engine_(engine),
        bw_(engine, lanes),
        bytes_per_sec_(bytes_per_sec),
        latency_(latency) {}

  /// Move `bytes` through the link.
  Task Transfer(std::uint64_t bytes) {
    co_await bw_.Use(static_cast<Time>(bytes) / bytes_per_sec_);
    co_await engine_->Delay(latency_);
  }

  [[nodiscard]] double bytes_per_sec() const { return bytes_per_sec_; }
  [[nodiscard]] Time latency() const { return latency_; }
  [[nodiscard]] FifoResource& bandwidth() { return bw_; }

 private:
  Engine* engine_;
  FifoResource bw_;
  double bytes_per_sec_;
  Time latency_;
};

/// Counting semaphore with FIFO wakeup.
class Semaphore {
 public:
  Semaphore(Engine* engine, std::uint64_t initial)
      : engine_(engine), count_(initial) {}

  struct AcquireAwaiter {
    Semaphore* sem;
    bool await_ready() {
      if (sem->count_ > 0) {
        --sem->count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { sem->waiters_.push_back(h); }
    void await_resume() noexcept {}
  };

  AcquireAwaiter Acquire() { return AcquireAwaiter{this}; }

  void Release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      engine_->After(0, [h] { h.resume(); });  // token handed to the waiter
    } else {
      ++count_;
    }
  }

  [[nodiscard]] std::uint64_t available() const { return count_; }
  [[nodiscard]] std::size_t waiting() const { return waiters_.size(); }

 private:
  Engine* engine_;
  std::uint64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Count-down latch: Wait() resumes once CountDown() has been called
/// `count` times (barrier for "all clients finished").
class Latch {
 public:
  Latch(Engine* engine, std::uint64_t count) : engine_(engine), count_(count) {}

  void CountDown() {
    assert(count_ > 0);
    if (--count_ == 0) {
      for (auto h : waiters_) engine_->After(0, [h] { h.resume(); });
      waiters_.clear();
    }
  }

  struct WaitAwaiter {
    Latch* latch;
    bool await_ready() const noexcept { return latch->count_ == 0; }
    void await_suspend(std::coroutine_handle<> h) { latch->waiters_.push_back(h); }
    void await_resume() noexcept {}
  };
  WaitAwaiter Wait() { return WaitAwaiter{this}; }

  [[nodiscard]] std::uint64_t remaining() const { return count_; }

 private:
  Engine* engine_;
  std::uint64_t count_;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace lwfs::sim
