#include "sim/engine.h"

namespace lwfs::sim {

std::coroutine_handle<> Task::promise_type::FinalAwaiter::await_suspend(
    std::coroutine_handle<promise_type> h) noexcept {
  promise_type& p = h.promise();
  std::coroutine_handle<> next =
      p.continuation ? p.continuation : std::noop_coroutine();
  if (p.detached) {
    if (p.engine != nullptr) --p.engine->live_;
    h.destroy();  // detached frames own themselves
  }
  return next;
}

void Engine::Spawn(Task task) {
  auto handle = task.Release();
  if (!handle) return;
  handle.promise().detached = true;
  handle.promise().engine = this;
  ++live_;
  // Start the process "now" via the event queue so Spawn is safe to call
  // from inside running coroutines without unbounded recursion.
  At(now_, [handle] { handle.resume(); });
}

Time Engine::RunUntilIdle() {
  while (!queue_.empty()) {
    Item item = queue_.top();
    queue_.pop();
    now_ = item.time;
    item.fn();
  }
  return now_;
}

Time Engine::RunUntil(Time t_end) {
  while (!queue_.empty() && queue_.top().time <= t_end) {
    Item item = queue_.top();
    queue_.pop();
    now_ = item.time;
    item.fn();
  }
  if (now_ < t_end) now_ = t_end;
  return now_;
}

}  // namespace lwfs::sim
