// Discrete-event simulation engine with C++20 coroutine processes.
//
// The cluster-scale experiments (Figures 9-10, the petaflop extrapolation,
// the flow-control ablation) cannot run on real hardware we have, so they
// run on this engine: virtual time, deterministic event ordering (FIFO
// tie-break), and protocol actors written as straight-line coroutines that
// `co_await` delays and resource grants.
//
//   sim::Engine eng;
//   eng.Spawn([](sim::Engine& e, sim::FifoResource& disk) -> sim::Task {
//     co_await e.Delay(1e-3);          // think time
//     co_await disk.Use(0.5);          // 0.5 s of disk service, FIFO-queued
//   }(eng, disk));
//   eng.RunUntilIdle();
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

namespace lwfs::sim {

/// Simulated time in seconds.
using Time = double;

class Engine;

/// Fire-and-forget coroutine used for simulation processes.  A Task started
/// with Engine::Spawn owns its frame and self-destroys at completion; a Task
/// `co_await`ed from another Task resumes its awaiter on completion
/// (symmetric transfer), enabling protocol steps to be factored into
/// sub-coroutines.
class [[nodiscard]] Task {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;  // awaiter to resume at the end
    bool detached = false;                 // spawned: self-destroy on final
    Engine* engine = nullptr;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept;
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  /// Awaiting a Task starts it and suspends the awaiter until it finishes.
  struct Awaiter {
    std::coroutine_handle<promise_type> handle;
    bool await_ready() const noexcept { return !handle || handle.done(); }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) {
      handle.promise().continuation = awaiting;
      return handle;  // symmetric transfer into the child
    }
    void await_resume() noexcept {}
  };
  Awaiter operator co_await() && noexcept {
    // The frame must stay alive until completion; ownership moves to the
    // coroutine machinery (final awaiter resumes the parent, parent's frame
    // destruction cascades here via the Task living in the parent frame).
    return Awaiter{handle_};
  }

 private:
  friend class Engine;
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> Release() {
    return std::exchange(handle_, {});
  }

  std::coroutine_handle<promise_type> handle_;
};

/// The event engine.  Single-threaded by design (CP.3: no shared mutable
/// state across threads inside a simulation); run one Engine per thread for
/// parallel parameter sweeps.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Time Now() const { return now_; }

  /// Schedule a callback at absolute time `t` (>= Now()).
  void At(Time t, std::function<void()> fn) {
    assert(t >= now_ - 1e-12);
    queue_.push(Item{t, seq_++, std::move(fn)});
  }
  /// Schedule after a relative delay (>= 0).
  void After(Time dt, std::function<void()> fn) { At(now_ + dt, std::move(fn)); }

  /// Awaitable virtual-time delay.
  struct DelayAwaiter {
    Engine* engine;
    Time dt;
    bool await_ready() const noexcept { return dt <= 0; }
    void await_suspend(std::coroutine_handle<> h) {
      engine->After(dt, [h] { h.resume(); });
    }
    void await_resume() noexcept {}
  };
  DelayAwaiter Delay(Time dt) { return DelayAwaiter{this, dt}; }

  /// Start a detached simulation process.
  void Spawn(Task task);

  /// Execute events until the queue is empty.  Returns the final time.
  Time RunUntilIdle();

  /// Execute events with timestamp <= t_end; leaves later events queued.
  Time RunUntil(Time t_end);

  /// Number of spawned processes that have not finished.
  [[nodiscard]] std::uint64_t live_processes() const { return live_; }

 private:
  friend struct Task::promise_type;

  struct Item {
    Time time;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Item& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t live_ = 0;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue_;
};

}  // namespace lwfs::sim
